"""Benchmark A1: SWEEP variants (the Section 5.3 optimizations).

Shape: all variants are completely consistent with identical message
counts; the parallel left/right sweep shortens the install critical path.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments.ablation import (
    format_sweep_variants,
    run_sweep_variants,
)


def bench_ablation_sweep_variants(benchmark, save_result):
    rows = run_once(benchmark, run_sweep_variants)
    save_result("a1_sweep_variants", format_sweep_variants(rows))
    by = {r["variant"]: r for r in rows}

    # Correctness is variant-independent.
    assert all(r["consistency"] == "complete" for r in rows)
    # So is message count (parallelism changes latency, not traffic).
    assert len({r["queries_per_update"] for r in rows}) == 1
    # The parallel sweep wins on install latency...
    assert by["parallel"]["mean_install_lag"] < by["sequential"]["mean_install_lag"]
    # ... and pipelining wins big: sweeps overlap instead of queueing.
    assert (
        by["pipelined"]["mean_install_lag"]
        < by["sequential"]["mean_install_lag"] / 2
    )
