"""Benchmark A2: Nested SWEEP's forced-termination guard (Section 6.2).

Shape: under alternating interference, unbounded recursion folds the whole
stream into one late composite install; tightening the depth cap restores
install granularity (depth 0 degenerates to SWEEP: one install per update,
complete consistency) at the cost of more messages.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments.ablation import (
    format_nested_depth,
    run_nested_depth,
)


def bench_ablation_termination(benchmark, save_result):
    rows = run_once(benchmark, run_nested_depth, depths=(None, 1, 0))
    save_result("a2_nested_termination", format_nested_depth(rows))
    by = {r["max_depth"]: r for r in rows}

    # Unbounded: one composite install, minimal messages, strong consistency.
    assert by["unbounded"]["installs"] == 1
    assert by["unbounded"]["consistency"] in ("strong", "complete")

    # Depth 0 degenerates to SWEEP: complete, one install per update.
    assert by[0]["consistency"] == "complete"
    assert by[0]["installs"] == 16
    assert by[0]["depth_limit_hits"] > 0

    # The guard trades messages for install granularity.
    assert (
        by[0]["queries_total"] >= by[1]["queries_total"]
        >= by["unbounded"]["queries_total"]
    )
    assert by[0]["installs"] >= by[1]["installs"] >= by["unbounded"]["installs"]
