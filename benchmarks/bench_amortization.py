"""Benchmark S4: Nested SWEEP's message amortization (Section 6.2).

Shape: as updates bunch up (smaller inter-arrival), Nested SWEEP absorbs
more updates per composite sweep, so queries-per-update falls while SWEEP
stays constant at 2(n-1)/2 queries.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments.amortization import (
    format_amortization,
    run_amortization,
)

INTERARRIVALS = (30.0, 3.0, 0.3)


def bench_amortization(benchmark, save_result):
    rows = run_once(benchmark, run_amortization, interarrivals=INTERARRIVALS)
    save_result("s4_amortization", format_amortization(rows))
    sweep = {r["interarrival"]: r for r in rows if r["algorithm"] == "sweep"}
    nested = {r["interarrival"]: r for r in rows if r["algorithm"] == "nested-sweep"}

    # SWEEP: constant cost, one install per update.
    assert {r["queries_per_update"] for r in sweep.values()} == {4.0}
    assert all(r["updates_per_install"] == 1.0 for r in sweep.values())

    # Nested SWEEP: amortization strengthens as the stream gets denser.
    assert (
        nested[0.3]["queries_per_update"]
        < nested[3.0]["queries_per_update"]
        <= nested[30.0]["queries_per_update"]
    )
    assert nested[0.3]["updates_per_install"] > nested[30.0]["updates_per_install"]
    # ... and under bursts it undercuts SWEEP by a sizable factor.
    assert nested[0.3]["queries_per_update"] < sweep[0.3]["queries_per_update"] / 2
