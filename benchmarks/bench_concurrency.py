"""Benchmark S2: message cost vs concurrency (local vs remote compensation).

Shape: SWEEP's message count is invariant in the update rate -- all its
compensation is local -- while C-Strobe's grows as racing updates trigger
remote compensating queries (Section 3's cascade).
"""

from benchmarks.conftest import run_once
from repro.harness.experiments.concurrency import (
    format_concurrency,
    run_concurrency,
)

INTERARRIVALS = (8.0, 2.0, 0.5)


def bench_concurrency(benchmark, save_result):
    rows = run_once(benchmark, run_concurrency, interarrivals=INTERARRIVALS)
    save_result("s2_concurrency", format_concurrency(rows))
    sweep = {r["interarrival"]: r for r in rows if r["algorithm"] == "sweep"}
    cstrobe = {r["interarrival"]: r for r in rows if r["algorithm"] == "c-strobe"}

    # SWEEP: flat cost across the whole concurrency sweep (n=5 -> 8 msgs).
    costs = {r["msgs_per_update"] for r in sweep.values()}
    assert costs == {8.0}

    # ... even though local compensation is working hard at high rates.
    assert sweep[0.5]["local_compensations"] > 0
    assert all(r["remote_comp_queries"] == 0 for r in sweep.values())

    # C-Strobe: strictly above SWEEP everywhere, rising with concurrency.
    for ia in INTERARRIVALS:
        assert cstrobe[ia]["msgs_per_update"] > sweep[ia]["msgs_per_update"]
    assert (
        cstrobe[0.5]["remote_comp_queries"]
        >= cstrobe[8.0]["remote_comp_queries"]
    )
