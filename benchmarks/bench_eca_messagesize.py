"""Benchmark S5: ECA's compensating-query payload growth (Section 3).

Shape: ECA's mean query payload (rows shipped per query) grows steeply
with concurrency -- the quadratic-message-size critique -- while SWEEP's
payloads stay delta-sized and flat.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments.messagesize import (
    format_messagesize,
    run_messagesize,
)

INTERARRIVALS = (50.0, 4.0, 1.0)


def bench_eca_messagesize(benchmark, save_result):
    rows = run_once(benchmark, run_messagesize, interarrivals=INTERARRIVALS)
    save_result("s5_eca_messagesize", format_messagesize(rows))
    eca = {r["interarrival"]: r for r in rows if r["algorithm"] == "eca"}
    sweep = {r["interarrival"]: r for r in rows if r["algorithm"] == "sweep"}

    # ECA payloads explode with concurrency (calm -> busy: > 5x growth).
    assert eca[1.0]["mean_query_rows"] > 5 * eca[50.0]["mean_query_rows"]
    # Term counts (the K in the quadratic argument) grow alongside.
    assert eca[1.0]["mean_query_terms"] > eca[50.0]["mean_query_terms"]

    # SWEEP's payloads don't react to the update rate at all.
    sweep_sizes = {r["mean_query_rows"] for r in sweep.values()}
    assert max(sweep_sizes) - min(sweep_sizes) < 0.5
    # ... and busy ECA ships vastly more query rows than busy SWEEP.
    assert eca[1.0]["total_query_rows"] > 10 * sweep[1.0]["total_query_rows"]
