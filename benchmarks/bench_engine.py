"""Engine microbenchmarks: the primitives every sweep step exercises.

Unlike the experiment benches (single-round simulator runs), these measure
steady-state throughput of the bag engine and backends with normal
pytest-benchmark rounds: hash join, incremental sweep step vs full
recomputation, and the sqlite ComputeJoin path.
"""

import random

from repro.relational.algebra import join
from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.sources.memory import MemoryBackend
from repro.sources.sqlite import SqliteBackend
from repro.workloads.data_gen import generate_initial_states
from repro.workloads.schema_gen import chain_view

ROWS = 2_000


def _setup(n=3, rows=ROWS):
    view = chain_view(n)
    states, gen = generate_initial_states(
        view, random.Random(42), rows, match_fraction=1.0
    )
    return view, states, gen


def bench_hash_join_2k_rows(benchmark):
    view, states, _ = _setup()
    cond = view.conditions_joining(2, frozenset({1}))
    result = benchmark(join, states["R1"], states["R2"], cond)
    assert result.total_count > 0


def bench_sweep_step_small_delta(benchmark):
    """One ComputeJoin with a single-row delta against 2k rows -- the hot
    operation of SWEEP (payload stays delta-sized)."""
    view, states, gen = _setup()
    target = next(iter(states["R2"].rows()))
    delta = Delta.insert(view.schema_of(1), (99_999, target[0], 1))
    partial = PartialView.initial(view, 1, delta)
    result = benchmark(partial.extend, 2, states["R2"])
    assert result.delta.total_count >= 1


def bench_sweep_step_indexed(benchmark):
    """The same probe with a hash index on the join column -- the path
    source backends use.  Compare with bench_sweep_step_small_delta."""
    view, states, gen = _setup()
    states["R2"].create_index(("K2",))
    target = next(iter(states["R2"].rows()))
    delta = Delta.insert(view.schema_of(1), (99_999, target[0], 1))
    partial = PartialView.initial(view, 1, delta)
    result = benchmark(partial.extend, 2, states["R2"])
    assert result.delta.total_count >= 1


def bench_full_recompute_3_way(benchmark):
    """Full 3-way join recomputation -- what the naive approach pays."""
    view, states, _ = _setup()
    result = benchmark(view.evaluate, states)
    assert result.total_count > 0


def bench_incremental_vs_recompute_ratio(benchmark):
    """A full single-update sweep (both directions) end to end."""
    view, states, gen = _setup()
    target = next(iter(states["R3"].rows()))
    delta = Delta.insert(
        view.schema_of(2), (99_999, target[0], 1)
    )

    def sweep():
        partial = PartialView.initial(view, 2, delta)
        partial = partial.extend(1, states["R1"])
        return partial.extend(3, states["R3"])

    result = benchmark(sweep)
    assert result.complete


def bench_sqlite_compute_join(benchmark):
    view, states, _ = _setup(rows=500)
    backend = SqliteBackend(view, 2, states["R2"])
    target = next(iter(states["R2"].rows()))
    delta = Delta.insert(view.schema_of(1), (99_999, target[0], 1))
    partial = PartialView.initial(view, 1, delta)
    result = benchmark(backend.compute_join, partial)
    assert result.delta.total_count >= 1
    backend.close()


def bench_memory_compute_join(benchmark):
    view, states, _ = _setup(rows=500)
    backend = MemoryBackend(view, 2, states["R2"])
    target = next(iter(states["R2"].rows()))
    delta = Delta.insert(view.schema_of(1), (99_999, target[0], 1))
    partial = PartialView.initial(view, 1, delta)
    result = benchmark(backend.compute_join, partial)
    assert result.delta.total_count >= 1


def bench_view_apply_delta(benchmark):
    view, states, _ = _setup()
    base = view.evaluate(states)
    delta = Delta(base.schema)
    rows = list(base.rows())[:50]
    for row in rows:
        delta.add(row, 1)

    def apply_and_revert():
        base.apply_delta(delta)
        base.apply_delta(delta.negated())

    benchmark(apply_and_revert)
    assert base == view.evaluate(states)
