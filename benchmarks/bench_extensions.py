"""Benchmarks A3/A4: the implemented extensions beyond the paper's core.

* **A3 bootstrap** -- online initial load: the view starts empty and is
  built by a snapshot-seeded sweep while updates already stream; cost is n
  queries and the first install is already a consistent state.
* **A4 global transactions** -- Transaction-SWEEP installs multi-source
  transactions atomically; overhead vs plain SWEEP is bounded (held parts
  defer some work but total message count per update is unchanged).
"""

from benchmarks.conftest import run_once
from repro.consistency.atomicity import check_transaction_atomicity
from repro.harness.config import ExperimentConfig
from repro.harness.report import format_dict_table
from repro.harness.runner import run_experiment

HOSTILE = dict(
    n_sources=4, n_updates=20, mean_interarrival=1.0, latency=6.0,
    latency_model="uniform", match_fraction=1.0, insert_fraction=0.5,
    rows_per_relation=10,
)


def run_bootstrap_rows(seed: int = 9) -> list[dict]:
    rows = []
    for algorithm in ("sweep", "bootstrap-sweep"):
        result = run_experiment(
            ExperimentConfig(algorithm=algorithm, seed=seed, **HOSTILE)
        )
        rows.append(
            {
                "algorithm": algorithm,
                "initial_view_rows": result.recorder.snapshots.initial.distinct_count,
                "consistency": result.classified_level.name.lower(),
                "queries_total": result.queries_sent,
                "installs": result.installs,
                "absorbed": result.metrics.counters.get("bootstrap_absorbed", 0),
            }
        )
    return rows


def run_global_txn_rows(seed: int = 9) -> list[dict]:
    rows = []
    for algorithm in ("sweep", "global-sweep"):
        result = run_experiment(
            ExperimentConfig(
                algorithm=algorithm, seed=seed, global_txn_fraction=0.4,
                max_check_vectors=100_000, **HOSTILE,
            )
        )
        atom = check_transaction_atomicity(
            result.recorder.history, result.recorder.snapshots
        )
        rows.append(
            {
                "algorithm": algorithm,
                "consistency": result.classified_level.name.lower(),
                "atomic": "yes" if atom.ok else f"NO ({len(atom.violations)})",
                "txns": atom.transactions_checked,
                "msgs_per_update": result.messages_per_update,
                "installs": result.installs,
                "updates": result.updates_delivered,
            }
        )
    return rows


def bench_bootstrap(benchmark, save_result):
    rows = run_once(benchmark, run_bootstrap_rows)
    save_result(
        "a3_bootstrap",
        format_dict_table(
            rows,
            columns=["algorithm", "initial_view_rows", "consistency",
                     "queries_total", "installs", "absorbed"],
            title="A3: online initial load (bootstrap-sweep vs pre-initialized)",
        ),
    )
    by = {r["algorithm"]: r for r in rows}
    # bootstrap starts from nothing ...
    assert by["bootstrap-sweep"]["initial_view_rows"] == 0
    assert by["sweep"]["initial_view_rows"] > 0
    # ... and pays exactly n extra queries (snapshot + sweep of the load)
    n = HOSTILE["n_sources"]
    extra = by["bootstrap-sweep"]["queries_total"] - by["sweep"]["queries_total"]
    assert extra <= n  # absorbed updates save their own sweeps
    assert by["bootstrap-sweep"]["consistency"] in ("strong", "complete")


def bench_global_transactions(benchmark, save_result):
    rows = run_once(benchmark, run_global_txn_rows)
    save_result(
        "a4_global_txns",
        format_dict_table(
            rows,
            columns=["algorithm", "consistency", "atomic", "txns",
                     "msgs_per_update", "installs", "updates"],
            title="A4: global transactions (atomic Transaction-SWEEP vs SWEEP)",
        ),
    )
    by = {r["algorithm"]: r for r in rows}
    assert by["global-sweep"]["atomic"] == "yes"
    assert by["sweep"]["atomic"].startswith("NO")
    assert by["global-sweep"]["consistency"] in ("strong", "complete")
    # atomicity costs installs granularity, not messages
    assert by["global-sweep"]["msgs_per_update"] == by["sweep"]["msgs_per_update"]
