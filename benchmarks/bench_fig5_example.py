"""Benchmark F5: the Figure 5 trajectory under SWEEP with racing updates."""

from benchmarks.conftest import run_once
from repro.harness.experiments.fig5 import format_fig5, run_fig5


def bench_fig5_sweep_concurrent(benchmark, save_result):
    rows = run_once(benchmark, run_fig5, algorithm="sweep", spacing=0.5)
    save_result("fig5_sweep", format_fig5(rows))
    assert all(row["match"] == "yes" for row in rows)
    assert len(rows) == 4  # initial + three updates


def bench_fig5_sweep_sequential(benchmark, save_result):
    """With wide spacing the run degenerates to the paper's sequential
    walkthrough -- same trajectory."""
    rows = run_once(benchmark, run_fig5, algorithm="sweep", spacing=100.0)
    save_result("fig5_sweep_sequential", format_fig5(rows))
    assert all(row["match"] == "yes" for row in rows)
