"""Benchmark A5: the analytical model vs the simulator.

Reproduces the role of the paper's [Yur97] analytical companion: for a
sweep of update rates, compare the first-order predictions (compensation
frequency, M/D/1 install lag, Nested SWEEP absorption, ECA term counts)
against measurement.  Shape assertions: the model must track the measured
curves' direction and regime changes.
"""

import math

from benchmarks.conftest import run_once
from repro.analysis.model import (
    eca_expected_terms,
    expected_compensation_events,
    nested_updates_per_install,
    sweep_install_lag,
)
from repro.harness.config import ExperimentConfig
from repro.harness.report import format_dict_table
from repro.harness.runner import run_experiment

RATES = (0.01, 0.02, 0.05, 0.2)
N, LATENCY, UPDATES = 4, 5.0, 40


def _simulate(algorithm, lam):
    return run_experiment(
        ExperimentConfig(
            algorithm=algorithm,
            seed=11,
            n_sources=N,
            n_updates=UPDATES,
            mean_interarrival=1.0 / lam,
            latency=LATENCY,
            latency_model="exponential",
            match_fraction=1.0,
            insert_fraction=0.5,
            rows_per_relation=8,
            check_consistency=False,
        )
    )


def run_validation_rows() -> list[dict]:
    rows = []
    for lam in RATES:
        sweep = _simulate("sweep", lam)
        nested = _simulate("nested-sweep", lam)
        eca = _simulate("eca", lam)
        lag_model = sweep_install_lag(N, lam, LATENCY)
        absorb_model = nested_updates_per_install(N, lam, LATENCY)
        terms_model = eca_expected_terms(lam, LATENCY)
        rows.append(
            {
                "rate": lam,
                "comp/upd model": expected_compensation_events(N, lam, LATENCY),
                "comp/upd meas": sweep.metrics.counters.get("compensations", 0)
                / UPDATES,
                "lag model": "inf" if math.isinf(lag_model) else lag_model,
                "lag meas": sweep.mean_install_delay,
                "absorb model": "inf" if math.isinf(absorb_model) else absorb_model,
                "absorb meas": nested.updates_delivered / max(1, nested.installs),
                "eca terms model": "inf" if math.isinf(terms_model) else terms_model,
                "eca terms meas": eca.metrics.mean_observation("eca_query_terms"),
            }
        )
    return rows


def bench_model_validation(benchmark, save_result):
    rows = run_once(benchmark, run_validation_rows)
    save_result(
        "a5_model_validation",
        format_dict_table(
            rows,
            columns=[
                "rate", "comp/upd model", "comp/upd meas", "lag model",
                "lag meas", "absorb model", "absorb meas",
                "eca terms model", "eca terms meas",
            ],
            title="A5: analytical model vs simulation (n=4, L=5)",
        ),
    )
    by = {r["rate"]: r for r in rows}

    # Measured compensation frequency rises with rate, like the model.
    assert by[0.2]["comp/upd meas"] > by[0.01]["comp/upd meas"]
    assert by[0.2]["comp/upd model"] > by[0.01]["comp/upd model"]

    # Stable regime: M/D/1 lag within a 3x band.
    stable = by[0.01]
    assert stable["lag model"] != "inf"
    assert stable["lag model"] / 3 <= stable["lag meas"] <= stable["lag model"] * 3

    # The model's instability point is real: where it says inf, measured
    # lag dwarfs the stable-regime lag.
    unstable = by[0.2]
    assert unstable["lag model"] == "inf"
    assert unstable["lag meas"] > 5 * stable["lag meas"]

    # Nested absorption: subcritical ~1, supercritical -> whole stream.
    assert by[0.01]["absorb meas"] < 3
    assert by[0.2]["absorb model"] == "inf"
    assert by[0.2]["absorb meas"] > UPDATES / 3

    # ECA term growth crosses its divergence threshold.
    assert by[0.2]["eca terms meas"] > 3 * by[0.01]["eca terms meas"]
