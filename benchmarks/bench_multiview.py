"""Benchmark A6: multi-view maintenance with batched sweeps.

Shape: maintaining 1, 3 or 5 views over the same chain costs the *same
number of messages* (payload rows grow, the envelope count does not), and
every view independently verifies completely consistent.
"""

import random

from benchmarks.conftest import run_once
from repro.consistency.levels import ConsistencyLevel
from repro.harness.multiview_runner import run_multi_view
from repro.harness.report import format_dict_table
from repro.relational.predicate import AttrCompare
from repro.workloads.schema_gen import chain_view
from repro.workloads.scenarios import make_workload
from repro.workloads.stream import UpdateStreamConfig


def _views(count: int):
    views = [chain_view(3, name="full")]
    if count >= 2:
        views.append(chain_view(3, project_keys=False, name="payloads"))
    if count >= 3:
        views.append(
            chain_view(3, name="cheap", selection=AttrCompare("V3", "<", 500))
        )
    for extra in range(3, count):
        views.append(
            chain_view(
                3,
                name=f"band{extra}",
                selection=AttrCompare("V3", ">=", 100 * extra),
            )
        )
    return views[:count]


def run_multiview_rows() -> list[dict]:
    workload = make_workload(
        3,
        random.Random(5),
        rows_per_relation=10,
        match_fraction=1.0,
        stream=UpdateStreamConfig(
            n_updates=16, mean_interarrival=1.0, insert_fraction=0.5,
        ),
    )
    rows = []
    for count in (1, 3, 5):
        result = run_multi_view(
            _views(count), workload, seed=5, latency=6.0
        )
        rows.append(
            {
                "views": count,
                "queries_sent": result.queries_sent,
                "query_rows": result.metrics.rows_of_kind("query"),
                "all_complete": all(
                    lvl == ConsistencyLevel.COMPLETE
                    for lvl in result.levels.values()
                ),
            }
        )
    return rows


def bench_multiview(benchmark, save_result):
    rows = run_once(benchmark, run_multiview_rows)
    save_result(
        "a6_multiview",
        format_dict_table(
            rows,
            columns=["views", "queries_sent", "query_rows", "all_complete"],
            title="A6: multi-view maintenance (batched sweep steps)",
        ),
    )
    by = {r["views"]: r for r in rows}
    # message count is flat in the number of views ...
    assert by[1]["queries_sent"] == by[3]["queries_sent"] == by[5]["queries_sent"]
    # ... while payload rows grow with views
    assert by[5]["query_rows"] > by[1]["query_rows"]
    # and every view stays completely consistent
    assert all(r["all_complete"] for r in rows)
