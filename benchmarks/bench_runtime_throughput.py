"""Benchmark RT: distributed runtime throughput and refresh latency.

Runs the same seeded SWEEP workload on both runtime transports (in-process
queues and loopback TCP) and reports sustained update throughput plus
end-to-end refresh latency -- the wall time from an update's delivery at
the warehouse to the installation of its view change.  Shape assertions
pin what must hold on a real transport: every update installed, complete
consistency, SWEEP's exact 2(n-1) message cost, and the TCP tax being a
constant factor rather than a change in protocol behaviour.

Two extra rows replay the *identical* workload in **burst** mode (the
same generator compressed to a near-instant arrival schedule, so the
update queue is never empty) for per-update SWEEP and for the batched
sweep scheduler.  The batched row is the acceptance gate of the batching
work: at least ``SPEEDUP_TARGET`` times the recorded pre-batching
baseline of ``BASELINE_UPDATES_PER_SEC`` (the paced local row this file
originally produced).
"""

from benchmarks.conftest import run_once
from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.harness.report import format_table
from repro.harness.throughput import BASELINE_UPDATES_PER_SEC, SPEEDUP_TARGET
from repro.runtime import run_distributed

N_SOURCES = 3
N_UPDATES = 40
TIME_SCALE = 0.001
#: Same workload, arrivals compressed ~100x: queue-bound, not arrival-bound.
BURST_TIME_SCALE = 0.00001


def _config(algorithm: str = "sweep") -> ExperimentConfig:
    return ExperimentConfig(
        algorithm=algorithm,
        n_sources=N_SOURCES,
        n_updates=N_UPDATES,
        seed=7,
        mean_interarrival=2.0,  # keep the sweeps busy
    )


def _row(mode: str, transport: str, algorithm: str, time_scale: float) -> dict:
    result = run_distributed(
        _config(algorithm), transport=transport, time_scale=time_scale,
        timeout=120.0,
    )
    installed = result.metrics.counters["updates_installed"]
    lag = result.metrics.mean_observation("install_delay") or 0.0
    return {
        "mode": mode,
        "transport": transport,
        "algorithm": algorithm,
        "updates": result.recorder.updates_delivered,
        "installs": installed,
        "wall_seconds": round(result.wall_seconds, 3),
        "updates_per_sec": round(
            result.recorder.updates_delivered / result.wall_seconds, 1
        ),
        "refresh_latency_units": round(lag, 3),
        "refresh_latency_ms": round(lag * time_scale * 1000, 3),
        "msgs_per_update": (
            result.metrics.messages_of_kind("query")
            + result.metrics.messages_of_kind("answer")
        )
        / result.recorder.updates_delivered,
        "consistency": result.classified_level.name.lower(),
    }


def run_throughput() -> list[dict]:
    """One row per (mode, transport, algorithm) cell."""
    rows = [
        _row("paced", transport, "sweep", TIME_SCALE)
        for transport in ("local", "tcp")
    ]
    rows.append(_row("burst", "local", "sweep", BURST_TIME_SCALE))
    rows.append(_row("burst", "local", "batched-sweep", BURST_TIME_SCALE))
    return rows


def format_throughput(rows: list[dict]) -> str:
    return format_table(
        ["mode", "transport", "algorithm", "updates", "installs", "wall s",
         "upd/s", "refresh lag (units)", "refresh lag (ms)", "msgs/upd",
         "consistency"],
        [
            [
                row["mode"],
                row["transport"],
                row["algorithm"],
                row["updates"],
                row["installs"],
                row["wall_seconds"],
                row["updates_per_sec"],
                row["refresh_latency_units"],
                row["refresh_latency_ms"],
                row["msgs_per_update"],
                row["consistency"],
            ]
            for row in rows
        ],
        title=(
            f"SWEEP on the asyncio runtime ({N_SOURCES} sources,"
            f" {N_UPDATES} updates, time scale {TIME_SCALE}s/unit paced,"
            f" {BURST_TIME_SCALE}s/unit burst)"
        ),
    )


def bench_runtime_throughput(benchmark, save_result):
    rows = run_once(benchmark, run_throughput)
    save_result("runtime_throughput", format_throughput(rows))
    paced = {
        row["transport"]: row for row in rows if row["mode"] == "paced"
    }
    burst = {
        row["algorithm"]: row for row in rows if row["mode"] == "burst"
    }

    for row in rows:
        assert row["updates"] == N_UPDATES
        assert row["updates_per_sec"] > 0

    for row in paced.values():
        # The protocol is host-independent: every update delivered and
        # installed, complete consistency, exact 2(n-1) message cost.
        assert row["installs"] == N_UPDATES
        assert row["consistency"] == ConsistencyLevel.COMPLETE.name.lower()
        assert row["msgs_per_update"] == 2 * (N_SOURCES - 1)

    # TCP costs more than in-process queues, but within an order of
    # magnitude on loopback: a tax, not a different algorithm.
    local, tcp = paced["local"], paced["tcp"]
    assert tcp["refresh_latency_units"] >= local["refresh_latency_units"] * 0.5
    assert tcp["wall_seconds"] < local["wall_seconds"] * 10

    # Burst mode: per-update SWEEP keeps its contract at full speed.
    assert burst["sweep"]["installs"] == N_UPDATES
    assert burst["sweep"]["consistency"] == "complete"

    # The batching acceptance gate: the same workload, batching enabled,
    # at >= 3x the recorded pre-batching baseline -- with consistency no
    # weaker than strong and far fewer messages.
    fast = burst["batched-sweep"]
    assert fast["consistency"] in ("strong", "complete")
    assert fast["msgs_per_update"] < 2 * (N_SOURCES - 1)
    floor = SPEEDUP_TARGET * BASELINE_UPDATES_PER_SEC
    assert fast["updates_per_sec"] >= floor, (
        f"batched burst at {fast['updates_per_sec']} upd/s misses the"
        f" {floor:.0f} upd/s floor"
    )
