"""Benchmark RT: distributed runtime throughput and refresh latency.

Runs the same seeded SWEEP workload on both runtime transports (in-process
queues and loopback TCP) and reports sustained update throughput plus
end-to-end refresh latency -- the wall time from an update's delivery at
the warehouse to the installation of its view change.  Shape assertions
pin what must hold on a real transport: every update installed, complete
consistency, SWEEP's exact 2(n-1) message cost, and the TCP tax being a
constant factor rather than a change in protocol behaviour.
"""

from benchmarks.conftest import run_once
from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.harness.report import format_table
from repro.runtime import run_distributed

N_SOURCES = 3
N_UPDATES = 40
TIME_SCALE = 0.001


def _config() -> ExperimentConfig:
    return ExperimentConfig(
        algorithm="sweep",
        n_sources=N_SOURCES,
        n_updates=N_UPDATES,
        seed=7,
        mean_interarrival=2.0,  # keep the sweeps busy
    )


def run_throughput() -> list[dict]:
    """One row per transport, same dict shape as the experiment benches."""
    rows = []
    for transport in ("local", "tcp"):
        result = run_distributed(
            _config(), transport=transport, time_scale=TIME_SCALE, timeout=120.0
        )
        installed = result.metrics.counters["updates_installed"]
        lag = result.metrics.mean_observation("install_delay") or 0.0
        rows.append(
            {
                "transport": transport,
                "updates": result.recorder.updates_delivered,
                "installs": installed,
                "wall_seconds": round(result.wall_seconds, 3),
                "updates_per_sec": round(
                    result.recorder.updates_delivered / result.wall_seconds, 1
                ),
                "refresh_latency_units": round(lag, 3),
                "refresh_latency_ms": round(lag * TIME_SCALE * 1000, 3),
                "msgs_per_update": (
                    result.metrics.messages_of_kind("query")
                    + result.metrics.messages_of_kind("answer")
                )
                / result.recorder.updates_delivered,
                "consistency": result.classified_level.name.lower(),
            }
        )
    return rows


def format_throughput(rows: list[dict]) -> str:
    return format_table(
        ["transport", "updates", "installs", "wall s", "upd/s",
         "refresh lag (units)", "refresh lag (ms)", "msgs/upd", "consistency"],
        [
            [
                row["transport"],
                row["updates"],
                row["installs"],
                row["wall_seconds"],
                row["updates_per_sec"],
                row["refresh_latency_units"],
                row["refresh_latency_ms"],
                row["msgs_per_update"],
                row["consistency"],
            ]
            for row in rows
        ],
        title=(
            f"SWEEP on the asyncio runtime ({N_SOURCES} sources,"
            f" {N_UPDATES} updates, time scale {TIME_SCALE}s/unit)"
        ),
    )


def bench_runtime_throughput(benchmark, save_result):
    rows = run_once(benchmark, run_throughput)
    save_result("runtime_throughput", format_throughput(rows))
    by_transport = {row["transport"]: row for row in rows}

    for row in rows:
        # The protocol is host-independent: every update delivered and
        # installed, complete consistency, exact 2(n-1) message cost.
        assert row["updates"] == N_UPDATES
        assert row["installs"] == N_UPDATES
        assert row["consistency"] == ConsistencyLevel.COMPLETE.name.lower()
        assert row["msgs_per_update"] == 2 * (N_SOURCES - 1)
        assert row["updates_per_sec"] > 0

    # TCP costs more than in-process queues, but within an order of
    # magnitude on loopback: a tax, not a different algorithm.
    local, tcp = by_transport["local"], by_transport["tcp"]
    assert tcp["refresh_latency_units"] >= local["refresh_latency_units"] * 0.5
    assert tcp["wall_seconds"] < local["wall_seconds"] * 10
