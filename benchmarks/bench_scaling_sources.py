"""Benchmark S1: message cost vs number of sources (Section 5.3).

Shape: SWEEP's per-update messages are exactly ``2(n-1)`` at every chain
length; C-Strobe matches SWEEP's consistency but its cost curve bends away
super-linearly once compensation cascades start (clearly by n >= 6 under
this contention level).
"""

from benchmarks.conftest import run_once
from repro.harness.experiments.scaling import format_scaling, run_scaling

SOURCES = (2, 3, 4, 6, 8)


def bench_scaling_sources(benchmark, save_result):
    rows = run_once(benchmark, run_scaling, sources=SOURCES)
    save_result("s1_scaling", format_scaling(rows))
    sweep = {r["n_sources"]: r for r in rows if r["algorithm"] == "sweep"}
    cstrobe = {r["n_sources"]: r for r in rows if r["algorithm"] == "c-strobe"}
    nested = {r["n_sources"]: r for r in rows if r["algorithm"] == "nested-sweep"}

    # SWEEP: exactly linear, 2(n-1) messages per update, at every n.
    for n in SOURCES:
        assert sweep[n]["msgs_per_update"] == 2 * (n - 1)

    # Nested SWEEP never exceeds SWEEP (Section 6.2's amortization bound).
    for n in SOURCES:
        assert nested[n]["msgs_per_update"] <= sweep[n]["msgs_per_update"]

    # C-Strobe's curve leaves SWEEP's line behind as n grows.
    assert cstrobe[8]["msgs_per_update"] > 2 * sweep[8]["msgs_per_update"]
    # ... and grows faster than linearly relative to its own small-n cost.
    growth_cstrobe = cstrobe[8]["msgs_per_update"] / cstrobe[2]["msgs_per_update"]
    growth_sweep = sweep[8]["msgs_per_update"] / sweep[2]["msgs_per_update"]
    assert growth_cstrobe > growth_sweep
