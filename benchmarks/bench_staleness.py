"""Benchmark S3: staleness / quiescence requirement (Sections 3, 5.3).

Shape: under a sustained stream, SWEEP keeps installing one state per
update; Strobe's installs collapse toward a single quiescent install and
the first refresh happens only after the stream ends.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments.staleness import format_staleness, run_staleness

INTERARRIVALS = (20.0, 2.0)


def bench_staleness(benchmark, save_result):
    rows = run_once(benchmark, run_staleness, interarrivals=INTERARRIVALS,
                    n_updates=30)
    save_result("s3_staleness", format_staleness(rows))
    by = {(r["interarrival"], r["algorithm"]): r for r in rows}

    # SWEEP installs every update at every rate.
    for ia in INTERARRIVALS:
        assert by[(ia, "sweep")]["installs"] == 30

    # Strobe under load: installs collapse to the few quiescent points and
    # essentially none land while the stream is still running.
    busy_strobe = by[(2.0, "strobe")]
    assert busy_strobe["installs"] < 30 // 2
    assert busy_strobe["installs_during_stream"] <= busy_strobe["installs"]

    # Nested SWEEP also defers (composite installs) -- by design it trades
    # install granularity for message amortization.
    assert by[(2.0, "nested-sweep")]["installs"] < 30

    # With sparse updates everyone installs per update.
    assert by[(20.0, "strobe")]["installs"] >= 2
