"""Benchmark T1: regenerate the paper's Table 1 with measured values.

Shape assertions encode the paper's claims:

* ECA is centralized, strong, O(1) messages per update;
* Strobe is strong and stalls installs under load (quiescence);
* C-Strobe is complete but pays far more messages than SWEEP;
* SWEEP is complete at exactly 2(n-1) messages per update;
* Nested SWEEP is strong with amortized (below-SWEEP) message cost.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments.table1 import (
    format_table1,
    run_table1,
)


def bench_table1(benchmark, save_result):
    rows = run_once(benchmark, run_table1, seed=7, n_sources=4, n_updates=24,
                    include_baselines=True)
    save_result("table1", format_table1(rows))
    by_name = {row["algorithm"]: row for row in rows}

    # Consistency column matches the paper for every algorithm.
    assert by_name["sweep"]["measured_consistency"] == "complete"
    assert by_name["c-strobe"]["measured_consistency"] == "complete"
    assert by_name["nested-sweep"]["measured_consistency"] == "strong"
    assert by_name["strobe"]["measured_consistency"] in ("strong", "complete")
    assert by_name["eca"]["measured_consistency"] in ("strong", "complete")

    # SWEEP: one install per update, exactly 2(n-1) messages per update.
    n = 4
    assert by_name["sweep"]["installs"] == by_name["sweep"]["updates"]
    assert by_name["sweep"]["msgs_per_update"] == 2 * (n - 1)

    # C-Strobe achieves the same consistency as SWEEP but pays more.
    assert (
        by_name["c-strobe"]["msgs_per_update"]
        > by_name["sweep"]["msgs_per_update"]
    )

    # ECA: O(1) messages but far larger payloads than SWEEP (quadratic size).
    assert by_name["eca"]["msgs_per_update"] == 2
    assert (
        by_name["eca"]["query_rows_per_update"]
        > 10 * by_name["sweep"]["query_rows_per_update"]
    )

    # Quiescent algorithms collapse installs under this load.
    assert by_name["strobe"]["installs"] < by_name["strobe"]["updates"]
    assert by_name["eca"]["installs"] < by_name["eca"]["updates"]

    # Nested SWEEP amortizes below SWEEP's message cost.
    assert (
        by_name["nested-sweep"]["msgs_per_update"]
        < by_name["sweep"]["msgs_per_update"]
    )

    # The convergence-only baseline fails to reach even convergence here.
    assert by_name["convergent"]["measured_consistency"] == "none"
