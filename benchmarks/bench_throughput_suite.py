"""Benchmark TS: the batched-scheduler throughput regression suite.

Runs :func:`repro.harness.throughput.run_suite` -- per-update SWEEP vs
the batched sweep scheduler, local and TCP transports, paced and
saturated arrival regimes -- and pins the acceptance claims of the
batching work:

* protocol integrity in every cell: all updates delivered and installed,
  consistency never below strong;
* per-update SWEEP unchanged: complete consistency, one install per
  update, exact ``2(n-1)`` messages per update;
* the headline: saturated batched-sweep on the local transport clears
  ``SPEEDUP_TARGET`` times the recorded pre-batching baseline
  (``results/runtime_throughput.txt``), and batching beats per-update
  processing on every saturated transport.

The rendered table lands in ``results/throughput_suite.txt``; the JSON
artifact consumed by the CI regression gate is produced by
``python -m repro bench-throughput`` (see docs/performance.md).
"""

from benchmarks.conftest import run_once
from repro.harness.throughput import (
    BASELINE_UPDATES_PER_SEC,
    SPEEDUP_TARGET,
    format_suite,
    run_suite,
    speedups,
)


def bench_throughput_suite(benchmark, save_result):
    rows = run_once(benchmark, run_suite)
    save_result("throughput_suite", format_suite(rows))
    by_key = {
        (row["mode"], row["transport"], row["algorithm"]): row for row in rows
    }

    for row in rows:
        # No cell may lose updates or weaken consistency below strong.
        assert row["updates_installed"] == row["updates"], row
        assert row["consistency"] in ("strong", "complete"), row
        if row["algorithm"] == "sweep":
            # Per-update SWEEP is the untouched reference: complete
            # consistency, one install per update.
            assert row["consistency"] == "complete", row
            assert row["installs"] == row["updates"], row
        else:
            # Batching must actually batch once the queue backs up.
            if row["mode"] == "saturated":
                assert row["installs"] < row["updates"], row

    # The headline floor: 3x the recorded pre-batching local throughput.
    headline = by_key[("saturated", "local", "batched-sweep")]
    floor = SPEEDUP_TARGET * BASELINE_UPDATES_PER_SEC
    assert headline["updates_per_sec"] >= floor, (
        f"saturated/local batched-sweep at {headline['updates_per_sec']}"
        f" upd/s misses the {floor:.0f} upd/s floor"
    )

    # Relative speedup on every saturated transport: batching wins.
    ratios = speedups(rows)
    assert ratios["saturated/local"] >= 2.0, ratios
    assert ratios["saturated/tcp"] >= 2.0, ratios

    # Batching also slashes message volume (O(n)+k vs O(n) per update).
    for transport in ("local", "tcp"):
        fast = by_key[("saturated", transport, "batched-sweep")]
        base = by_key[("saturated", transport, "sweep")]
        assert fast["messages_total"] < base["messages_total"] / 2
