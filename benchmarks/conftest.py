"""Shared benchmark plumbing.

Each ``bench_*`` module regenerates one paper artifact (DESIGN.md Section
4).  The pattern: ``benchmark.pedantic`` times the experiment once (these
are full simulator runs, not microseconds-scale kernels), the resulting
paper-style table is printed *and* written to ``results/``, and shape
assertions pin the qualitative claims (who wins, by roughly what factor).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def save_result():
    """Write a rendered table to results/<name>.txt (and echo it)."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` with a single round (experiments are seconds-scale)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
