#!/usr/bin/env python3
"""Aggregates over a maintained view -- the paper's Section 2 extension.

The paper restricts its model to SPJ views "for simplicity" and notes that
aggregates are possible.  This example attaches a live GROUP BY dashboard
(order count / revenue / price extremes per store) to the warehouse view;
every SWEEP install updates the aggregates incrementally from the view
delta, so the dashboard stays completely consistent with the view without
ever rescanning it.

    python examples/aggregate_dashboard.py
"""

from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.relational.aggregate import AggregateSpec, recompute_aggregate

import examples_path_shim  # noqa: F401  (allows running from repo root)

from retail_dashboard import build_workload


def main() -> None:
    workload = build_workload()
    attached = {}

    def hook(warehouse):
        attached["dashboard"] = warehouse.store.attach_aggregate(
            group_by=("sid", "region"),
            aggregates=(
                AggregateSpec("count", name="orders"),
                AggregateSpec("sum", "price", name="revenue"),
                AggregateSpec("min", "price"),
                AggregateSpec("max", "price"),
            ),
        )

    result = run_experiment(
        ExperimentConfig(
            algorithm="sweep",
            workload=workload,
            n_sources=3,
            backend="sqlite",
            latency=2.0,
            seed=42,
        ),
        warehouse_hook=hook,
    )
    dashboard = attached["dashboard"]

    print("Per-store dashboard after the full event stream:")
    print(dashboard.as_relation().pretty())
    print()

    expected = recompute_aggregate(
        result.final_view, ("sid", "region"), dashboard.aggregates
    )
    ok = dashboard.as_relation() == expected
    print(f"Incrementally maintained == recomputed from the view: {ok}")
    print()
    print(result.report())


if __name__ == "__main__":
    main()
