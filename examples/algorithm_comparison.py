#!/usr/bin/env python3
"""Run all five Table 1 algorithms (plus baselines) on one update history.

A compact, runnable version of the paper's Table 1: same workload, every
algorithm, measured consistency and message costs side by side.

    python examples/algorithm_comparison.py
"""

from repro.harness.experiments.table1 import format_table1, run_table1


def main() -> None:
    print("Running all algorithms on a shared 24-update history"
          " (n=4 sources, latency > inter-arrival time)...\n")
    rows = run_table1(seed=7, n_sources=4, n_updates=24, include_baselines=True)
    print(format_table1(rows))
    print()
    print("Reading guide (the paper's claims, visible in the numbers):")
    print(" * sweep        -- complete consistency at exactly 2(n-1)=6"
          " msgs/update, installs every update")
    print(" * c-strobe     -- also complete, but remote compensation"
          " cascades push msgs/update far above SWEEP")
    print(" * nested-sweep -- strong consistency, msgs amortized below"
          " SWEEP by folding concurrent updates into one sweep")
    print(" * strobe/eca   -- strong but install only at quiescence"
          " (installs << updates under this load)")
    print(" * convergent   -- no compensation at all: the view diverges")


if __name__ == "__main__":
    main()
