#!/usr/bin/env python3
"""The update anomaly of Section 3, made visible.

Runs the *same* racing update history twice: once with naive incremental
maintenance (sweep the sources, never compensate -- what a
convergence-only product does) and once with SWEEP.  The naive warehouse
ends up with a view that matches **no** state the sources ever were in;
SWEEP's installs all verify completely consistent.

    python examples/anomaly_demo.py
"""

from repro.consistency.checker import evaluate_at
from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.simulation.rng import RngRegistry
from repro.workloads.scenarios import make_workload
from repro.workloads.stream import UpdateStreamConfig


def hostile_workload():
    """Updates arriving much faster than a sweep completes."""
    rng = RngRegistry(3).stream("anomaly")
    return make_workload(
        4,
        rng,
        rows_per_relation=10,
        match_fraction=1.0,
        stream=UpdateStreamConfig(
            n_updates=30, mean_interarrival=1.0, insert_fraction=0.5
        ),
    )


def main() -> None:
    workload = hostile_workload()
    runs = {}
    for algorithm in ("convergent", "sweep"):
        runs[algorithm] = run_experiment(
            ExperimentConfig(
                algorithm=algorithm,
                workload=workload,
                n_sources=4,
                latency=8.0,
                latency_model="uniform",
                seed=3,
            )
        )

    naive, sweep = runs["convergent"], runs["sweep"]

    print("Same 30-update history, two maintenance strategies:\n")
    for name, result in runs.items():
        verdict = result.classified_level.name
        print(f"  {name:<11}: consistency = {verdict:<9}"
              f" installs = {result.installs}")
    print()

    truth = evaluate_at(
        sweep.recorder.view, sweep.recorder.history,
        sweep.recorder.history.final_vector(),
    )
    print(f"Ground truth final view: {truth.distinct_count} rows")
    print(f"SWEEP final view       : {sweep.final_view.distinct_count} rows"
          f" (equal: {sweep.final_view == truth})")
    print(f"naive final view       : {naive.final_view.distinct_count} rows"
          f" (equal: {naive.final_view == truth})")
    print()

    diff_missing = [
        row for row in truth.rows() if naive.final_view.count(row) != truth.count(row)
    ]
    diff_phantom = [
        row for row in naive.final_view.rows()
        if naive.final_view.count(row) != truth.count(row)
    ]
    print(f"Rows the naive view got wrong: {len(set(diff_missing) | set(diff_phantom))}"
          f" (anomaly counter: {naive.warehouse.anomalies})")
    print()
    assert sweep.classified_level == ConsistencyLevel.COMPLETE
    print("SWEEP's on-line local error correction removed every error term;"
          " the oracle verified complete consistency for all"
          f" {sweep.installs} installed states.")


if __name__ == "__main__":
    main()
