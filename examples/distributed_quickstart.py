#!/usr/bin/env python3
"""Distributed quickstart: SWEEP over real TCP connections.

Hosts a 3-source warehouse on the asyncio runtime: each data source and
the warehouse get their own listener on the loopback interface, updates
and sweep queries travel as length-prefixed JSON frames through FIFO TCP
sessions, and the oracle checks the same consistency guarantees the
simulator checks.  The final view provably matches what a simulator run
of the identical seeded workload produces.

    python examples/distributed_quickstart.py
"""

from repro import quick_run
from repro.runtime import quick_distributed


def main() -> None:
    result = quick_distributed(
        algorithm="sweep",
        n_sources=3,
        n_updates=20,
        seed=7,
        transport="tcp",  # loopback TCP, real frames; try "local" for queues
        time_scale=0.005,  # wall seconds per virtual time unit
        mean_interarrival=2.0,  # updates race the sweeps
    )

    print(result.report())
    print()
    print("Final materialized view (maintained over TCP):")
    print(result.final_view.pretty())

    # The same config on the simulator converges to the same view.
    simulated = quick_run(
        algorithm="sweep", n_sources=3, n_updates=20, seed=7,
        mean_interarrival=2.0,
    )
    match = result.final_view == simulated.final_view
    print()
    print(f"Matches the simulator's final view for the same workload: {match}")


if __name__ == "__main__":
    main()
