"""Make sibling example modules (and the repo root) importable anywhere."""

import pathlib
import sys

_here = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(_here))
sys.path.insert(0, str(_here.parent))
