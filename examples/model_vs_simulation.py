#!/usr/bin/env python3
"""The analytical model vs the simulator, across the load spectrum.

Reproduces the role of the paper's [Yur97] analytical companion: closed-
form first-order predictions for SWEEP's compensation frequency and
install lag (M/D/1), Nested SWEEP's absorption factor and ECA's query-term
growth -- printed side by side with measurements at each update rate.
Watch the predicted instability point (rho = lambda * 2L(n-1) = 1): beyond
it the model says "infinite", and the measured lag indeed grows with the
stream instead of converging.

    python examples/model_vs_simulation.py
"""

from repro.analysis.model import sweep_duration, sweep_utilization
from repro.harness.report import format_dict_table

import examples_path_shim  # noqa: F401

from benchmarks.bench_model_validation import RATES, LATENCY, N, run_validation_rows


def main() -> None:
    d = sweep_duration(N, LATENCY)
    print(f"Setup: n={N} sources, mean latency L={LATENCY},"
          f" sweep duration D = 2L(n-1) = {d:.0f}.")
    print("Utilization rho = lambda * D at each rate:",
          {lam: round(sweep_utilization(N, lam, LATENCY), 2) for lam in RATES})
    print()
    rows = run_validation_rows()
    print(
        format_dict_table(
            rows,
            columns=[
                "rate", "comp/upd model", "comp/upd meas", "lag model",
                "lag meas", "absorb model", "absorb meas",
                "eca terms model", "eca terms meas",
            ],
            title="Analytical model vs simulation",
        )
    )
    print()
    print("Reading guide:")
    print(" * stable regime (rho < 1): M/D/1 lag predictions land within"
          " ~10%; absorption ~ 1/(1-rho).")
    print(" * rho >= 1: the model predicts divergence; measured lag grows"
          " with stream length and Nested SWEEP folds the entire stream"
          " into one install.")


if __name__ == "__main__":
    main()
