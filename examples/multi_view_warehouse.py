#!/usr/bin/env python3
"""Several materialized views, one update stream, shared sweeps.

A warehouse rarely serves a single view.  This example maintains three
views over the same three-source chain:

* ``full``     -- all keys plus the last payload (the standard view),
* ``payloads`` -- payload columns only (no keys: Strobe-family algorithms
  would reject it, SWEEP does not care),
* ``cheap``    -- the full view filtered to V3 < 500.

Each sweep step ships all three partial view changes in ONE batched
message per source, so the message count per update is 2(n-1) no matter
how many views are maintained -- and every view is verified completely
consistent, independently.

    python examples/multi_view_warehouse.py
"""

import random

from repro.harness.multiview_runner import run_multi_view
from repro.relational.predicate import AttrCompare
from repro.workloads.schema_gen import chain_view
from repro.workloads.scenarios import make_workload
from repro.workloads.stream import UpdateStreamConfig


def main() -> None:
    views = [
        chain_view(3, name="full"),
        chain_view(3, project_keys=False, name="payloads"),
        chain_view(3, name="cheap", selection=AttrCompare("V3", "<", 500)),
    ]
    workload = make_workload(
        3,
        random.Random(7),
        rows_per_relation=10,
        match_fraction=1.0,
        stream=UpdateStreamConfig(
            n_updates=18, mean_interarrival=1.0, insert_fraction=0.5,
        ),
    )

    result = run_multi_view(views, workload, seed=7, latency=6.0)

    print(f"{result.updates_delivered} updates maintained"
          f" {len(views)} views with {result.queries_sent} queries"
          f" ({result.queries_sent / result.updates_delivered:.0f} per"
          " update -- same as a single view).\n")
    for view in views:
        level = result.levels[view.name]
        contents = result.final_views[view.name]
        print(f"view {view.name!r}: {contents.distinct_count} rows,"
              f" consistency = {level.name}")
    print()
    print("The 'cheap' view (V3 < 500):")
    print(result.final_views["cheap"].pretty())


if __name__ == "__main__":
    main()
