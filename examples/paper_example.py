#!/usr/bin/env python3
"""The paper's Section 5.2 / Figure 5 example, replayed with full tracing.

Three base relations, the view V = pi_[D,F](R1 |><| R2 |><| R3), and three
updates racing each other's sweeps.  The script prints the message-level
trace (queries, answers, compensations) and the installed view after each
update, matching Figure 5 exactly.

    python examples/paper_example.py
"""

from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.workloads.paper_example import (
    PAPER_EXPECTED_TRAJECTORY,
    paper_example_states,
    paper_example_updates,
    paper_example_view,
)
from repro.workloads.scenarios import Workload


def main() -> None:
    view = paper_example_view()
    print("View definition:")
    print(f"  {view}")
    print()
    print("Initial source contents:")
    for name, relation in paper_example_states().items():
        print(f"--- {name} ---")
        print(relation.pretty())
    print()

    workload = Workload(
        view=view,
        initial_states=paper_example_states(),
        schedules=paper_example_updates(spacing=0.5),  # all three race
        description="Figure 5",
    )
    result = run_experiment(
        ExperimentConfig(
            algorithm="sweep",
            workload=workload,
            n_sources=3,
            latency=5.0,
            latency_model="constant",
            trace=True,
        )
    )

    from repro.harness.timeline import render_timeline

    print("Message-level timeline (updates committed 0.5 apart, latency 5):")
    print(render_timeline(result.trace))
    print()

    print("Installed view states vs Figure 5:")
    measured = [result.recorder.snapshots.initial.as_dict()] + [
        s.view.as_dict() for s in result.recorder.snapshots
    ]
    events = ["initial", "+(3,5) at R2", "-(7,8) at R3", "-(2,3) at R1"]
    for step, event in enumerate(events):
        expected = dict(PAPER_EXPECTED_TRAJECTORY[step])
        ok = "ok" if measured[step] == expected else "MISMATCH"
        print(f"  after {event:<14}: {measured[step]}   [{ok}]")
    print()
    print(result.report())


if __name__ == "__main__":
    main()
