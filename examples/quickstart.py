#!/usr/bin/env python3
"""Quickstart: maintain a 3-source warehouse view with SWEEP.

Runs a generated workload of 20 updates against three autonomous data
sources, maintains the join view incrementally with SWEEP, and prints the
run report -- including the oracle's verdict that every installed view
state was completely consistent.

    python examples/quickstart.py
"""

from repro import quick_run


def main() -> None:
    result = quick_run(
        algorithm="sweep",
        n_sources=3,
        n_updates=20,
        seed=7,
        mean_interarrival=2.0,  # updates race the sweeps
    )

    print(result.report())
    print()
    print("Final materialized view:")
    print(result.final_view.pretty())
    print()
    comps = result.metrics.counters.get("compensations", 0)
    print(
        f"SWEEP compensated {comps} interfering update(s) locally --"
        " no compensation queries were sent."
    )


if __name__ == "__main__":
    main()
