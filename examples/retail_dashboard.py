#!/usr/bin/env python3
"""Retail dashboard: sqlite-backed sources, a revenue view, live updates.

The scenario the paper's introduction motivates: three autonomous
operational systems -- an order-entry system, a product catalog and a
store directory -- each too busy to answer analytical queries.  A
warehouse materializes

    V = orders |><| products |><| stores   (order/product/store keys,
                                            region and price retained)

and SWEEP keeps it completely consistent while orders stream in, prices
change and a store closes mid-stream.  Every source is a real sqlite3
database; the warehouse's sweep queries execute as SQL at the sources.

    python examples/retail_dashboard.py
"""

from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.relational.predicate import AttrEq
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.view import ViewDefinition
from repro.sources.transactions import Transaction
from repro.sources.updater import ScheduledUpdate
from repro.workloads.scenarios import Workload

ORDERS = Schema(("order_id", "product_id", "store_id"), key=("order_id",))
PRODUCTS = Schema(("pid", "price"), key=("pid",))
STORES = Schema(("sid_ref", "sid", "region"), key=("sid",))
# orders.product_id -> products.pid ; orders.store_id -> stores.sid_ref?
# The chain is orders |><| products |><| stores; stores joins back to the
# order's store via a carried attribute, so put store_id equality on the
# stores link through products' chain position: orders joins products on
# product_id = pid, and stores joins on store_id = sid.


def build_view() -> ViewDefinition:
    return ViewDefinition(
        name="revenue",
        relation_names=("orders", "products", "stores"),
        schemas=(ORDERS, PRODUCTS, STORES),
        join_conditions=(
            AttrEq("product_id", "pid"),
            AttrEq("store_id", "sid"),
        ),
        projection=("order_id", "pid", "sid", "price", "region"),
    )


def build_workload() -> Workload:
    view = build_view()
    initial = {
        "orders": Relation(ORDERS, [
            (1001, 1, 10), (1002, 2, 10), (1003, 1, 11),
        ]),
        "products": Relation(PRODUCTS, [(1, 25), (2, 40), (3, 15)]),
        "stores": Relation(STORES, [(0, 10, "west"), (0, 11, "east")]),
    }
    # A stream of operational events:
    schedules = {
        # order entry: new orders arrive steadily
        1: [
            ScheduledUpdate(1.0, Transaction().insert((1004, 2, 11)).as_delta(ORDERS)),
            ScheduledUpdate(3.0, Transaction().insert((1005, 3, 10)).as_delta(ORDERS)),
            ScheduledUpdate(8.0, Transaction().insert((1006, 1, 10)).as_delta(ORDERS)),
            # a cancellation + replacement, atomically
            ScheduledUpdate(
                12.0,
                Transaction()
                .delete((1002, 2, 10))
                .insert((1007, 2, 11))
                .as_delta(ORDERS),
            ),
        ],
        # catalog: a price change is a modify = delete + insert
        2: [
            ScheduledUpdate(
                4.0, Transaction().modify((2, 40), (2, 45)).as_delta(PRODUCTS)
            ),
        ],
        # store directory: the east store closes mid-stream
        3: [
            ScheduledUpdate(
                10.0, Transaction().delete((0, 11, "east")).as_delta(STORES)
            ),
        ],
    }
    return Workload(
        view=view,
        initial_states=initial,
        schedules=schedules,
        description="retail dashboard",
    )


def main() -> None:
    workload = build_workload()
    result = run_experiment(
        ExperimentConfig(
            algorithm="sweep",
            workload=workload,
            n_sources=3,
            backend="sqlite",  # sweeps run as SQL at the sources
            latency=2.0,
            latency_model="uniform",
            seed=42,
            trace=True,
        )
    )

    print("Revenue view after every operational event:")
    for snap in result.recorder.snapshots:
        print(f"\n[t={snap.time:6.2f}] {snap.note}")
        print(snap.view.pretty())

    print()
    print(result.report())
    print()
    print(
        "Note how the price change at t=4 rewrites the price column of"
        " in-flight orders, and the store closure at t=10 removes every"
        " east-region row -- each installed state is a completely"
        " consistent snapshot even though the events raced the sweeps."
    )


if __name__ == "__main__":
    main()
