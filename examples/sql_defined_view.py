#!/usr/bin/env python3
"""Define the warehouse view in SQL -- the paper's own syntax.

Section 5.2 writes the example view as a SQL query; this example feeds
that exact text to the parser, builds the workload around the resulting
ViewDefinition and maintains it with SWEEP.

    python examples/sql_defined_view.py
"""

from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.relational import Schema, parse_view
from repro.workloads.paper_example import (
    paper_example_states,
    paper_example_updates,
)
from repro.workloads.scenarios import Workload

PAPER_SQL = """
    SELECT R2.D, R3.F
    WHERE  R1.B = R2.C AND R2.D = R3.E
"""

CATALOG = {
    "R1": Schema(("A", "B")),
    "R2": Schema(("C", "D")),
    "R3": Schema(("E", "F")),
}


def main() -> None:
    view = parse_view(PAPER_SQL, CATALOG, name="V")
    print("SQL:", " ".join(PAPER_SQL.split()))
    print("Parsed:", view)
    print()

    workload = Workload(
        view=view,
        initial_states=paper_example_states(),
        schedules=paper_example_updates(spacing=0.5),
    )
    result = run_experiment(
        ExperimentConfig(algorithm="sweep", workload=workload, n_sources=3,
                         latency=5.0)
    )
    print(result.report())
    assert result.classified_level == ConsistencyLevel.COMPLETE
    print()
    print("Final view:")
    print(result.final_view.pretty())


if __name__ == "__main__":
    main()
