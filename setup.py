"""Legacy setup shim.

The sandboxed environment ships a setuptools too old for PEP 660 editable
installs (no ``wheel``/``bdist_wheel``).  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` work offline; all
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
