"""Reproduction of *Efficient View Maintenance at Data Warehouses* (SIGMOD 1997).

This package implements the SWEEP and Nested SWEEP incremental view
maintenance algorithms of Agrawal, El Abbadi, Singh and Yurek, together with
every substrate they require and every baseline the paper compares against:

* :mod:`repro.relational` -- a multiset (bag) relational engine with signed
  tuple counts, SPJ view definitions and delta algebra.
* :mod:`repro.simulation` -- a deterministic discrete-event kernel with
  generator-based processes and reliable FIFO channels.
* :mod:`repro.sources` -- data-source servers (paper Figure 3) backed by
  in-memory relations or sqlite3 tables.
* :mod:`repro.warehouse` -- the warehouse runtime (paper Figure 4) hosting
  SWEEP, Nested SWEEP, ECA, Strobe, C-Strobe and naive baselines.
* :mod:`repro.consistency` -- oracles that verify convergence, weak, strong
  and complete consistency of installed view snapshots.
* :mod:`repro.workloads` -- seeded workload and scenario generators,
  including the paper's Figure 5 example.
* :mod:`repro.harness` -- experiment runner and paper-style reporting used
  by the benchmark suite to regenerate Table 1 and the analytical claims.

Quickstart::

    from repro import quick_run
    result = quick_run(algorithm="sweep", n_sources=3, n_updates=20, seed=7)
    print(result.report())
"""

from repro._version import __version__
from repro.api import quick_run

__all__ = ["__version__", "quick_run"]
