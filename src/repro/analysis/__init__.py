"""Analytical performance models (the paper's [Yur97] companion analysis).

Section 6.2 references an analytical model characterizing Nested SWEEP's
performance; the thesis itself is not public, so this package derives the
natural first-order models from the paper's stated assumptions (Poisson
update arrivals, FIFO channels with known mean latency, sequential query
service) and validates them against the simulator:

* :func:`~repro.analysis.model.sweep_messages_per_update` -- exact.
* :func:`~repro.analysis.model.expected_compensation_events` -- how often
  SWEEP's local error correction fires.
* :func:`~repro.analysis.model.sweep_utilization` /
  :func:`~repro.analysis.model.sweep_install_lag` -- M/D/1 queueing of
  sequential sweeps; predicts the staleness knee and instability point.
* :func:`~repro.analysis.model.nested_updates_per_install` -- geometric
  absorption model for Nested SWEEP's amortization.
* :func:`~repro.analysis.model.eca_expected_terms` -- compounding of
  pending-query interaction terms (the quadratic-size regime and beyond).

The ``bench_model_validation`` benchmark prints model-vs-measured tables;
tests assert agreement within stated tolerance bands.
"""

from repro.analysis.advisor import Recommendation, WorkloadFacts, explain, recommend
from repro.analysis.model import (
    eca_expected_pending,
    eca_expected_terms,
    expected_compensation_events,
    nested_updates_per_install,
    sweep_install_lag,
    sweep_messages_per_update,
    sweep_duration,
    sweep_utilization,
)

__all__ = [
    "Recommendation",
    "WorkloadFacts",
    "eca_expected_pending",
    "explain",
    "recommend",
    "eca_expected_terms",
    "expected_compensation_events",
    "nested_updates_per_install",
    "sweep_duration",
    "sweep_install_lag",
    "sweep_messages_per_update",
    "sweep_utilization",
]
