"""Algorithm advisor: pick a maintenance algorithm from workload facts.

Encodes Table 1's decision surface plus the analytical models as an
executable recommendation: given the consistency requirement, whether the
view keeps keys of every relation, the expected update rate and channel
latency, return the algorithms that *qualify* and rank them by predicted
cost, with human-readable reasoning.

This is deliberately simple -- it automates exactly the comparison the
paper's Section 7 table invites the reader to make.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.model import (
    nested_updates_per_install,
    sweep_install_lag,
    sweep_messages_per_update,
    sweep_utilization,
)
from repro.consistency.levels import ConsistencyLevel
from repro.warehouse.registry import ALGORITHMS


@dataclass(frozen=True)
class WorkloadFacts:
    """What the advisor needs to know about the deployment."""

    n_sources: int
    update_rate: float          # updates per unit time, all sources
    latency: float              # mean one-way channel latency
    required_consistency: ConsistencyLevel = ConsistencyLevel.STRONG
    view_has_all_keys: bool = False
    centralized_ok: bool = False   # can all relations live at one site?
    needs_fresh_view: bool = False  # installs must keep up with the stream
    has_global_transactions: bool = False

    def __post_init__(self) -> None:
        if self.n_sources < 1:
            raise ValueError("n_sources must be >= 1")
        if self.update_rate < 0 or self.latency < 0:
            raise ValueError("rate and latency must be >= 0")


@dataclass
class Recommendation:
    """One qualifying algorithm with predicted characteristics."""

    name: str
    predicted_msgs_per_update: float
    predicted_install_lag: float | None
    reasons: list[str] = field(default_factory=list)


def _qualifies(facts: WorkloadFacts, name: str, reasons: list[str]) -> bool:
    info = ALGORITHMS[name]
    if info.claimed_consistency < facts.required_consistency:
        return False
    if info.requires_keys and not facts.view_has_all_keys:
        return False
    if info.architecture == "centralized" and not facts.centralized_ok:
        return False
    if info.requires_quiescence and facts.needs_fresh_view:
        rho = sweep_utilization(facts.n_sources, facts.update_rate, facts.latency)
        if rho > 0.1:
            # sustained load: quiescent points become rare
            return False
        reasons.append("quiescence acceptable at this low rate")
    if facts.has_global_transactions and name != "global-sweep":
        return False
    if not facts.has_global_transactions and name == "global-sweep":
        return False  # no need for the txn machinery
    return True


def recommend(facts: WorkloadFacts) -> list[Recommendation]:
    """Qualifying algorithms, best first.

    Ranking: predicted messages per update, then predicted install lag.
    """
    candidates = []
    n, lam, latency = facts.n_sources, facts.update_rate, facts.latency
    base_msgs = float(sweep_messages_per_update(n))
    lag = sweep_install_lag(n, lam, latency)

    for name in ALGORITHMS:
        if name in ("convergent", "recompute"):
            continue  # baselines, never recommended
        reasons: list[str] = []
        if not _qualifies(facts, name, reasons):
            continue
        msgs = base_msgs
        predicted_lag: float | None = None if math.isinf(lag) else lag
        if name == "nested-sweep":
            absorb = nested_updates_per_install(n, lam, latency)
            if math.isinf(absorb):
                msgs = base_msgs * 0.2
                reasons.append(
                    "supercritical load: absorbs the whole stream per"
                    " install (view refreshes only at lulls)"
                )
                predicted_lag = None
            else:
                msgs = base_msgs / absorb
                reasons.append(
                    f"amortizes ~{absorb:.1f} updates per composite sweep"
                )
        elif name == "pipelined-sweep":
            reasons.append("overlapping sweeps keep installs near-realtime")
            predicted_lag = (n - 1) * 2 * latency  # ~one sweep, no queueing
        elif name == "sweep":
            reasons.append("one sweep per update, strictly in order")
            if predicted_lag is None:
                reasons.append(
                    "warning: sequential sweeps cannot keep up at this"
                    " rate (rho >= 1); prefer pipelined-sweep"
                )
        elif name == "bootstrap-sweep":
            reasons.append("use when the view must be built online first")
        elif name == "global-sweep":
            reasons.append("atomic multi-source transactions required")
        elif name == "eca":
            reasons.append(
                "single-site deployment; query payloads grow with rate"
            )
            msgs = 2.0
        elif name == "c-strobe":
            rho = sweep_utilization(n, lam, latency)
            msgs = base_msgs * (1.0 + 2.0 * rho)
            reasons.append(
                "remote compensation: cost rises with concurrency"
            )
        elif name == "strobe":
            msgs = base_msgs / 2  # inserts only; deletes are free
            reasons.append("installs only at quiescence")
            predicted_lag = None

        candidates.append(
            Recommendation(
                name=name,
                predicted_msgs_per_update=msgs,
                predicted_install_lag=predicted_lag,
                reasons=reasons,
            )
        )

    candidates.sort(
        key=lambda r: (
            r.predicted_msgs_per_update,
            math.inf if r.predicted_install_lag is None else r.predicted_install_lag,
        )
    )
    return candidates


def explain(facts: WorkloadFacts) -> str:
    """Human-readable advisory report."""
    recs = recommend(facts)
    lines = [
        f"workload: n={facts.n_sources} sources, rate={facts.update_rate},"
        f" latency={facts.latency},"
        f" require>={facts.required_consistency.name.lower()},"
        f" keys={'yes' if facts.view_has_all_keys else 'no'}",
        f"offered sweep load rho ="
        f" {sweep_utilization(facts.n_sources, facts.update_rate, facts.latency):.2f}",
        "",
    ]
    if not recs:
        lines.append("no registered algorithm satisfies these constraints")
        return "\n".join(lines)
    for i, rec in enumerate(recs, start=1):
        lag = (
            f"{rec.predicted_install_lag:.1f}"
            if rec.predicted_install_lag is not None
            else "unbounded under sustained load"
        )
        lines.append(
            f"{i}. {rec.name}: ~{rec.predicted_msgs_per_update:.1f}"
            f" msgs/update, install lag {lag}"
        )
        for reason in rec.reasons:
            lines.append(f"     - {reason}")
    return "\n".join(lines)


__all__ = ["Recommendation", "WorkloadFacts", "explain", "recommend"]
