"""First-order analytical models of the maintenance algorithms.

Modeling assumptions (matching the simulator's defaults):

* updates form a Poisson process of total rate ``lam``, spread uniformly
  over ``n`` sources (per-source rate ``lam/n``);
* every channel has mean one-way latency ``latency``; query service time
  at sources is negligible unless stated;
* the warehouse processes updates sequentially (plain SWEEP).

These are *first-order* models: they capture where curves bend and how
they scale, not third-digit accuracy.  Tests hold them to explicit
tolerance bands against the simulator.
"""

from __future__ import annotations

import math


# ---------------------------------------------------------------------------
# SWEEP
# ---------------------------------------------------------------------------

def sweep_messages_per_update(n: int) -> int:
    """Protocol messages per update: exactly 2(n-1), deterministically."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return 2 * (n - 1)


def sweep_duration(n: int, latency: float, service_time: float = 0.0) -> float:
    """Virtual time of one sequential sweep: (n-1) query round trips."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return (n - 1) * (2 * latency + service_time)


def expected_compensation_events(
    n: int, lam: float, latency: float, service_time: float = 0.0
) -> float:
    """Expected compensation *events* per update under Poisson arrivals.

    The answer from source ``j`` is compensated iff at least one update
    from ``j`` sits in the queue when it arrives.  An update from ``j``
    interferes iff it commits inside the query's exposure window, which
    for a query in flight is one round trip (``2*latency + service``) --
    plus everything from ``j`` that accumulated while *earlier* updates
    were being processed (queueing).  The first-order model ignores the
    backlog contribution and uses the in-flight window only, so it is a
    **lower bound** that is tight at low utilization:

        events/update = sum over the n-1 queried sources of
                        1 - exp(-(lam/n) * window)
    """
    if n < 2:
        return 0.0
    window = 2 * latency + service_time
    p_interfere = 1.0 - math.exp(-(lam / n) * window)
    return (n - 1) * p_interfere


def sweep_utilization(n: int, lam: float, latency: float) -> float:
    """Offered load of the sequential sweep server: rho = lam * D."""
    return lam * sweep_duration(n, latency)


def sweep_install_lag(n: int, lam: float, latency: float) -> float:
    """Mean delivery-to-install lag of sequential SWEEP (M/D/1).

    Service is deterministic at ``D = sweep_duration``; Poisson arrivals
    at rate ``lam``.  Pollaczek-Khinchine for M/D/1::

        W_q = rho * D / (2 * (1 - rho)),   lag = W_q + D

    Returns ``inf`` when ``rho >= 1`` (the queue grows without bound --
    the regime where the staleness experiment's lag explodes).
    """
    d = sweep_duration(n, latency)
    rho = lam * d
    if rho >= 1.0:
        return math.inf
    return rho * d / (2 * (1 - rho)) + d


# ---------------------------------------------------------------------------
# Nested SWEEP
# ---------------------------------------------------------------------------

def nested_updates_per_install(n: int, lam: float, latency: float) -> float:
    """Expected updates folded into one composite install.

    Geometric absorption model: a sweep is exposed for roughly one plain
    sweep duration ``D``; every update arriving within the exposure of a
    not-yet-passed source is absorbed and extends the recursion, which in
    turn exposes more time.  With offered load ``rho = lam * D``, the
    branching process absorbs ``1/(1-rho)`` updates in expectation while
    subcritical, and the entire stream once ``rho >= 1`` (the paper's
    oscillation regime: the install waits for the stream to break).
    """
    rho = sweep_utilization(n, lam, latency)
    if rho >= 1.0:
        return math.inf
    return 1.0 / (1.0 - rho)


# ---------------------------------------------------------------------------
# ECA
# ---------------------------------------------------------------------------

def eca_expected_pending(
    lam: float, latency: float, service_time: float = 0.0
) -> float:
    """Expected in-flight queries when a new update arrives (M/G/infinity).

    Each query occupies one round trip; arrivals are Poisson, so the
    number in flight is Poisson with mean ``lam * round_trip``.
    """
    return lam * (2 * latency + service_time)


def eca_expected_terms(lam: float, latency: float, service_time: float = 0.0) -> float:
    """Expected signed terms per ECA query.

    A new query starts from one term and adds (roughly) every term of
    every pending query, so term counts satisfy ``T = 1 + K * T`` with
    ``K`` the expected pending count -- i.e. ``T = 1/(1-K)`` while
    subcritical, diverging as the pending population reaches one full
    query's worth.  Beyond ``K >= 1`` term counts compound each round
    trip; the model returns ``inf`` there (the measured curve grows until
    the finite stream ends).
    """
    k = eca_expected_pending(lam, latency, service_time)
    if k >= 1.0:
        return math.inf
    return 1.0 / (1.0 - k)


__all__ = [
    "eca_expected_pending",
    "eca_expected_terms",
    "expected_compensation_events",
    "nested_updates_per_install",
    "sweep_duration",
    "sweep_install_lag",
    "sweep_messages_per_update",
    "sweep_utilization",
]
