"""Top-level convenience API.

:func:`quick_run` wires a generated workload, a set of simulated data
sources and a maintenance algorithm into one simulator run and returns the
:class:`~repro.harness.results.RunResult`.  It is the one-call entry point
used by the README quickstart; richer configuration lives in
:mod:`repro.harness`.
"""

from __future__ import annotations


def quick_run(
    algorithm: str = "sweep",
    n_sources: int = 3,
    n_updates: int = 20,
    seed: int = 0,
    **overrides,
):
    """Run one maintenance experiment end to end.

    Parameters
    ----------
    algorithm:
        One of the registered algorithm names (``"sweep"``,
        ``"nested-sweep"``, ``"strobe"``, ``"c-strobe"``, ``"eca"``,
        ``"convergent"``, ``"recompute"``).
    n_sources:
        Number of autonomous data sources (the paper's ``n``).
    n_updates:
        Total updates generated across all sources.
    seed:
        Seed for all randomness (workload, latencies).
    overrides:
        Any additional :class:`~repro.harness.config.ExperimentConfig`
        fields (e.g. ``mean_interarrival=5.0``, ``backend="sqlite"``).

    Returns
    -------
    RunResult
        Metrics, installed snapshots and consistency verdicts.
    """
    from repro.harness.config import ExperimentConfig
    from repro.harness.runner import run_experiment

    config = ExperimentConfig(
        algorithm=algorithm,
        n_sources=n_sources,
        n_updates=n_updates,
        seed=seed,
        **overrides,
    )
    return run_experiment(config)


__all__ = ["quick_run"]
