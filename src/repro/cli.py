"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``              one maintenance experiment (all ExperimentConfig knobs)
``run-distributed``  the same experiment on the asyncio runtime (TCP/local)
``run-sharded``      a view family partitioned across warehouse shards
``serve-warehouse``  host the warehouse site of a multi-process deployment
``serve-source``     host one data-source site of a multi-process deployment
``serve-shard``      host one warehouse shard of a sharded deployment
``algorithms``       list registered algorithms with their Table 1 properties
``table1``           regenerate the measured Table 1
``fig5``             replay the paper's Figure 5 example
``experiments``      run every experiment module and print its table
``bench-throughput`` run the throughput regression suite (BENCH_throughput.json)
``conformance``      sweep algorithms x chaos fault profiles against the oracle
``recovery-sweep``   crash + recover each seeded case against its baseline
``failover-sweep``   kill primaries, promote standbys, compare baselines
``rebalance``        host a sharded fleet and migrate one view mid-run
``rebalance-sweep``  migrate views at protocol points, compare baselines
"""

from __future__ import annotations

import argparse
import sys


def _add_run_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("run", help="run one maintenance experiment")
    p.add_argument("--algorithm", "-a", default="sweep")
    p.add_argument("--sources", "-n", type=int, default=3)
    p.add_argument("--updates", "-u", type=int, default=20)
    p.add_argument("--seed", "-s", type=int, default=0)
    p.add_argument("--backend", choices=("memory", "sqlite"), default="memory")
    p.add_argument("--latency", type=float, default=5.0)
    p.add_argument(
        "--latency-model", choices=("constant", "uniform", "exponential"),
        default="uniform",
    )
    p.add_argument("--interarrival", type=float, default=10.0)
    p.add_argument("--insert-fraction", type=float, default=0.6)
    p.add_argument("--rows", type=int, default=20)
    p.add_argument("--global-txn-fraction", type=float, default=0.0)
    p.add_argument("--no-keys", action="store_true",
                   help="project out key attributes (rejected by Strobe family)")
    p.add_argument("--locality", choices=("off", "aux", "cache", "auto"),
                   default="off",
                   help="query-locality layer: auxiliary source copies"
                        " and/or delta-patched answer caching")
    p.add_argument("--locality-budget", type=int, default=0,
                   help="row budget for the locality layer (0 = unlimited)")
    p.add_argument("--trace", action="store_true", help="print the event trace")
    p.add_argument("--no-check", action="store_true",
                   help="skip consistency verification")
    p.add_argument("--show-view", action="store_true",
                   help="print the final materialized view")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness.config import ExperimentConfig
    from repro.harness.runner import run_experiment

    config = ExperimentConfig(
        algorithm=args.algorithm,
        n_sources=args.sources,
        n_updates=args.updates,
        seed=args.seed,
        backend=args.backend,
        latency=args.latency,
        latency_model=args.latency_model,
        mean_interarrival=args.interarrival,
        insert_fraction=args.insert_fraction,
        rows_per_relation=args.rows,
        global_txn_fraction=args.global_txn_fraction,
        project_keys=not args.no_keys,
        locality=args.locality,
        locality_budget_rows=args.locality_budget,
        trace=args.trace,
        check_consistency=not args.no_check,
    )
    result = run_experiment(config)
    if args.trace and result.trace is not None:
        print(result.trace.format())
        print()
    print(result.report())
    if args.show_view:
        print()
        print(result.final_view.pretty())
    return 0


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    """Config knobs every site of one deployment must agree on."""
    p.add_argument("--algorithm", "-a", default="sweep")
    p.add_argument("--sources", "-n", type=int, default=3)
    p.add_argument("--updates", "-u", type=int, default=20)
    p.add_argument("--seed", "-s", type=int, default=0)
    p.add_argument("--backend", choices=("memory", "sqlite"), default="memory")
    p.add_argument("--interarrival", type=float, default=10.0)
    p.add_argument("--insert-fraction", type=float, default=0.6)
    p.add_argument("--rows", type=int, default=20)
    p.add_argument("--time-scale", type=float, default=0.01,
                   help="wall seconds per virtual time unit")
    p.add_argument("--views", type=int, default=1,
                   help="size of the maintained view family (sharded runs)")
    p.add_argument("--batch-max", type=int, default=0,
                   help="batched-sweep drain cap (0 drains the whole queue)")
    p.add_argument("--adaptive-batch", action="store_true",
                   help="derive the batched-sweep drain cap from observed"
                        " queue depth and install lag")
    p.add_argument("--locality", choices=("off", "aux", "cache", "auto"),
                   default="off",
                   help="query-locality layer: auxiliary source copies"
                        " and/or delta-patched answer caching")
    p.add_argument("--locality-budget", type=int, default=0,
                   help="row budget for the locality layer (0 = unlimited)")


def _workload_config(args: argparse.Namespace, **extra):
    from repro.harness.config import ExperimentConfig

    return ExperimentConfig(
        algorithm=args.algorithm,
        n_sources=args.sources,
        n_updates=args.updates,
        seed=args.seed,
        backend=args.backend,
        mean_interarrival=args.interarrival,
        insert_fraction=args.insert_fraction,
        rows_per_relation=args.rows,
        n_views=args.views,
        batch_max=args.batch_max,
        batch_adaptive=args.adaptive_batch,
        locality=args.locality,
        locality_budget_rows=args.locality_budget,
        **extra,
    )


def _parse_address(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    return (host or "127.0.0.1", int(port))


def _add_tcp_args(p: argparse.ArgumentParser) -> None:
    """Transport fast-path knobs shared by every TCP-speaking command."""
    p.add_argument(
        "--codec-version", type=int, default=None, metavar="N",
        choices=(1, 2, 3),
        help="pin the advertised wire codec: 1 disables mb frames and"
             " flat-row encoding, 2 is JSON flat rows, 3 serializes frames"
             " through the binary kernel (binwire); peers negotiate the"
             " pairwise minimum and decode accepts every version"
             " (default: 2; 3 is opt-in)",
    )
    p.add_argument(
        "--compress-min", type=int, default=None, metavar="BYTES",
        help="zlib-compress frames whose body is at least BYTES long"
             " (0 disables compression; default: 16384)",
    )
    p.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="connection attempts before a peer is declared dead (default: 8)",
    )
    p.add_argument(
        "--connect-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt TCP connect timeout (default: 5.0)",
    )


def _tcp_config(args: argparse.Namespace):
    """A TcpChannelConfig from CLI knobs, or None for pure defaults."""
    kwargs = {}
    if args.codec_version is not None:
        kwargs["codec_version"] = args.codec_version
    if args.compress_min is not None:
        kwargs["compress_min_bytes"] = args.compress_min or None
    if args.max_retries is not None:
        kwargs["max_retries"] = args.max_retries
    if args.connect_timeout is not None:
        kwargs["connect_timeout"] = args.connect_timeout
    if not kwargs:
        return None
    from repro.runtime import TcpChannelConfig

    return TcpChannelConfig(**kwargs)


def _add_run_distributed_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "run-distributed",
        help="run one experiment on the asyncio runtime (all sites in-process)",
    )
    _add_workload_args(p)
    _add_tcp_args(p)
    p.add_argument("--transport", choices=("tcp", "local"), default="tcp")
    p.add_argument("--host", default="127.0.0.1",
                   help="interface the TCP listeners bind")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="wall-clock quiescence timeout in seconds")
    p.add_argument("--chaos", default=None, metavar="PROFILE",
                   help="inject transport faults from a named chaos profile"
                        " (healthy/delay/dup/drop/crash/hostile/source-stall/"
                        "source-burst/source-reorder/crash-restart)")
    p.add_argument("--no-check", action="store_true",
                   help="skip consistency verification")
    p.add_argument("--show-view", action="store_true",
                   help="print the final materialized view")


def _cmd_run_distributed(args: argparse.Namespace) -> int:
    from repro.runtime import run_distributed

    config = _workload_config(args, check_consistency=not args.no_check)
    result = run_distributed(
        config,
        transport=args.transport,
        time_scale=args.time_scale,
        host=args.host,
        timeout=args.timeout,
        tcp_config=_tcp_config(args),
        chaos=args.chaos,
    )
    print(result.report())
    if args.show_view:
        print()
        print(result.final_view.pretty())
    return 0


def _add_run_sharded_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "run-sharded",
        help="partition a view family across warehouse shards and run to"
             " quiescence",
    )
    _add_workload_args(p)
    _add_tcp_args(p)
    p.add_argument("--shards", type=int, default=2,
                   help="number of warehouse shards")
    p.add_argument("--replicas", type=int, default=0,
                   help="hot standbys per shard (0 = no replication)")
    p.add_argument("--strategy", choices=("hash", "round-robin"),
                   default="hash", help="view-to-shard assignment rule")
    p.add_argument("--transport", choices=("tcp", "local"), default="local")
    p.add_argument("--host", default="127.0.0.1",
                   help="interface the TCP listeners bind")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="wall-clock quiescence timeout in seconds")
    p.add_argument("--chaos", default=None, metavar="PROFILE",
                   help="inject transport faults from a named chaos profile")
    p.add_argument("--processes", action="store_true",
                   help="launch every shard and source as its own OS process"
                        " under the shard supervisor (implies TCP)")
    p.add_argument("--durable-dir", default=None, metavar="DIR",
                   help="checkpoint + WAL root; each shard persists to"
                        " DIR/shard<id> and a re-run recovers from it")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   metavar="N", help="checkpoint every N installed updates")
    p.add_argument("--fsync-batch", type=int, default=8, metavar="N",
                   help="fsync the WAL once per N appended updates"
                        " (group commit; default: 8)")
    p.add_argument("--restart", choices=("never", "on-crash"),
                   default="never",
                   help="supervisor restart policy for crashed shard"
                        " processes (--processes with --durable-dir only)")
    p.add_argument("--max-restarts", type=int, default=2,
                   help="restart budget per shard process")
    p.add_argument("--rebalance", default=None, metavar="VIEW@STEP",
                   help="migrate VIEW to --rebalance-to mid-run; STEP is"
                        " deliveries:N or installs:N (bare N counts"
                        " deliveries) on the donor primary")
    p.add_argument("--rebalance-to", type=int, default=None, metavar="SHARD",
                   help="recipient shard of the --rebalance migration")
    p.add_argument("--no-check", action="store_true",
                   help="skip consistency verification")


def _checkpoint_policy(args: argparse.Namespace):
    if getattr(args, "checkpoint_every", None) is None and (
        getattr(args, "checkpoint_interval", None) is None
    ):
        return None
    from repro.durability import CheckpointPolicy

    kwargs = {}
    if getattr(args, "checkpoint_every", None) is not None:
        kwargs["every_installs"] = args.checkpoint_every
    if getattr(args, "checkpoint_interval", None) is not None:
        kwargs["every_time"] = args.checkpoint_interval
    return CheckpointPolicy(**kwargs)


def _parse_rebalance(args: argparse.Namespace):
    """``--rebalance VIEW@STEP`` + ``--rebalance-to`` -> RebalanceSpec."""
    if args.rebalance is None:
        if args.rebalance_to is not None:
            raise SystemExit("--rebalance-to needs --rebalance VIEW@STEP")
        return None
    if args.rebalance_to is None:
        raise SystemExit("--rebalance needs --rebalance-to SHARD")
    from repro.runtime import RebalanceSpec

    view, sep, step = args.rebalance.partition("@")
    if not sep or not view or not step:
        raise SystemExit(
            f"--rebalance wants VIEW@STEP, got {args.rebalance!r}"
        )
    counter, sep, count = step.partition(":")
    if not sep:
        counter, count = "deliveries", step
    if counter not in ("deliveries", "installs") or not count.isdigit():
        raise SystemExit(
            f"--rebalance STEP wants deliveries:N or installs:N, got {step!r}"
        )
    kwargs = {f"after_{counter}": int(count)}
    return RebalanceSpec(view=view, to_shard=args.rebalance_to, **kwargs)


def _cmd_run_sharded(args: argparse.Namespace) -> int:
    from repro.runtime import launch_sharded_processes, run_sharded

    config = _workload_config(args, check_consistency=not args.no_check)
    rebalance = _parse_rebalance(args)
    if args.processes and rebalance is not None:
        raise SystemExit(
            "--rebalance drives the single-loop fleet; it cannot be"
            " combined with --processes"
        )
    if args.processes:
        outputs = launch_sharded_processes(
            config,
            args.shards,
            time_scale=args.time_scale,
            strategy=args.strategy,
            host=args.host,
            timeout=args.timeout,
            durable_root=args.durable_dir,
            restart=args.restart,
            max_restarts=args.max_restarts,
            replicas=args.replicas,
        )
        for name in sorted(outputs):
            text = outputs[name].strip()
            if text:
                print(f"--- {name} ---")
                print(text)
        print(f"\nsharded deployment of {len(outputs)} process(es) exited"
              " cleanly (every shard verified its views)")
        return 0
    try:
        result = run_sharded(
            config,
            n_shards=args.shards,
            transport=args.transport,
            time_scale=args.time_scale,
            host=args.host,
            timeout=args.timeout,
            tcp_config=_tcp_config(args),
            chaos=args.chaos,
            strategy=args.strategy,
            durable_dir=args.durable_dir,
            checkpoint_policy=_checkpoint_policy(args),
            fsync_batch=args.fsync_batch,
            replicas=args.replicas,
            rebalance=rebalance,
        )
    except ValueError as exc:
        if rebalance is None:
            raise
        # A misconfigured --rebalance (primary view, unknown view,
        # inactive recipient, durability combo) is a usage error.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.report())
    return 0


def _add_rebalance_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "rebalance",
        help="host a live sharded fleet and migrate one view between"
             " shards mid-run (drain, handoff, fenced re-route)",
    )
    _add_workload_args(p)
    _add_tcp_args(p)
    # A one-view family has nothing migratable (the primary is pinned);
    # default to a family worth redistributing.
    p.set_defaults(views=4)
    p.add_argument("--shards", type=int, default=2,
                   help="number of warehouse shards")
    p.add_argument("--replicas", type=int, default=0,
                   help="hot standbys per shard (standbys migrate in"
                        " lockstep with their primaries)")
    p.add_argument("--strategy", choices=("hash", "round-robin"),
                   default="round-robin",
                   help="launch-time view-to-shard assignment rule")
    p.add_argument("--transport", choices=("tcp", "local"), default="local")
    p.add_argument("--host", default="127.0.0.1",
                   help="interface the TCP listeners bind")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="wall-clock quiescence timeout in seconds")
    p.add_argument("--view", default=None, metavar="NAME",
                   help="view to migrate (default: the first non-primary"
                        " view of the first multi-view shard)")
    p.add_argument("--to-shard", type=int, default=None, metavar="SHARD",
                   help="recipient shard (default: the next active shard)")
    p.add_argument("--after-deliveries", type=int, default=None, metavar="N",
                   help="fire after the donor primary's N-th delivery")
    p.add_argument("--after-installs", type=int, default=None, metavar="N",
                   help="fire after the donor primary's N-th install")
    p.add_argument("--no-check", action="store_true",
                   help="skip consistency verification")


def _cmd_rebalance(args: argparse.Namespace) -> int:
    from repro.harness.rebalance import pick_migration
    from repro.runtime import RebalanceSpec, run_sharded
    from repro.warehouse.sharding import partition_views, view_family

    config = _workload_config(args, check_consistency=not args.no_check)
    if args.view is None or args.to_shard is None:
        from repro.harness.runner import build_workload
        from repro.simulation.rng import RngRegistry

        workload = build_workload(config, RngRegistry(config.seed))
        family = view_family(workload.view, max(1, config.n_views))
        plan = partition_views(family, args.shards, strategy=args.strategy)
        view, to_shard = pick_migration(plan)
        view = args.view if args.view is not None else view
        to_shard = args.to_shard if args.to_shard is not None else to_shard
    else:
        view, to_shard = args.view, args.to_shard
    kwargs = {}
    if args.after_installs is not None:
        kwargs["after_installs"] = args.after_installs
    else:
        kwargs["after_deliveries"] = (
            args.after_deliveries if args.after_deliveries is not None else 3
        )
    try:
        spec = RebalanceSpec(view=view, to_shard=to_shard, **kwargs)
        result = run_sharded(
            config,
            n_shards=args.shards,
            transport=args.transport,
            time_scale=args.time_scale,
            host=args.host,
            timeout=args.timeout,
            tcp_config=_tcp_config(args),
            strategy=args.strategy,
            replicas=args.replicas,
            rebalance=spec,
        )
    except ValueError as exc:
        # Plan/spec validation (primary view, unknown view, inactive
        # recipient, bad trigger) is operator misconfiguration: a usage
        # error, not a crash.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.report())
    return 0


def _add_serve_shard_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve-shard",
        help="host one warehouse shard; sources run in other processes",
    )
    _add_workload_args(p)
    _add_tcp_args(p)
    p.add_argument("--shard-id", type=int, default=None,
                   help="which shard of the plan this process hosts")
    p.add_argument("--standby-of", type=int, default=None, metavar="SHARD",
                   help="host this process as SHARD's first hot standby"
                        " (shorthand for --shard-id SHARD --replica 1)")
    p.add_argument("--replica", type=int, default=0,
                   help="replica number within the shard's group"
                        " (0 = primary)")
    p.add_argument("--seed-from", default=None, metavar="DIR",
                   help="bootstrap a fresh standby's --durable-dir from the"
                        " newest checkpoint in the primary's durable dir")
    p.add_argument("--shards", type=int, required=True,
                   help="total number of shards in the plan")
    p.add_argument("--strategy", choices=("hash", "round-robin"),
                   default="hash", help="view-to-shard assignment rule"
                                        " (must match every other process)")
    p.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT")
    p.add_argument(
        "--source", action="append", default=[], metavar="INDEX=HOST:PORT",
        help="address of each source's listener (repeat for every source)",
    )
    p.add_argument(
        "--expect-updates", type=int, default=None,
        help="exit with a report after this many updates (default: every"
             " scheduled update)",
    )
    p.add_argument("--timeout", type=float, default=3600.0)
    p.add_argument("--no-verify", action="store_true",
                   help="do not fail the process when a view misses its"
                        " claimed consistency level")
    p.add_argument("--durable-dir", default=None, metavar="DIR",
                   help="persist checkpoints + update log here; on restart"
                        " the shard recovers and resumes from DIR")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   metavar="N", help="checkpoint every N installed updates"
                                     " (default 25)")
    p.add_argument("--checkpoint-interval", type=float, default=None,
                   metavar="SECONDS",
                   help="also checkpoint when this much wall time has"
                        " passed since the last one")
    p.add_argument("--fsync-batch", type=int, default=8, metavar="N",
                   help="fsync the WAL once per N appended updates"
                        " (group commit; default: 8)")


def _cmd_serve_shard(args: argparse.Namespace) -> int:
    import asyncio

    from repro.runtime import serve_shard_async

    config = _workload_config(args)
    if (args.shard_id is None) == (args.standby_of is None):
        raise SystemExit(
            "serve-shard needs exactly one of --shard-id or --standby-of"
        )
    shard_id = args.shard_id
    replica = args.replica
    if args.standby_of is not None:
        shard_id = args.standby_of
        replica = max(1, replica)
    addresses = {}
    for spec in args.source:
        index, _, addr = spec.partition("=")
        addresses[int(index)] = _parse_address(addr)
    if not addresses:
        raise SystemExit("serve-shard needs at least one --source")
    listen_host, listen_port = _parse_address(args.listen)
    result = asyncio.run(
        serve_shard_async(
            config,
            shard_id,
            args.shards,
            addresses,
            listen_host=listen_host,
            listen_port=listen_port,
            time_scale=args.time_scale,
            expect_updates=args.expect_updates,
            timeout=args.timeout,
            tcp_config=_tcp_config(args),
            strategy=args.strategy,
            verify=not args.no_verify,
            durable_dir=args.durable_dir,
            checkpoint_policy=_checkpoint_policy(args),
            fsync_batch=args.fsync_batch,
            replica=replica,
            seed_from=args.seed_from,
        )
    )
    print(result.report())
    return 0


def _add_serve_warehouse_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve-warehouse",
        help="host the warehouse site; sources run in other processes",
    )
    _add_workload_args(p)
    p.add_argument("--listen", default="127.0.0.1:7700", metavar="HOST:PORT")
    p.add_argument(
        "--source", action="append", default=[], metavar="INDEX=HOST:PORT",
        help="address of each source's listener (repeat; 0=central for ECA)",
    )
    _add_tcp_args(p)
    p.add_argument(
        "--expect-updates", type=int, default=None,
        help="exit with a report after this many updates (default: all"
             " scheduled updates; 0 serves forever)",
    )
    p.add_argument("--timeout", type=float, default=3600.0)
    p.add_argument("--durable-dir", default=None, metavar="DIR",
                   help="persist checkpoints + update log here; on restart"
                        " the warehouse recovers and resumes from DIR")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   metavar="N", help="checkpoint every N installed updates"
                                     " (default 25)")
    p.add_argument("--checkpoint-interval", type=float, default=None,
                   metavar="SECONDS",
                   help="also checkpoint when this much wall time has"
                        " passed since the last one")
    p.add_argument("--fsync-batch", type=int, default=8, metavar="N",
                   help="fsync the WAL once per N appended updates"
                        " (group commit; default: 8)")


def _cmd_serve_warehouse(args: argparse.Namespace) -> int:
    import asyncio

    from repro.runtime import serve_warehouse_async

    config = _workload_config(args)
    addresses = {}
    for spec in args.source:
        index, _, addr = spec.partition("=")
        addresses[int(index)] = _parse_address(addr)
    if not addresses:
        raise SystemExit("serve-warehouse needs at least one --source")
    listen_host, listen_port = _parse_address(args.listen)
    expect = args.expect_updates
    if expect is None:
        expect = config.n_updates
    result = asyncio.run(
        serve_warehouse_async(
            config,
            addresses,
            listen_host=listen_host,
            listen_port=listen_port,
            time_scale=args.time_scale,
            expect_updates=expect or None,
            timeout=args.timeout,
            tcp_config=_tcp_config(args),
            durable_dir=args.durable_dir,
            checkpoint_policy=_checkpoint_policy(args),
            fsync_batch=args.fsync_batch,
        )
    )
    if result is not None:
        print(result.report())
    return 0


def _add_serve_source_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve-source",
        help="host one data-source site and replay its update schedule",
    )
    _add_workload_args(p)
    p.add_argument("--index", "-i", type=int, required=True,
                   help="1-based index of the base relation this site owns")
    p.add_argument("--warehouse", default=None, metavar="HOST:PORT",
                   help="address of the warehouse listener")
    p.add_argument(
        "--shard", action="append", default=[], metavar="SHARD=HOST:PORT",
        help="address of one warehouse shard's listener (repeat; serves a"
             " sharded deployment instead of --warehouse)",
    )
    p.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT")
    _add_tcp_args(p)
    p.add_argument("--no-drive", action="store_true",
                   help="do not replay the seeded update schedule")
    p.add_argument("--serve-forever", action="store_true",
                   help="keep serving queries after the schedule drains")
    p.add_argument("--linger", type=float, default=3.0,
                   help="wall seconds of query silence before exiting")
    p.add_argument("--timeout", type=float, default=3600.0)


def _cmd_serve_source(args: argparse.Namespace) -> int:
    import asyncio

    config = _workload_config(args)
    listen_host, listen_port = _parse_address(args.listen)
    if bool(args.warehouse) == bool(args.shard):
        raise SystemExit(
            "serve-source needs exactly one of --warehouse or --shard"
        )
    common = dict(
        listen_host=listen_host,
        listen_port=listen_port,
        time_scale=args.time_scale,
        drive=not args.no_drive,
        exit_when_done=not args.serve_forever,
        linger=args.linger,
        timeout=args.timeout,
        tcp_config=_tcp_config(args),
    )
    if args.shard:
        from repro.runtime import serve_sharded_source_async
        from repro.warehouse.sharding import parse_member

        # Keys like "0" address a shard's primary; "0r1" its standby.
        addresses = {}
        for spec in args.shard:
            member, _, addr = spec.partition("=")
            addresses[parse_member(member)] = _parse_address(addr)
        asyncio.run(
            serve_sharded_source_async(config, args.index, addresses, **common)
        )
        return 0
    from repro.runtime import serve_source_async

    asyncio.run(
        serve_source_async(
            config,
            args.index,
            warehouse_address=_parse_address(args.warehouse),
            **common,
        )
    )
    return 0


def _cmd_algorithms(_args: argparse.Namespace) -> int:
    from repro.harness.report import format_table
    from repro.warehouse.registry import ALGORITHMS

    rows = [
        [
            info.name,
            info.architecture,
            info.claimed_consistency.name.lower(),
            info.message_cost,
            "yes" if info.requires_keys else "no",
            "yes" if info.requires_quiescence else "no",
            info.comments,
        ]
        for info in ALGORITHMS.values()
    ]
    print(
        format_table(
            ["name", "architecture", "consistency", "msg cost", "keys?",
             "quiescence?", "comments"],
            rows,
            title="Registered maintenance algorithms",
        )
    )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.harness.experiments.table1 import format_table1, run_table1

    print(
        format_table1(
            run_table1(
                seed=args.seed,
                n_sources=args.sources,
                n_updates=args.updates,
                include_baselines=args.baselines,
            )
        )
    )
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.harness.experiments.fig5 import format_fig5, run_fig5

    rows = run_fig5(spacing=args.spacing)
    print(format_fig5(rows))
    return 0 if all(r["match"] == "yes" for r in rows) else 1


def _experiment_sections() -> list[tuple[str, str, str]]:
    """(tag, description, rendered table) for every experiment module."""
    from repro.harness.experiments import (
        ablation,
        amortization,
        concurrency,
        fig5,
        messagesize,
        scaling,
        staleness,
        table1,
    )

    return [
        ("T1", "Table 1, measured",
         table1.format_table1(table1.run_table1(include_baselines=True))),
        ("F5", "Figure 5 trajectory under SWEEP",
         fig5.format_fig5(fig5.run_fig5())),
        ("S1", "message cost vs number of sources",
         scaling.format_scaling(scaling.run_scaling())),
        ("S2", "message cost vs concurrency",
         concurrency.format_concurrency(concurrency.run_concurrency())),
        ("S3", "staleness under sustained updates",
         staleness.format_staleness(staleness.run_staleness())),
        ("S4", "Nested SWEEP amortization",
         amortization.format_amortization(amortization.run_amortization())),
        ("S5", "ECA query payload growth",
         messagesize.format_messagesize(messagesize.run_messagesize())),
        ("A1", "SWEEP variants ablation",
         ablation.format_sweep_variants(ablation.run_sweep_variants())),
        ("A2", "Nested SWEEP termination ablation",
         ablation.format_nested_depth(ablation.run_nested_depth())),
    ]


def _cmd_experiments(args: argparse.Namespace) -> int:
    sections = _experiment_sections()
    for tag, _desc, text in sections:
        print(f"\n### {tag} ###")
        print(text)
    if getattr(args, "save", None):
        lines = [
            "# Experiment report",
            "",
            "Regenerated with `python -m repro experiments --save ...`;",
            "see EXPERIMENTS.md for paper-vs-measured commentary.",
        ]
        for tag, desc, text in sections:
            lines += ["", f"## {tag} — {desc}", "", "```", text, "```"]
        import pathlib

        path = pathlib.Path(args.save)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"\nreport written to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Efficient View Maintenance at Data"
            " Warehouses' (SIGMOD 1997)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    _add_run_parser(sub)
    _add_run_distributed_parser(sub)
    _add_run_sharded_parser(sub)
    _add_rebalance_parser(sub)
    _add_serve_warehouse_parser(sub)
    _add_serve_source_parser(sub)
    _add_serve_shard_parser(sub)
    sub.add_parser("algorithms", help="list registered algorithms")

    t1 = sub.add_parser("table1", help="regenerate the measured Table 1")
    t1.add_argument("--seed", type=int, default=7)
    t1.add_argument("--sources", type=int, default=4)
    t1.add_argument("--updates", type=int, default=24)
    t1.add_argument("--baselines", action="store_true")

    f5 = sub.add_parser("fig5", help="replay the Figure 5 example")
    f5.add_argument("--spacing", type=float, default=0.5)

    exp = sub.add_parser("experiments", help="run every experiment module")
    exp.add_argument("--save", metavar="PATH",
                     help="also write a markdown report to PATH")

    bench = sub.add_parser(
        "bench-throughput",
        help="run the throughput regression suite and emit JSON",
    )
    bench.add_argument("--quick", action="store_true",
                       help="CI smoke subset (saturated regime only)")
    bench.add_argument("--json", default="BENCH_throughput.json",
                       metavar="PATH", help="where to write the JSON report")
    bench.add_argument(
        "--check-against", metavar="PATH", default=None,
        help="fail when any shared cell regresses past --tolerance"
             " versus this baseline report",
    )
    bench.add_argument("--tolerance", type=float, default=0.30,
                       help="allowed fractional throughput drop (default 0.30)")
    bench.add_argument(
        "--require-locality-reduction", action="store_true",
        help="fail unless the locality rows hit their floors (headline"
             " cell 2x faster and 3x fewer messages; every +aux pair"
             " at least 2x fewer messages, consistency preserved)",
    )
    bench.add_argument(
        "--require-codec-efficiency", action="store_true",
        help="fail unless codec v3 clears a gate arm on the saturated"
             " TCP sweep pair (1.3x updates/sec or 2x fewer"
             " pre-compression bytes per update vs the same-run v2 twin,"
             " consistency unchanged)",
    )

    conf = sub.add_parser(
        "conformance",
        help="run every algorithm through chaos fault profiles and check"
             " the consistency oracle's verdict against the claimed level",
    )
    conf.add_argument(
        "--algorithms", default=None, metavar="A,B,...",
        help="comma-separated algorithms (default: every registered one)",
    )
    conf.add_argument(
        "--profiles", default=None, metavar="P,Q,...",
        help="comma-separated chaos profiles (default: healthy,delay,dup,"
             "crash,source-stall,source-reorder)",
    )
    conf.add_argument("--seed", "-s", type=int, default=0,
                      help="first workload seed")
    conf.add_argument("--runs", type=int, default=1,
                      help="seeds per case: seed, seed+1, ...")
    conf.add_argument("--transport", choices=("local", "tcp"), default="local")
    conf.add_argument(
        "--localities", default="off", metavar="M,N,...",
        help="comma-separated locality modes to cross with each case"
             " (off,aux,cache,auto; unsupported algorithm/mode pairs"
             " are skipped)",
    )
    conf.add_argument(
        "--codec-version", default="auto", metavar="V",
        help="pin the wire codec for every case: 1|2|3, or 'mixed' for a"
             " v3 warehouse with v1-only sources (handshake-downgrade"
             " check; distributed cases only).  Default: auto (negotiate)",
    )
    conf.add_argument("--updates", "-u", type=int, default=None)
    conf.add_argument("--sources", "-n", type=int, default=None)
    conf.add_argument("--time-scale", type=float, default=None,
                      help="wall seconds per virtual time unit")
    conf.add_argument("--timeout", type=float, default=None,
                      help="wall-clock quiescence timeout per case")
    conf.add_argument("--json", default="conformance_report.json",
                      metavar="PATH", help="where to write the JSON report")

    rec = sub.add_parser(
        "recovery-sweep",
        help="crash one shard per seeded case, recover from checkpoint +"
             " WAL, and compare against the uncrashed baseline",
    )
    rec.add_argument("--seed", "-s", type=int, default=0,
                     help="first workload seed")
    rec.add_argument("--runs", type=int, default=30,
                     help="seeds per sweep: seed, seed+1, ...")
    rec.add_argument("--tcp-every", type=int, default=5,
                     help="every Nth seed runs over loopback TCP"
                          " (0 = local only)")
    rec.add_argument("--time-scale", type=float, default=0.002,
                     help="wall seconds per virtual time unit")
    rec.add_argument("--timeout", type=float, default=120.0,
                     help="wall-clock quiescence timeout per run")
    rec.add_argument("--smoke", action="store_true",
                     help="also run the multiprocess kill-and-recover"
                          " smoke (SIGKILL a serve-shard process under"
                          " the supervisor's on-crash restart policy)")
    rec.add_argument("--json", default="recovery_report.json",
                     metavar="PATH", help="where to write the JSON report")

    fo = sub.add_parser(
        "failover-sweep",
        help="kill a shard's primary at deterministic protocol points,"
             " promote its hot standby, and compare against the uncrashed"
             " baseline",
    )
    fo.add_argument("--seed", "-s", type=int, default=0,
                    help="first workload seed")
    fo.add_argument("--seeds", type=int, default=30,
                    help="seeds per sweep: seed, seed+1, ...")
    fo.add_argument("--tcp-every", type=int, default=5,
                    help="every Nth seed runs over loopback TCP"
                         " (0 = local only)")
    fo.add_argument("--time-scale", type=float, default=0.002,
                    help="wall seconds per virtual time unit")
    fo.add_argument("--timeout", type=float, default=120.0,
                    help="wall-clock quiescence timeout per run")
    fo.add_argument("--smoke", action="store_true",
                    help="also run the multiprocess promotion smoke"
                         " (SIGKILL the primary serve-shard process; the"
                         " supervisor must promote the standby)")
    fo.add_argument("--json", default="failover_report.json",
                    metavar="PATH", help="where to write the JSON report")

    rb = sub.add_parser(
        "rebalance-sweep",
        help="migrate one view between shards at deterministic protocol"
             " points and compare against a never-migrated baseline",
    )
    rb.add_argument("--seed", "-s", type=int, default=0,
                    help="first workload seed")
    rb.add_argument("--seeds", type=int, default=30,
                    help="seeds per sweep: seed, seed+1, ...")
    rb.add_argument("--tcp-every", type=int, default=5,
                    help="every Nth seed runs over loopback TCP"
                         " (0 = local only)")
    rb.add_argument("--time-scale", type=float, default=0.002,
                    help="wall seconds per virtual time unit")
    rb.add_argument("--timeout", type=float, default=120.0,
                    help="wall-clock quiescence timeout per run")
    rb.add_argument("--json", default="rebalance_report.json",
                    metavar="PATH", help="where to write the JSON report")

    adv = sub.add_parser(
        "advise", help="recommend an algorithm for a workload"
    )
    adv.add_argument("--sources", "-n", type=int, default=4)
    adv.add_argument("--rate", type=float, default=0.02,
                     help="total update rate (updates per time unit)")
    adv.add_argument("--latency", type=float, default=5.0)
    adv.add_argument(
        "--require", choices=("convergence", "weak", "strong", "complete"),
        default="strong",
    )
    adv.add_argument("--keys", action="store_true",
                     help="the view keeps a key of every relation")
    adv.add_argument("--centralized-ok", action="store_true")
    adv.add_argument("--fresh", action="store_true",
                     help="installs must keep up with the stream")
    adv.add_argument("--global-txns", action="store_true")
    return parser


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.analysis.advisor import WorkloadFacts, explain
    from repro.consistency.levels import ConsistencyLevel

    facts = WorkloadFacts(
        n_sources=args.sources,
        update_rate=args.rate,
        latency=args.latency,
        required_consistency=ConsistencyLevel[args.require.upper()],
        view_has_all_keys=args.keys,
        centralized_ok=args.centralized_ok,
        needs_fresh_view=args.fresh,
        has_global_transactions=args.global_txns,
    )
    print(explain(facts))
    return 0


def _cmd_bench_throughput(args: argparse.Namespace) -> int:
    from repro.harness.throughput import (
        build_report,
        codec_problems,
        compare_reports,
        format_suite,
        load_report,
        locality_problems,
        run_suite,
        write_report,
    )

    rows = run_suite(quick=args.quick)
    print(format_suite(rows))
    report = build_report(rows, quick=args.quick)
    path = write_report(report, args.json)
    print(f"\nwrote {path}")
    if args.require_locality_reduction:
        problems = locality_problems(rows)
        if problems:
            for problem in problems:
                print(f"LOCALITY GATE: {problem}", file=sys.stderr)
            return 1
        print("locality gate passed")
    if args.require_codec_efficiency:
        problems = codec_problems(rows)
        if problems:
            for problem in problems:
                print(f"CODEC GATE: {problem}", file=sys.stderr)
            return 1
        print("codec gate passed")
    if args.check_against:
        problems = compare_reports(
            report, load_report(args.check_against), tolerance=args.tolerance
        )
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check_against}"
              f" (tolerance {args.tolerance:.0%})")
    return 0


def _cmd_recovery_sweep(args: argparse.Namespace) -> int:
    from repro.harness import recovery

    def progress(row: dict) -> None:
        verdict = "pass" if row["ok"] else f"FAIL ({row['error']})"
        print(
            f"  {row['algorithm']:>13s} x {row['transport']:<5s}"
            f" seed={row['seed']} ... {verdict}",
            flush=True,
        )

    rows = recovery.run_recovery_sweep(
        seeds=range(args.seed, args.seed + args.runs),
        tcp_every=args.tcp_every,
        time_scale=args.time_scale,
        timeout=args.timeout,
        progress=progress,
    )
    smoke = None
    if args.smoke:
        print("  kill-and-recover smoke (multiprocess) ...", flush=True)
        smoke = recovery.kill_and_recover_smoke()
    report = recovery.build_report(rows, smoke=smoke)
    print()
    print(recovery.format_report(report))
    path = recovery.write_report(report, args.json)
    print(f"\nwrote {path}")
    return 0 if report["ok"] else 1


def _cmd_failover_sweep(args: argparse.Namespace) -> int:
    from repro.harness import failover

    def progress(row: dict) -> None:
        verdict = "pass" if row["ok"] else f"FAIL ({row['error']})"
        print(
            f"  {row['algorithm']:>13s} x {row['transport']:<5s}"
            f" seed={row['seed']} {row['kill_point']:<16s} ... {verdict}",
            flush=True,
        )

    rows = failover.run_failover_sweep(
        seeds=range(args.seed, args.seed + args.seeds),
        tcp_every=args.tcp_every,
        time_scale=args.time_scale,
        timeout=args.timeout,
        progress=progress,
    )
    smoke = None
    if args.smoke:
        print("  promotion smoke (multiprocess SIGKILL) ...", flush=True)
        smoke = failover.promotion_smoke()
    report = failover.build_report(rows, smoke=smoke)
    print()
    print(failover.format_report(report))
    path = failover.write_report(report, args.json)
    print(f"\nwrote {path}")
    return 0 if report["ok"] else 1


def _cmd_rebalance_sweep(args: argparse.Namespace) -> int:
    from repro.harness import rebalance

    def progress(row: dict) -> None:
        verdict = "pass" if row["ok"] else f"FAIL ({row['error']})"
        mutated = " MUT" if row["mutated"] else ""
        print(
            f"  {row['algorithm']:>13s} x {row['transport']:<5s}"
            f" seed={row['seed']} {row['migration_point']:<16s}{mutated}"
            f" ... {verdict}",
            flush=True,
        )

    rows = rebalance.run_rebalance_sweep(
        seeds=range(args.seed, args.seed + args.seeds),
        tcp_every=args.tcp_every,
        time_scale=args.time_scale,
        timeout=args.timeout,
        progress=progress,
    )
    report = rebalance.build_report(rows)
    print()
    print(rebalance.format_report(report))
    path = rebalance.write_report(report, args.json)
    print(f"\nwrote {path}")
    return 0 if report["ok"] else 1


def _cmd_conformance(args: argparse.Namespace) -> int:
    from repro.harness import conformance

    algorithms = (
        args.algorithms.split(",")
        if args.algorithms
        else conformance.DEFAULT_ALGORITHMS
    )
    profiles = (
        args.profiles.split(",") if args.profiles else conformance.DEFAULT_PROFILES
    )
    from repro.runtime.chaos import PROFILES
    from repro.warehouse.registry import ALGORITHMS

    known = tuple(ALGORITHMS) + tuple(conformance.SHARDED_ALGORITHMS)
    for name in algorithms:
        if name not in known:
            print(
                f"unknown algorithm {name!r}; available: {','.join(known)}",
                file=sys.stderr,
            )
            return 2
    for name in profiles:
        if name not in PROFILES:
            print(
                f"unknown chaos profile {name!r}; available:"
                f" {','.join(PROFILES)}",
                file=sys.stderr,
            )
            return 2
    if args.codec_version not in conformance.CODEC_CHOICES:
        print(
            f"unknown codec pin {args.codec_version!r}; available:"
            f" {','.join(conformance.CODEC_CHOICES)}",
            file=sys.stderr,
        )
        return 2
    localities = tuple(args.localities.split(","))
    for name in localities:
        if name not in ("off", "aux", "cache", "auto"):
            print(
                f"unknown locality mode {name!r}; available:"
                f" off,aux,cache,auto",
                file=sys.stderr,
            )
            return 2
    case_kwargs = {}
    if args.updates is not None:
        case_kwargs["n_updates"] = args.updates
    if args.sources is not None:
        case_kwargs["n_sources"] = args.sources
    if args.time_scale is not None:
        case_kwargs["time_scale"] = args.time_scale
    if args.timeout is not None:
        case_kwargs["timeout"] = args.timeout

    def progress(row: dict) -> None:
        verdict = "pass" if row["ok"] else f"FAIL ({row['error']})"
        print(
            f"  {row['algorithm']:>13s} x {row['profile']:<8s}"
            f" seed={row['seed']} loc={row.get('locality', 'off')}"
            f" ... {verdict}",
            flush=True,
        )

    report = conformance.run_matrix(
        algorithms,
        profiles,
        seeds=range(args.seed, args.seed + args.runs),
        transport=args.transport,
        localities=localities,
        codec=args.codec_version,
        progress=progress,
        **case_kwargs,
    )
    print()
    print(conformance.format_report(report))
    path = conformance.write_report(report, args.json)
    print(f"\nwrote {path}")
    return 0 if report["ok"] else 1


_COMMANDS = {
    "run": _cmd_run,
    "run-distributed": _cmd_run_distributed,
    "run-sharded": _cmd_run_sharded,
    "rebalance": _cmd_rebalance,
    "serve-warehouse": _cmd_serve_warehouse,
    "serve-source": _cmd_serve_source,
    "serve-shard": _cmd_serve_shard,
    "algorithms": _cmd_algorithms,
    "table1": _cmd_table1,
    "fig5": _cmd_fig5,
    "experiments": _cmd_experiments,
    "advise": _cmd_advise,
    "bench-throughput": _cmd_bench_throughput,
    "conformance": _cmd_conformance,
    "recovery-sweep": _cmd_recovery_sweep,
    "failover-sweep": _cmd_failover_sweep,
    "rebalance-sweep": _cmd_rebalance_sweep,
}


#: Commands hosting long-lived sites: runtime failures (dead peer, shard
#: crash, failed verification, quiescence timeout) must surface as a clean
#: message and a non-zero exit, not a traceback -- and never exit 0.
_HOST_COMMANDS = frozenset({
    "run-distributed", "run-sharded", "rebalance", "serve-warehouse",
    "serve-source", "serve-shard",
})


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command in _HOST_COMMANDS:
        from repro.runtime import CLEAN_FAILURE_EXIT, RuntimeHostError

        try:
            return _COMMANDS[args.command](args)
        except RuntimeHostError as exc:
            # A deliberate, reported failure (verification below the
            # claimed level, peer probe exhausted, quiescence timeout):
            # exit 3 so a supervising process can tell it from a crash.
            print(f"error: {exc}", file=sys.stderr)
            return CLEAN_FAILURE_EXIT
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
