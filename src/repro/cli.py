"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``          one maintenance experiment (all ExperimentConfig knobs)
``algorithms``   list registered algorithms with their Table 1 properties
``table1``       regenerate the measured Table 1
``fig5``         replay the paper's Figure 5 example
``experiments``  run every experiment module and print its table
"""

from __future__ import annotations

import argparse
import sys


def _add_run_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("run", help="run one maintenance experiment")
    p.add_argument("--algorithm", "-a", default="sweep")
    p.add_argument("--sources", "-n", type=int, default=3)
    p.add_argument("--updates", "-u", type=int, default=20)
    p.add_argument("--seed", "-s", type=int, default=0)
    p.add_argument("--backend", choices=("memory", "sqlite"), default="memory")
    p.add_argument("--latency", type=float, default=5.0)
    p.add_argument(
        "--latency-model", choices=("constant", "uniform", "exponential"),
        default="uniform",
    )
    p.add_argument("--interarrival", type=float, default=10.0)
    p.add_argument("--insert-fraction", type=float, default=0.6)
    p.add_argument("--rows", type=int, default=20)
    p.add_argument("--global-txn-fraction", type=float, default=0.0)
    p.add_argument("--no-keys", action="store_true",
                   help="project out key attributes (rejected by Strobe family)")
    p.add_argument("--trace", action="store_true", help="print the event trace")
    p.add_argument("--no-check", action="store_true",
                   help="skip consistency verification")
    p.add_argument("--show-view", action="store_true",
                   help="print the final materialized view")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness.config import ExperimentConfig
    from repro.harness.runner import run_experiment

    config = ExperimentConfig(
        algorithm=args.algorithm,
        n_sources=args.sources,
        n_updates=args.updates,
        seed=args.seed,
        backend=args.backend,
        latency=args.latency,
        latency_model=args.latency_model,
        mean_interarrival=args.interarrival,
        insert_fraction=args.insert_fraction,
        rows_per_relation=args.rows,
        global_txn_fraction=args.global_txn_fraction,
        project_keys=not args.no_keys,
        trace=args.trace,
        check_consistency=not args.no_check,
    )
    result = run_experiment(config)
    if args.trace and result.trace is not None:
        print(result.trace.format())
        print()
    print(result.report())
    if args.show_view:
        print()
        print(result.final_view.pretty())
    return 0


def _cmd_algorithms(_args: argparse.Namespace) -> int:
    from repro.harness.report import format_table
    from repro.warehouse.registry import ALGORITHMS

    rows = [
        [
            info.name,
            info.architecture,
            info.claimed_consistency.name.lower(),
            info.message_cost,
            "yes" if info.requires_keys else "no",
            "yes" if info.requires_quiescence else "no",
            info.comments,
        ]
        for info in ALGORITHMS.values()
    ]
    print(
        format_table(
            ["name", "architecture", "consistency", "msg cost", "keys?",
             "quiescence?", "comments"],
            rows,
            title="Registered maintenance algorithms",
        )
    )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.harness.experiments.table1 import format_table1, run_table1

    print(
        format_table1(
            run_table1(
                seed=args.seed,
                n_sources=args.sources,
                n_updates=args.updates,
                include_baselines=args.baselines,
            )
        )
    )
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.harness.experiments.fig5 import format_fig5, run_fig5

    rows = run_fig5(spacing=args.spacing)
    print(format_fig5(rows))
    return 0 if all(r["match"] == "yes" for r in rows) else 1


def _experiment_sections() -> list[tuple[str, str, str]]:
    """(tag, description, rendered table) for every experiment module."""
    from repro.harness.experiments import (
        ablation,
        amortization,
        concurrency,
        fig5,
        messagesize,
        scaling,
        staleness,
        table1,
    )

    return [
        ("T1", "Table 1, measured",
         table1.format_table1(table1.run_table1(include_baselines=True))),
        ("F5", "Figure 5 trajectory under SWEEP",
         fig5.format_fig5(fig5.run_fig5())),
        ("S1", "message cost vs number of sources",
         scaling.format_scaling(scaling.run_scaling())),
        ("S2", "message cost vs concurrency",
         concurrency.format_concurrency(concurrency.run_concurrency())),
        ("S3", "staleness under sustained updates",
         staleness.format_staleness(staleness.run_staleness())),
        ("S4", "Nested SWEEP amortization",
         amortization.format_amortization(amortization.run_amortization())),
        ("S5", "ECA query payload growth",
         messagesize.format_messagesize(messagesize.run_messagesize())),
        ("A1", "SWEEP variants ablation",
         ablation.format_sweep_variants(ablation.run_sweep_variants())),
        ("A2", "Nested SWEEP termination ablation",
         ablation.format_nested_depth(ablation.run_nested_depth())),
    ]


def _cmd_experiments(args: argparse.Namespace) -> int:
    sections = _experiment_sections()
    for tag, _desc, text in sections:
        print(f"\n### {tag} ###")
        print(text)
    if getattr(args, "save", None):
        lines = [
            "# Experiment report",
            "",
            "Regenerated with `python -m repro experiments --save ...`;",
            "see EXPERIMENTS.md for paper-vs-measured commentary.",
        ]
        for tag, desc, text in sections:
            lines += ["", f"## {tag} — {desc}", "", "```", text, "```"]
        import pathlib

        path = pathlib.Path(args.save)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"\nreport written to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Efficient View Maintenance at Data"
            " Warehouses' (SIGMOD 1997)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    _add_run_parser(sub)
    sub.add_parser("algorithms", help="list registered algorithms")

    t1 = sub.add_parser("table1", help="regenerate the measured Table 1")
    t1.add_argument("--seed", type=int, default=7)
    t1.add_argument("--sources", type=int, default=4)
    t1.add_argument("--updates", type=int, default=24)
    t1.add_argument("--baselines", action="store_true")

    f5 = sub.add_parser("fig5", help="replay the Figure 5 example")
    f5.add_argument("--spacing", type=float, default=0.5)

    exp = sub.add_parser("experiments", help="run every experiment module")
    exp.add_argument("--save", metavar="PATH",
                     help="also write a markdown report to PATH")

    adv = sub.add_parser(
        "advise", help="recommend an algorithm for a workload"
    )
    adv.add_argument("--sources", "-n", type=int, default=4)
    adv.add_argument("--rate", type=float, default=0.02,
                     help="total update rate (updates per time unit)")
    adv.add_argument("--latency", type=float, default=5.0)
    adv.add_argument(
        "--require", choices=("convergence", "weak", "strong", "complete"),
        default="strong",
    )
    adv.add_argument("--keys", action="store_true",
                     help="the view keeps a key of every relation")
    adv.add_argument("--centralized-ok", action="store_true")
    adv.add_argument("--fresh", action="store_true",
                     help="installs must keep up with the stream")
    adv.add_argument("--global-txns", action="store_true")
    return parser


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.analysis.advisor import WorkloadFacts, explain
    from repro.consistency.levels import ConsistencyLevel

    facts = WorkloadFacts(
        n_sources=args.sources,
        update_rate=args.rate,
        latency=args.latency,
        required_consistency=ConsistencyLevel[args.require.upper()],
        view_has_all_keys=args.keys,
        centralized_ok=args.centralized_ok,
        needs_fresh_view=args.fresh,
        has_global_transactions=args.global_txns,
    )
    print(explain(facts))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "algorithms": _cmd_algorithms,
    "table1": _cmd_table1,
    "fig5": _cmd_fig5,
    "experiments": _cmd_experiments,
    "advise": _cmd_advise,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
