"""Consistency oracles for warehouse view maintenance.

The paper (Section 2, following ZGMW96/HZ96a) ranks algorithms by the
consistency of the view states they install:

* **convergence** -- the final view equals the final source state;
* **weak** -- every installed state corresponds to *some* valid source
  state vector;
* **strong** -- additionally, those vectors can be chosen monotonically
  (installed states never go back in time);
* **complete** -- one distinct installed state per delivered update, in
  delivery order.

This package records everything needed to *verify* those properties after a
run -- per-source update histories, the warehouse's delivery order, and
every installed view snapshot -- and provides both an **independent
checker** (searches for matching state vectors without trusting the
algorithm) and an **instrumented checker** (validates the state vector each
algorithm claims for each install).
"""

from repro.consistency.atomicity import (
    AtomicityResult,
    check_transaction_atomicity,
    collect_transactions,
)
from repro.consistency.checker import (
    CheckResult,
    InstallAttribution,
    attribute_installs,
    check_batched_complete,
    check_complete,
    check_convergence,
    check_strong,
    check_weak,
    classify,
    evaluate_at,
    vector_for_delivery_prefix,
)
from repro.consistency.history import SourceHistory
from repro.consistency.levels import ConsistencyLevel
from repro.consistency.oracle import RunRecorder
from repro.consistency.snapshots import SnapshotLog, ViewSnapshot

__all__ = [
    "AtomicityResult",
    "CheckResult",
    "check_transaction_atomicity",
    "collect_transactions",
    "ConsistencyLevel",
    "InstallAttribution",
    "RunRecorder",
    "SnapshotLog",
    "SourceHistory",
    "ViewSnapshot",
    "attribute_installs",
    "check_batched_complete",
    "check_complete",
    "check_convergence",
    "check_strong",
    "check_weak",
    "classify",
    "evaluate_at",
    "vector_for_delivery_prefix",
]
