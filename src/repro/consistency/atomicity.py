"""Atomicity checking for global (multi-source) transactions.

A global transaction's parts are updates at different sources sharing a
``txn_id``.  Atomic visibility means no installed view state reflects some
parts of a transaction without the others.  The check walks each install's
claimed state vector: part ``(source, seq)`` is *covered* by vector ``v``
iff ``v[source] >= seq``; a transaction must be covered all-or-nothing by
every vector.

(The independent weak/strong checkers still verify the vectors themselves
match the installed contents, so claimed vectors cannot hide a violation:
a state genuinely exposing half a transaction matches only half-covering
vectors.)
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.consistency.history import SourceHistory
from repro.consistency.snapshots import SnapshotLog
from repro.sources.messages import UpdateNotice


@dataclass
class AtomicityResult:
    """Outcome of the transaction-atomicity check."""

    ok: bool
    transactions_checked: int
    violations: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


def collect_transactions(history: SourceHistory) -> dict[str, list[UpdateNotice]]:
    """Group every source's applied updates by transaction id."""
    txns: dict[str, list[UpdateNotice]] = defaultdict(list)
    for index in history.source_indices:
        for notice in history.updates_of(index):
            if notice.txn_id is not None:
                txns[notice.txn_id].append(notice)
    return dict(txns)


def check_transaction_atomicity(
    history: SourceHistory,
    snapshots: SnapshotLog,
) -> AtomicityResult:
    """Verify no install's claimed vector splits any transaction."""
    txns = collect_transactions(history)
    violations: list[str] = []
    for t, snap in enumerate(snapshots, start=1):
        vector = snap.claimed_vector
        if vector is None:
            violations.append(f"install #{t} claims no state vector")
            continue
        for txn_id, parts in txns.items():
            covered = sum(
                1
                for part in parts
                if vector.get(part.source_index, 0) >= part.seq
            )
            if 0 < covered < len(parts):
                violations.append(
                    f"install #{t} exposes {covered}/{len(parts)} parts of"
                    f" transaction {txn_id}"
                )
    return AtomicityResult(
        ok=not violations,
        transactions_checked=len(txns),
        violations=violations,
    )


__all__ = ["AtomicityResult", "check_transaction_atomicity", "collect_transactions"]
