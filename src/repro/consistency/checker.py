"""Consistency checkers: independent search and instrumented validation.

Definitions operationalized (DESIGN.md Section 6): a *state vector*
``v = (k_1, ..., k_n)`` picks, per source, how many of its updates are
applied; ``V(v)`` is the view recomputed over those states.  The warehouse's
*delivery order* induces prefix vectors ``prefix_t`` counting, per source,
the updates among the first ``t`` delivered.

* ``check_convergence`` -- final snapshot equals ``V(final vector)``.
* ``check_complete``    -- snapshots are exactly ``V(prefix_1..T)``.
* ``check_weak``        -- every snapshot equals ``V(v)`` for *some* ``v``
  (independent brute-force over the vector space, no trust in algorithms).
* ``check_strong``      -- matching vectors can be chosen monotonically
  non-decreasing (dynamic program over per-snapshot candidate sets).

For workloads whose vector space exceeds ``max_vectors``, weak/strong fall
back to validating each snapshot's *claimed* vector (monotonicity included)
-- the result's ``method`` field says which mode ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.consistency.history import SourceHistory
from repro.consistency.levels import ConsistencyLevel
from repro.consistency.snapshots import SnapshotLog, ViewSnapshot
from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition
from repro.sources.messages import UpdateNotice


@dataclass(slots=True)
class CheckResult:
    """Outcome of one consistency check."""

    level: ConsistencyLevel
    ok: bool
    method: str = "independent"
    detail: str = ""

    def __bool__(self) -> bool:
        return self.ok


# ---------------------------------------------------------------------------
# Vector helpers
# ---------------------------------------------------------------------------

def vector_for_delivery_prefix(
    deliveries: list[UpdateNotice], t: int
) -> dict[int, int]:
    """Per-source update counts among the first ``t`` delivered updates."""
    if not 0 <= t <= len(deliveries):
        raise ValueError(f"prefix length {t} out of range 0..{len(deliveries)}")
    vector: dict[int, int] = {}
    for notice in deliveries[:t]:
        vector[notice.source_index] = vector.get(notice.source_index, 0) + 1
    return vector


def _with_base(
    vector: dict[int, int], base: dict[int, int] | None
) -> dict[int, int]:
    """Shift a this-incarnation prefix vector by the recovery base vector.

    A recovered run's deliveries are numbered from the checkpoint's
    claimed vector ``V0``, not from zero; its prefix vectors therefore
    describe states ``V0 + prefix``.  With ``base=None`` this is the
    identity, so un-recovered runs pay nothing.
    """
    if not base:
        return vector
    merged = dict(base)
    for index, count in vector.items():
        merged[index] = merged.get(index, 0) + count
    return merged


def evaluate_at(
    view: ViewDefinition, history: SourceHistory, vector: dict[int, int]
) -> Relation:
    """Recompute the view over the states selected by ``vector``."""
    return view.evaluate(history.states_at_vector(vector))


def _delivery_overflow(
    history: SourceHistory,
    deliveries: list[UpdateNotice],
    base_vector: dict[int, int] | None,
) -> str:
    """Non-empty detail when the log delivers more than the history holds.

    A correct run cannot deliver a source's update more often than the
    source produced it; an overflow means a duplicate crossed the FIFO
    fence (e.g. an unfenced standby takeover), so the log is judged
    dishonest outright rather than evaluated at an unrepresentable
    state vector.
    """
    counts: dict[int, int] = dict(base_vector or {})
    for notice in deliveries:
        counts[notice.source_index] = counts.get(notice.source_index, 0) + 1
    for index, count in sorted(counts.items()):
        available = history.n_updates(index)
        if count > available:
            return (
                f"source {index} delivered {count} updates but its history"
                f" holds only {available}"
            )
    return ""


def missing_deliveries(
    history: SourceHistory,
    deliveries: list[UpdateNotice],
    base_vector: dict[int, int] | None = None,
) -> dict[int, list[int]]:
    """Per-source sequence numbers the history holds but the log never
    delivered (the dual of :func:`_delivery_overflow`).

    A quiesced warehouse must have seen every source update exactly once,
    so a hole here means an update was silently dropped in transit -- the
    failure mode a migration that skips its straggler window produces.
    It is invisible to the snapshot checks whenever the dropped delta
    happens to join to nothing, which is why it is checked directly
    against the delivery log rather than against installed states.
    ``base_vector`` exempts the prefix a recovered run restored from its
    checkpoint.
    """
    seen: dict[int, set[int]] = {}
    for notice in deliveries:
        seen.setdefault(notice.source_index, set()).add(notice.seq)
    missing: dict[int, list[int]] = {}
    base = base_vector or {}
    for index in history.source_indices:
        start = base.get(index, 0) + 1
        holes = [
            seq
            for seq in range(start, history.n_updates(index) + 1)
            if seq not in seen.get(index, ())
        ]
        if holes:
            missing[index] = holes
    return missing


def _view_key(relation: Relation) -> tuple:
    """A hashable canonical form of a view state."""
    return tuple(sorted(relation.items()))


def _dominates(a: tuple[int, ...], b: tuple[int, ...]) -> bool:
    """Component-wise ``a >= b``."""
    return all(x >= y for x, y in zip(a, b))


def _vector_index(
    view: ViewDefinition, history: SourceHistory
) -> dict[tuple, list[tuple[int, ...]]]:
    """Map every reachable view state to the vectors producing it."""
    indices = history.source_indices
    ranges = [range(history.n_updates(i) + 1) for i in indices]
    table: dict[tuple, list[tuple[int, ...]]] = {}
    for combo in product(*ranges):
        vector = dict(zip(indices, combo))
        key = _view_key(evaluate_at(view, history, vector))
        table.setdefault(key, []).append(combo)
    return table


# ---------------------------------------------------------------------------
# Batch attribution
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class InstallAttribution:
    """One install mapped back to the delivered updates it reflects.

    Batching schedulers install *composite* view changes -- one install
    covering ``k`` member updates -- which breaks any accounting that
    assumes installs and updates are 1:1.  Attribution recovers the
    mapping from the claimed state vectors: the vector delta between
    consecutive installs says how many updates per source this install
    consumed, and FIFO delivery says *which* ones those are.
    """

    install_index: int  # 1-based position in the snapshot log
    snapshot: ViewSnapshot
    members: list[UpdateNotice]

    @property
    def batch_size(self) -> int:
        return len(self.members)

    def staleness_of(self, notice: UpdateNotice) -> float:
        """Virtual time ``notice`` waited between delivery and install."""
        return self.snapshot.time - notice.delivered_at

    def __repr__(self) -> str:
        return (
            f"InstallAttribution(#{self.install_index},"
            f" {self.batch_size} members, t={self.snapshot.time:.3f})"
        )


def attribute_installs(
    deliveries: list[UpdateNotice],
    snapshots: "SnapshotLog | list[ViewSnapshot]",
    base_vector: dict[int, int] | None = None,
) -> list[InstallAttribution]:
    """Map every install to the delivered updates its vector delta covers.

    Raises :class:`ValueError` when the claimed vectors are malformed --
    an install claims no vector, regresses a source, or claims more
    updates from a source than were delivered.  Those are instrumentation
    bugs (or deliberately broken algorithms) and make attribution, hence
    per-update staleness, meaningless.

    ``base_vector`` is a recovered run's checkpoint vector: claimed
    vectors are absolute across incarnations, while ``deliveries`` holds
    only this incarnation's deliveries, so consumption starts at the base
    and the list is indexed relative to it.
    """
    per_source: dict[int, list[UpdateNotice]] = {}
    for notice in deliveries:
        per_source.setdefault(notice.source_index, []).append(notice)
    base = dict(base_vector or {})
    consumed: dict[int, int] = dict(base)
    attributions: list[InstallAttribution] = []
    for t, snap in enumerate(snapshots, start=1):
        if snap.claimed_vector is None:
            raise ValueError(f"install #{t} claims no state vector")
        members: list[UpdateNotice] = []
        for index, count in sorted(snap.claimed_vector.items()):
            have = consumed.get(index, 0)
            start = base.get(index, 0)
            if count < have:
                raise ValueError(
                    f"install #{t} regresses source {index}"
                    f" ({count} < {have} already installed)"
                )
            delivered = per_source.get(index, [])
            if count - start > len(delivered):
                raise ValueError(
                    f"install #{t} claims {count} updates from source"
                    f" {index}; only {start} recovered +"
                    f" {len(delivered)} delivered"
                )
            members.extend(delivered[have - start : count - start])
            consumed[index] = count
        members.sort(key=lambda n: n.delivery_seq or 0)
        attributions.append(InstallAttribution(t, snap, members))
    return attributions


def check_batched_complete(
    view: ViewDefinition,
    history: SourceHistory,
    deliveries: list[UpdateNotice],
    snapshots: "SnapshotLog | list[ViewSnapshot]",
    base_vector: dict[int, int] | None = None,
) -> CheckResult:
    """Batch-aware completeness: installs partition the delivery order.

    The classic *complete* check demands one install per delivered update.
    A batching scheduler legitimately installs fewer, composite states;
    the faithful generalization checks that

    1. every install's batch is a **contiguous prefix extension** of the
       delivery order (no update overtakes another on install),
    2. each installed state equals the view recomputed at its batch's
       delivery-prefix vector, and
    3. every delivered update is attributed to exactly one install
       (nothing dropped, nothing double-counted).

    With ``batch_max=1`` this degenerates to the classic check.
    """
    level = ConsistencyLevel.COMPLETE
    overflow = _delivery_overflow(history, deliveries, base_vector)
    if overflow:
        return CheckResult(level, False, method="batched", detail=overflow)
    try:
        attributions = attribute_installs(
            deliveries, snapshots, base_vector=base_vector
        )
    except ValueError as exc:
        return CheckResult(level, False, method="batched", detail=str(exc))
    covered = 0
    for attr in attributions:
        covered += attr.batch_size
        prefix = _with_base(
            vector_for_delivery_prefix(deliveries, covered), base_vector
        )
        prefix = {i: c for i, c in prefix.items() if c}
        claimed = {
            i: c for i, c in (attr.snapshot.claimed_vector or {}).items() if c
        }
        if claimed != prefix:
            return CheckResult(
                level, False, method="batched",
                detail=(
                    f"install #{attr.install_index}'s batch is not a"
                    " delivery-order prefix"
                ),
            )
        expected = evaluate_at(view, history, prefix)
        if attr.snapshot.view != expected:
            return CheckResult(
                level, False, method="batched",
                detail=(
                    f"install #{attr.install_index} does not match delivery"
                    f" prefix {covered}"
                ),
            )
    if covered != len(deliveries):
        return CheckResult(
            level, False, method="batched",
            detail=(
                f"{len(deliveries) - covered} delivered updates never"
                " attributed to an install"
            ),
        )
    return CheckResult(level, True, method="batched")


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------

def check_convergence(
    view: ViewDefinition, history: SourceHistory, snapshots: SnapshotLog
) -> CheckResult:
    """Does the final installed state equal the fully updated view?"""
    final = snapshots.final_view
    if final is None:
        return CheckResult(
            ConsistencyLevel.CONVERGENCE, False, detail="no view state recorded"
        )
    expected = evaluate_at(view, history, history.final_vector())
    ok = final == expected
    detail = "" if ok else (
        f"final view has {final.distinct_count} rows,"
        f" expected {expected.distinct_count}"
    )
    return CheckResult(ConsistencyLevel.CONVERGENCE, ok, detail=detail)


def check_complete(
    view: ViewDefinition,
    history: SourceHistory,
    deliveries: list[UpdateNotice],
    snapshots: SnapshotLog,
    base_vector: dict[int, int] | None = None,
) -> CheckResult:
    """One snapshot per delivered update, each matching its prefix vector."""
    if len(snapshots) != len(deliveries):
        return CheckResult(
            ConsistencyLevel.COMPLETE,
            False,
            detail=(
                f"{len(snapshots)} installs for {len(deliveries)} delivered"
                " updates"
            ),
        )
    for t, snap in enumerate(snapshots, start=1):
        expected = evaluate_at(
            view,
            history,
            _with_base(vector_for_delivery_prefix(deliveries, t), base_vector),
        )
        if snap.view != expected:
            return CheckResult(
                ConsistencyLevel.COMPLETE,
                False,
                detail=f"install #{t} does not match delivery prefix {t}",
            )
    return CheckResult(ConsistencyLevel.COMPLETE, True)


def _claimed_vectors_valid(
    view: ViewDefinition,
    history: SourceHistory,
    snapshots: SnapshotLog,
    require_monotone: bool,
) -> CheckResult:
    """Instrumented fallback: validate the vectors algorithms claim."""
    level = ConsistencyLevel.STRONG if require_monotone else ConsistencyLevel.WEAK
    prev: dict[int, int] | None = None
    for t, snap in enumerate(snapshots, start=1):
        if snap.claimed_vector is None:
            return CheckResult(
                level, False, method="instrumented",
                detail=f"install #{t} claims no vector",
            )
        expected = evaluate_at(view, history, snap.claimed_vector)
        if snap.view != expected:
            return CheckResult(
                level, False, method="instrumented",
                detail=f"install #{t} does not match its claimed vector",
            )
        if require_monotone and prev is not None:
            regressed = [
                i for i in history.source_indices
                if snap.claimed_vector.get(i, 0) < prev.get(i, 0)
            ]
            if regressed:
                return CheckResult(
                    level, False, method="instrumented",
                    detail=f"install #{t} regresses sources {regressed}",
                )
        prev = snap.claimed_vector
    return CheckResult(level, True, method="instrumented")


def check_weak(
    view: ViewDefinition,
    history: SourceHistory,
    snapshots: SnapshotLog,
    max_vectors: int = 50_000,
) -> CheckResult:
    """Every snapshot matches some state vector (independent search)."""
    if history.vector_space_size() > max_vectors:
        return _claimed_vectors_valid(view, history, snapshots, require_monotone=False)
    table = _vector_index(view, history)
    for t, snap in enumerate(snapshots, start=1):
        if _view_key(snap.view) not in table:
            return CheckResult(
                ConsistencyLevel.WEAK,
                False,
                detail=f"install #{t} matches no source state vector",
            )
    return CheckResult(ConsistencyLevel.WEAK, True)


def check_strong(
    view: ViewDefinition,
    history: SourceHistory,
    snapshots: SnapshotLog,
    max_vectors: int = 50_000,
    base_vector: dict[int, int] | None = None,
) -> CheckResult:
    """Snapshots match a monotone chain of state vectors (independent DP)."""
    if history.vector_space_size() > max_vectors:
        return _claimed_vectors_valid(view, history, snapshots, require_monotone=True)
    table = _vector_index(view, history)
    # frontier: minimal vectors reachable after matching the prefix of
    # snapshots processed so far (an antichain; domination-pruned).
    # A recovered run's chain starts at the checkpoint vector, not zero.
    indices = history.source_indices
    base = base_vector or {}
    frontier: list[tuple[int, ...]] = [tuple(base.get(i, 0) for i in indices)]
    for t, snap in enumerate(snapshots, start=1):
        candidates = table.get(_view_key(snap.view), [])
        reachable = [
            c for c in candidates if any(_dominates(c, f) for f in frontier)
        ]
        if not reachable:
            detail = (
                f"install #{t} matches no source state vector"
                if not candidates
                else f"install #{t} cannot extend any monotone chain"
            )
            return CheckResult(ConsistencyLevel.STRONG, False, detail=detail)
        # prune to minimal elements
        frontier = [
            c for c in reachable
            if not any(c != other and _dominates(c, other) for other in reachable)
        ]
    return CheckResult(ConsistencyLevel.STRONG, True)


def classify(
    view: ViewDefinition,
    history: SourceHistory,
    deliveries: list[UpdateNotice],
    snapshots: SnapshotLog,
    max_vectors: int = 50_000,
    base_vector: dict[int, int] | None = None,
) -> ConsistencyLevel:
    """The strongest consistency level the recorded run satisfies."""
    if _delivery_overflow(history, deliveries, base_vector):
        return ConsistencyLevel.NONE
    converged = check_convergence(view, history, snapshots)
    if not converged:
        return ConsistencyLevel.NONE
    if check_complete(
        view, history, deliveries, snapshots, base_vector=base_vector
    ):
        return ConsistencyLevel.COMPLETE
    if check_strong(
        view,
        history,
        snapshots,
        max_vectors=max_vectors,
        base_vector=base_vector,
    ):
        return ConsistencyLevel.STRONG
    if check_weak(view, history, snapshots, max_vectors=max_vectors):
        return ConsistencyLevel.WEAK
    return ConsistencyLevel.CONVERGENCE


__all__ = [
    "CheckResult",
    "InstallAttribution",
    "attribute_installs",
    "check_batched_complete",
    "check_complete",
    "check_convergence",
    "check_strong",
    "check_weak",
    "classify",
    "evaluate_at",
    "missing_deliveries",
    "vector_for_delivery_prefix",
]
