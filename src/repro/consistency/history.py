"""Per-source update histories: ground truth for the oracle.

A :class:`SourceHistory` holds, for every source, the initial relation
contents and the ordered list of applied update deltas.  From those it can
reconstruct ``R_i^k`` -- the state of source ``i`` after its first ``k``
updates -- for any ``k``, which is what the consistency definitions
quantify over.

Reconstruction is cached prefix-by-prefix, so checking many vectors over
the same history stays cheap.
"""

from __future__ import annotations

from repro.relational.relation import Relation
from repro.sources.messages import UpdateNotice


class SourceHistory:
    """Initial states plus ordered update logs for all sources."""

    def __init__(self) -> None:
        self._initial: dict[int, Relation] = {}
        self._names: dict[int, str] = {}
        self._updates: dict[int, list[UpdateNotice]] = {}
        # _state_cache[i][k] is R_i after its first k updates.
        self._state_cache: dict[int, list[Relation]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def register_source(self, index: int, name: str, initial: Relation) -> None:
        """Declare source ``index`` with its initial contents."""
        if index in self._initial:
            raise ValueError(f"source {index} already registered")
        self._initial[index] = initial.copy()
        self._names[index] = name
        self._updates[index] = []
        self._state_cache[index] = [initial.copy()]

    def on_source_update(self, notice: UpdateNotice) -> None:
        """Listener hook: append an applied update to its source's log."""
        log = self._updates.get(notice.source_index)
        if log is None:
            raise ValueError(f"source {notice.source_index} never registered")
        expected_seq = len(log) + 1
        if notice.seq != expected_seq:
            raise ValueError(
                f"source {notice.source_index} update seq {notice.seq} recorded"
                f" out of order (expected {expected_seq})"
            )
        log.append(notice)

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    @property
    def source_indices(self) -> tuple[int, ...]:
        """Registered source indices, ascending."""
        return tuple(sorted(self._initial))

    def name_of(self, index: int) -> str:
        return self._names[index]

    def n_updates(self, index: int) -> int:
        """Number of updates applied at source ``index``."""
        return len(self._updates[index])

    def updates_of(self, index: int) -> tuple[UpdateNotice, ...]:
        """The ordered update log of source ``index``."""
        return tuple(self._updates[index])

    def state_at(self, index: int, k: int) -> Relation:
        """``R_index`` after its first ``k`` updates (``k=0``: initial).

        Returned relations are cached internals -- do not mutate.
        """
        if not 0 <= k <= self.n_updates(index):
            raise ValueError(
                f"source {index} has {self.n_updates(index)} updates; k={k}"
            )
        cache = self._state_cache[index]
        while len(cache) <= k:
            nxt = cache[-1].copy()
            nxt.apply_delta(self._updates[index][len(cache) - 1].delta)
            cache.append(nxt)
        return cache[k]

    def final_vector(self) -> dict[int, int]:
        """The vector of all update counts (the fully applied state)."""
        return {i: self.n_updates(i) for i in self.source_indices}

    def states_at_vector(self, vector: dict[int, int]) -> dict[str, Relation]:
        """Name-keyed states for a vector (input to ViewDefinition.evaluate)."""
        return {
            self._names[i]: self.state_at(i, vector.get(i, 0))
            for i in self.source_indices
        }

    def vector_space_size(self) -> int:
        """Number of distinct state vectors (for brute-force feasibility)."""
        size = 1
        for i in self.source_indices:
            size *= self.n_updates(i) + 1
        return size

    def __repr__(self) -> str:
        counts = {self._names[i]: self.n_updates(i) for i in self.source_indices}
        return f"SourceHistory({counts})"


__all__ = ["SourceHistory"]
