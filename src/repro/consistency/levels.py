"""The consistency spectrum of Section 2, as an ordered enum."""

from __future__ import annotations

import enum


class ConsistencyLevel(enum.IntEnum):
    """Consistency of installed warehouse view states, weakest to strongest.

    The integer ordering matches the paper's hierarchy: every completely
    consistent run is strongly consistent, every strongly consistent run is
    weakly consistent, and every weakly consistent run (with a finished
    workload) converges.
    """

    #: No guarantee beyond eventually matching the final source state.
    NONE = 0

    #: The final view equals the view over the final source states.
    CONVERGENCE = 1

    #: Every installed state reflects *some* valid source state vector.
    WEAK = 2

    #: Matching vectors can be chosen monotonically non-decreasing.
    STRONG = 3

    #: One distinct installed state per delivered update, in delivery order.
    COMPLETE = 4

    def describe(self) -> str:
        """Human-readable definition used in reports."""
        return _DESCRIPTIONS[self]


_DESCRIPTIONS = {
    ConsistencyLevel.NONE: "no consistency guarantee",
    ConsistencyLevel.CONVERGENCE: "final view matches final source states",
    ConsistencyLevel.WEAK: "every installed state matches some source state vector",
    ConsistencyLevel.STRONG: (
        "installed states match a monotone sequence of source state vectors"
    ),
    ConsistencyLevel.COMPLETE: (
        "one installed state per delivered update, in delivery order"
    ),
}

__all__ = ["ConsistencyLevel"]
