"""RunRecorder: one object wiring all consistency instrumentation.

The harness creates a :class:`RunRecorder` per experiment, registers it as

* an update listener on every source (building the
  :class:`~repro.consistency.history.SourceHistory`),
* the warehouse dispatcher's delivery hook (building the delivery order), and
* the warehouse install hook (building the
  :class:`~repro.consistency.snapshots.SnapshotLog`),

then asks it for consistency verdicts after the run.
"""

from __future__ import annotations

from repro.consistency.checker import (
    CheckResult,
    InstallAttribution,
    attribute_installs,
    check_batched_complete,
    check_complete,
    check_convergence,
    check_strong,
    check_weak,
    classify,
    missing_deliveries,
)
from repro.consistency.history import SourceHistory
from repro.consistency.levels import ConsistencyLevel
from repro.consistency.snapshots import SnapshotLog
from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition
from repro.sources.messages import UpdateNotice


class RunRecorder:
    """Collects source histories, delivery order and installed snapshots."""

    def __init__(self, view: ViewDefinition):
        self.view = view
        self.history = SourceHistory()
        self.deliveries: list[UpdateNotice] = []
        self.snapshots = SnapshotLog()
        #: recovery base: the checkpoint's claimed vector.  Deliveries and
        #: installs recorded here describe the run *after* that point;
        #: every verdict shifts its prefix arithmetic by this vector.
        self.base_vector: dict[int, int] | None = None

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def register_source(self, index: int, name: str, initial: Relation) -> None:
        """Record a source's initial contents (before the run starts)."""
        self.history.register_source(index, name, initial)

    def on_source_update(self, notice: UpdateNotice) -> None:
        """Source-side listener: an update committed locally."""
        self.history.on_source_update(notice)

    def on_delivery(self, notice: UpdateNotice) -> None:
        """Warehouse-side hook: an update entered the update message queue."""
        notice.delivery_seq = len(self.deliveries) + 1
        self.deliveries.append(notice)

    def set_initial_view(self, view_state: Relation) -> None:
        """Record the warehouse's starting materialized view."""
        self.snapshots.set_initial(view_state)

    def resume_from(
        self, base_vector: dict[int, int], view_state: Relation
    ) -> None:
        """Rebase onto recovered durable state (crash-restart runs).

        ``base_vector`` is the checkpoint's claimed vector; ``view_state``
        the recovered view contents (which become the "initial" view of
        this incarnation).  The source history is unaffected -- sources
        replay their full schedules, so history vectors stay absolute.
        """
        self.base_vector = dict(base_vector)
        self.snapshots.set_initial(view_state)

    def on_install(
        self,
        time: float,
        view_state: Relation,
        claimed_vector: dict[int, int] | None = None,
        note: str = "",
    ) -> None:
        """Warehouse-side hook: a view change was installed."""
        self.snapshots.record(time, view_state, claimed_vector, note)

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    def missing_deliveries(self) -> dict[int, list[int]]:
        """Source updates the history holds but this view never saw.

        Empty for every correct quiesced run; a migration that drops its
        straggler window leaves the skipped sequence numbers here even
        when their deltas join to nothing (snapshot checks can't see
        those).
        """
        return missing_deliveries(
            self.history, self.deliveries, base_vector=self.base_vector
        )

    def check(self, level: ConsistencyLevel, max_vectors: int = 50_000) -> CheckResult:
        """Run one named consistency check over the recorded run."""
        if level == ConsistencyLevel.CONVERGENCE:
            return check_convergence(self.view, self.history, self.snapshots)
        if level == ConsistencyLevel.COMPLETE:
            return check_complete(
                self.view,
                self.history,
                self.deliveries,
                self.snapshots,
                base_vector=self.base_vector,
            )
        if level == ConsistencyLevel.WEAK:
            return check_weak(
                self.view, self.history, self.snapshots, max_vectors=max_vectors
            )
        if level == ConsistencyLevel.STRONG:
            return check_strong(
                self.view,
                self.history,
                self.snapshots,
                max_vectors=max_vectors,
                base_vector=self.base_vector,
            )
        raise ValueError(f"no check for level {level!r}")

    def classify(self, max_vectors: int = 50_000) -> ConsistencyLevel:
        """Strongest level the run satisfies (Table 1's consistency column)."""
        return classify(
            self.view,
            self.history,
            self.deliveries,
            self.snapshots,
            max_vectors=max_vectors,
            base_vector=self.base_vector,
        )

    # ------------------------------------------------------------------
    # Batch-aware accounting
    # ------------------------------------------------------------------
    def attribute_installs(self) -> list[InstallAttribution]:
        """Map each install to its member updates (vector-delta attribution).

        Raises :class:`ValueError` when the claimed vectors are malformed
        (no vector, source regression, over-claim) -- see
        :func:`repro.consistency.checker.attribute_installs`.
        """
        return attribute_installs(
            self.deliveries, self.snapshots, base_vector=self.base_vector
        )

    def check_batched(self) -> CheckResult:
        """Batch-aware completeness: installs partition the delivery order."""
        return check_batched_complete(
            self.view,
            self.history,
            self.deliveries,
            self.snapshots,
            base_vector=self.base_vector,
        )

    def per_update_staleness(self) -> list[float]:
        """Per delivered update: virtual time from delivery to its install.

        A composite install covering ``k`` updates contributes ``k``
        entries -- one per member -- so the metric stays per-update under
        batching instead of collapsing to per-install.  Entries appear in
        delivery order.  Updates never attributed to an install are
        omitted; malformed claimed vectors raise :class:`ValueError`.
        """
        staleness: list[tuple[int, float]] = []
        for attribution in self.attribute_installs():
            for notice in attribution.members:
                staleness.append(
                    (notice.delivery_seq or 0, attribution.staleness_of(notice))
                )
        return [value for _, value in sorted(staleness)]

    # ------------------------------------------------------------------
    @property
    def updates_delivered(self) -> int:
        """Updates that reached the warehouse queue."""
        return len(self.deliveries)

    @property
    def updates_installed(self) -> int:
        """Install events at the warehouse."""
        return len(self.snapshots)

    def __repr__(self) -> str:
        return (
            f"RunRecorder({self.view.name}: {self.updates_delivered} delivered,"
            f" {self.updates_installed} installed)"
        )


__all__ = ["RunRecorder"]
