"""Installed view snapshots recorded at the warehouse."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.relation import Relation


@dataclass(slots=True)
class ViewSnapshot:
    """One installed view state.

    ``claimed_vector`` is the per-source update-count vector the algorithm
    *believes* this state reflects (instrumentation); the independent
    checker ignores it, the instrumented checker validates it.
    """

    time: float
    view: Relation
    claimed_vector: dict[int, int] | None = None
    note: str = ""

    def __repr__(self) -> str:
        return (
            f"ViewSnapshot(t={self.time:.3f}, {self.view.distinct_count} rows,"
            f" claims={self.claimed_vector})"
        )


@dataclass
class SnapshotLog:
    """Ordered snapshots: the initial view state plus one per install."""

    initial: Relation | None = None
    snapshots: list[ViewSnapshot] = field(default_factory=list)

    def set_initial(self, view: Relation) -> None:
        """Record the view state the warehouse started from."""
        self.initial = view.copy()

    def record(
        self,
        time: float,
        view: Relation,
        claimed_vector: dict[int, int] | None = None,
        note: str = "",
    ) -> ViewSnapshot:
        """Append a snapshot of the installed state (copies the view)."""
        snap = ViewSnapshot(
            time=time,
            view=view.copy(),
            claimed_vector=dict(claimed_vector) if claimed_vector else claimed_vector,
            note=note,
        )
        self.snapshots.append(snap)
        return snap

    @property
    def final_view(self) -> Relation | None:
        """The last installed state (or the initial one if none installed)."""
        if self.snapshots:
            return self.snapshots[-1].view
        return self.initial

    def view_as_of(self, time: float) -> Relation | None:
        """The view a reader would have seen at virtual ``time``.

        Returns the last state installed at or before ``time`` (the initial
        state if nothing was installed yet, None if that is unknown).
        """
        current = self.initial
        for snap in self.snapshots:
            if snap.time > time:
                break
            current = snap.view
        return current

    def distinct_states(self) -> int:
        """Number of snapshots that changed the view vs. their predecessor."""
        count = 0
        prev = self.initial
        for snap in self.snapshots:
            if prev is None or snap.view != prev:
                count += 1
            prev = snap.view
        return count

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self):
        return iter(self.snapshots)


__all__ = ["SnapshotLog", "ViewSnapshot"]
