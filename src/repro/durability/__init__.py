"""Durability: checkpoint + write-ahead log crash-restart recovery.

The paper's warehouse is a process that never dies; the production
runtime's warehouse is a process that *will*.  This package makes the
maintained view survive it:

* :mod:`repro.durability.checkpoint` -- :class:`ViewCheckpoint`
  serializes every hosted view's materialized state plus the protocol
  position (claimed vectors, delivered high-water marks, the pending
  update queue) using the codec-v2 flat-row encoding;
* :mod:`repro.durability.wal` -- :class:`UpdateLog`, an append-only log
  of every source update delivered since the last checkpoint
  (length-prefixed CRC-checked frames, fsync-on-batch,
  truncate-on-torn-tail);
* :mod:`repro.durability.recovery` -- :func:`load_state` /
  :func:`resume_warehouse` rebuild a warehouse from checkpoint + log
  replay and re-enter the protocol at the exact FIFO position;
* :mod:`repro.durability.manager` -- :class:`DurabilityManager` wires
  the hooks into a running warehouse and applies the checkpoint policy.

The recovery argument is the paper's own Section 4 argument: per-source
FIFO delivery is all SWEEP needs, and recovery preserves it -- replayed
updates stay *parked* until their source's position provably covers
them (a redelivered twin, a newer live update, or a ``PositionAnswer``
probe), then re-enter the queue in their original per-source order, so
every delivered-but-uninstalled update from a source is back in the
queue when that source's answer returns and local compensation stays
exact.
"""

from repro.durability.checkpoint import CHECKPOINT_FORMAT, ViewCheckpoint
from repro.durability.errors import (
    CheckpointCorruptionError,
    DurabilityError,
    GenerationMismatchError,
    RecoveryError,
    SimulatedCrash,
    WalCorruptionError,
)
from repro.durability.manager import CheckpointPolicy, CrashPlan, DurabilityManager
from repro.durability.recovery import (
    RecoveredState,
    attach_durability,
    load_state,
    resume_warehouse,
    seed_standby_dir,
)
from repro.durability.wal import UpdateLog, read_update_log

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointCorruptionError",
    "CheckpointPolicy",
    "CrashPlan",
    "DurabilityError",
    "DurabilityManager",
    "GenerationMismatchError",
    "RecoveredState",
    "RecoveryError",
    "SimulatedCrash",
    "UpdateLog",
    "ViewCheckpoint",
    "WalCorruptionError",
    "attach_durability",
    "load_state",
    "read_update_log",
    "resume_warehouse",
    "seed_standby_dir",
]
