"""Checkpoint files: one view-state + protocol-position snapshot per generation.

A checkpoint is written only at a *stable point* -- after an install
completes and before the next queued update is popped -- so it never has
to serialize a half-finished sweep.  What it must carry instead is the
exact protocol position:

* ``applied_counts`` -- the claimed vector ``V0``: per source, how many
  updates the stored view contents reflect (sequence numbers are dense,
  so this doubles as the highest installed ``seq`` per source);
* ``delivered_marks`` -- per source, the highest ``seq`` delivered to
  this warehouse (logged or pending), the FIFO resume position: a
  redelivered update at or below the mark is a duplicate;
* ``pending`` -- every delivered-but-uninstalled update, in delivery
  order (the ``UpdateMessageQueue`` plus any update still in the inbox);
* ``request_watermark`` -- a request-id fence; answers to queries issued
  before the crash carry ids at or below it and are dropped on replay.

Files are written atomically (tmp + fsync + rename), carry a CRC over
the canonical body, and are named by generation; the matching WAL
(``update-<generation>.wal``) records deliveries after the checkpoint.

Two envelope formats exist, distinguished by the file's first byte:
format 1 is a JSON envelope ``{"format": 1, "crc", "body"}`` with the CRC
over the canonical (sorted, compact) JSON body; format 2 is a binwire
envelope (the shared binary kernel codec v3 uses on the wire -- see
:mod:`repro.runtime.binwire`) whose ``body`` is a nested binwire document
carried as bytes, with the CRC over exactly those bytes.  :meth:`
ViewCheckpoint.load` sniffs the first byte and accepts either, so
pre-existing JSON checkpoints recover unchanged; the ``.json`` filename
is kept for both (the generation glob patterns are part of the on-disk
contract).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field

from repro.durability.encoding import encode_bag, encode_notice
from repro.durability.errors import CheckpointCorruptionError

CHECKPOINT_FORMAT = 1
CHECKPOINT_FORMAT_BINARY = 2


def _binwire():
    # NOTE: imported lazily -- a module-level import of repro.runtime
    # from the durability package would close the package import cycle
    # (runtime -> distributed -> harness -> warehouse -> durability).
    from repro.runtime import binwire

    return binwire


def checkpoint_path(directory: str, generation: int) -> str:
    return os.path.join(directory, f"checkpoint-{generation:08d}.json")


def checkpoint_generations(directory: str) -> list[int]:
    """Generations with a checkpoint file present, ascending."""
    found = []
    for name in os.listdir(directory):
        if name.startswith("checkpoint-") and name.endswith(".json"):
            try:
                found.append(int(name[len("checkpoint-") : -len(".json")]))
            except ValueError:
                continue
    return sorted(found)


@dataclass
class ViewCheckpoint:
    """Durable image of one warehouse at a stable point."""

    generation: int
    applied_counts: dict[int, int]
    delivered_marks: dict[int, int]
    views: dict[str, dict]  # view name -> encoded v2 flat rows
    pending: list[dict] = field(default_factory=list)  # encoded notices
    #: source name -> encoded auxiliary copy (locality layer); absent in
    #: pre-locality checkpoints, which decode to an empty dict.
    aux: dict[str, dict] = field(default_factory=dict)
    installs: int = 0
    request_watermark: int = 0
    written_at: float = 0.0

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "generation": self.generation,
            "applied_counts": {str(k): v for k, v in self.applied_counts.items()},
            "delivered_marks": {
                str(k): v for k, v in self.delivered_marks.items()
            },
            "views": self.views,
            "pending": self.pending,
            "aux": self.aux,
            "installs": self.installs,
            "request_watermark": self.request_watermark,
            "written_at": self.written_at,
        }

    @classmethod
    def from_json(cls, body: dict) -> "ViewCheckpoint":
        return cls(
            generation=int(body["generation"]),
            applied_counts={
                int(k): int(v) for k, v in body["applied_counts"].items()
            },
            delivered_marks={
                int(k): int(v) for k, v in body["delivered_marks"].items()
            },
            views=dict(body["views"]),
            pending=list(body.get("pending", ())),
            aux=dict(body.get("aux", {})),
            installs=int(body.get("installs", 0)),
            request_watermark=int(body.get("request_watermark", 0)),
            written_at=float(body.get("written_at", 0.0)),
        )

    # ------------------------------------------------------------------
    def write(self, directory: str, binary: bool = True) -> str:
        """Atomic write: tmp file, fsync, rename over the final name.

        On POSIX a crash can leave a stale tmp file but never a torn
        file under the final name, which is why recovery may treat any
        present checkpoint as all-or-nothing.  ``binary`` selects the
        format-2 binwire envelope (the default; ``load`` sniffs, so both
        formats stay readable); ``binary=False`` writes the legacy JSON
        envelope.
        """
        if binary:
            body_bytes = _binwire().dumps(self.to_json())
            blob = _binwire().dumps(
                {
                    "format": CHECKPOINT_FORMAT_BINARY,
                    "crc": zlib.crc32(body_bytes),
                    "body": body_bytes,
                }
            )
        else:
            body = json.dumps(
                self.to_json(), sort_keys=True, separators=(",", ":")
            )
            envelope = {
                "format": CHECKPOINT_FORMAT,
                "crc": zlib.crc32(body.encode("utf-8")),
                "body": self.to_json(),
            }
            blob = json.dumps(
                envelope, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
        final = checkpoint_path(directory, self.generation)
        tmp = final + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        return final

    @classmethod
    def load(cls, path: str) -> "ViewCheckpoint":
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
            binwire = _binwire()
            if binwire.is_binary(blob):
                envelope = binwire.loads(blob)
                if int(envelope.get("format", 0)) != CHECKPOINT_FORMAT_BINARY:
                    raise CheckpointCorruptionError(
                        f"{path}: unsupported checkpoint format"
                        f" {envelope.get('format')!r}"
                    )
                body_bytes = envelope["body"]
                if zlib.crc32(body_bytes) != int(envelope["crc"]):
                    raise CheckpointCorruptionError(f"{path}: body fails CRC")
                return cls.from_json(binwire.loads(body_bytes))
            envelope = json.loads(blob.decode("utf-8"))
            if int(envelope.get("format", 0)) != CHECKPOINT_FORMAT:
                raise CheckpointCorruptionError(
                    f"{path}: unsupported checkpoint format"
                    f" {envelope.get('format')!r}"
                )
            body = envelope["body"]
            canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
            if zlib.crc32(canonical.encode("utf-8")) != int(envelope["crc"]):
                raise CheckpointCorruptionError(f"{path}: body fails CRC")
            return cls.from_json(body)
        except CheckpointCorruptionError:
            raise
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise CheckpointCorruptionError(
                f"{path}: unreadable checkpoint: {exc}"
            ) from exc

    @classmethod
    def load_latest(
        cls, directory: str
    ) -> "tuple[int, ViewCheckpoint] | None":
        """The newest checkpoint in ``directory``, or None if there is none.

        A corrupt *newest* checkpoint raises rather than silently falling
        back to an older generation: the newer WAL would then be
        unreplayable and the served view silently stale.
        """
        generations = checkpoint_generations(directory)
        if not generations:
            return None
        newest = generations[-1]
        return newest, cls.load(checkpoint_path(directory, newest))


def capture_checkpoint(
    warehouse,
    generation: int,
    delivered_marks: dict[int, int],
    parked=(),
) -> ViewCheckpoint:
    """Snapshot a quiescent warehouse's durable image.

    Must be called at a stable point: the previous update/batch fully
    installed (all views), no sweep in flight, no unconsumed answers.
    ``pending`` captures recovery-``parked`` updates first (the oldest
    deliveries, still awaiting source-position confirmation), then the
    update queue, then any updates already in the inbox but not yet
    dispatched.  Redelivered twins of an already-captured (or already
    installed) update are skipped so no sequence number appears twice.
    """
    from repro.sources.messages import next_request_id

    stores = getattr(warehouse, "stores", None) or {
        warehouse.view.name: warehouse.store
    }
    applied = warehouse.applied_counts
    seen: set = set()
    pending = []
    for notice in parked:
        seen.add((notice.source_index, notice.seq))
        pending.append(encode_notice(notice))
    live = list(warehouse.update_queue.peek_all())
    live.extend(
        msg for msg in warehouse.inbox.peek_all() if msg.kind == "update"
    )
    for msg in live:
        notice = msg.payload
        key = (notice.source_index, notice.seq)
        if key in seen or notice.seq <= applied.get(notice.source_index, 0):
            continue
        seen.add(key)
        pending.append(encode_notice(notice))
    locality = getattr(warehouse, "locality", None)
    aux = (
        {name: encode_bag(rel) for name, rel in locality.aux_relations().items()}
        if locality is not None
        else {}
    )
    return ViewCheckpoint(
        generation=generation,
        applied_counts=dict(warehouse.applied_counts),
        delivered_marks=dict(delivered_marks),
        views={
            name: encode_bag(store.relation) for name, store in stores.items()
        },
        pending=pending,
        aux=aux,
        installs=warehouse.store.installs,
        request_watermark=next_request_id(),
        written_at=warehouse.sim.now,
    )


#: Envelope tag for a shard-rebalance view handoff (same binwire kernel
#: and CRC discipline as a format-2 checkpoint, different payload shape).
HANDOFF_FORMAT = 3


def encode_view_handoff(
    view_name: str,
    position: dict[int, int],
    relation,
    aux: dict[str, object] | None = None,
    epoch: int = 0,
) -> bytes:
    """Serialize one view's migration handoff as a binwire envelope.

    The body carries the view's contents (codec-v2 flat rows, the same
    ``encode_bag`` the checkpoint writer uses), the per-source position
    vector the contents reflect (the donor's seal snapshot ``P``), and
    the donor's auxiliary source copies so a locality-enabled recipient
    can adopt rather than rebuild them.  CRC and format tagging mirror
    :meth:`ViewCheckpoint.write` so a torn or corrupt handoff is caught
    at decode time, not as a silently wrong view.
    """
    body = {
        "view": view_name,
        "position": {str(k): int(v) for k, v in position.items()},
        "rows": encode_bag(relation),
        "aux": {
            name: encode_bag(rel) for name, rel in (aux or {}).items()
        },
        "epoch": int(epoch),
    }
    body_bytes = _binwire().dumps(body)
    return _binwire().dumps(
        {
            "format": HANDOFF_FORMAT,
            "crc": zlib.crc32(body_bytes),
            "body": body_bytes,
        }
    )


def decode_view_handoff(blob: bytes) -> dict:
    """Decode and verify a handoff produced by :func:`encode_view_handoff`.

    Returns ``{"view", "position", "rows", "aux", "epoch"}`` with the
    position keyed by int source index; ``rows``/``aux`` values stay in
    flat-row form for the caller to decode against its schemas (see
    :func:`repro.durability.encoding.decode_relation`).
    """
    binwire = _binwire()
    envelope = binwire.loads(blob)
    if int(envelope.get("format", 0)) != HANDOFF_FORMAT:
        raise CheckpointCorruptionError(
            f"unsupported handoff format {envelope.get('format')!r}"
        )
    body_bytes = envelope["body"]
    if zlib.crc32(body_bytes) != int(envelope["crc"]):
        raise CheckpointCorruptionError("handoff body fails CRC")
    body = binwire.loads(body_bytes)
    return {
        "view": body["view"],
        "position": {int(k): int(v) for k, v in body["position"].items()},
        "rows": body["rows"],
        "aux": dict(body.get("aux", {})),
        "epoch": int(body.get("epoch", 0)),
    }


__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_FORMAT_BINARY",
    "HANDOFF_FORMAT",
    "ViewCheckpoint",
    "capture_checkpoint",
    "checkpoint_generations",
    "checkpoint_path",
    "decode_view_handoff",
    "encode_view_handoff",
]
