"""Codec-v2 flat-row encoding for durable state and delta snapshots.

Everything durable (checkpoint view contents, WAL update frames) and the
delta-encoded bootstrap snapshot reuses the wire codec's v2 row shape --
one flat array of ``arity + 1`` entries per row -- so a checkpoint is
byte-compatible with what travels the wire and the decoder is the one
already exercised by every TCP conformance run.  The durable form adds a
``"w"`` (width/arity) key so a frame is self-sizing without the schema.
"""

from __future__ import annotations

from typing import Any

from repro.relational.delta import Delta
from repro.relational.relation import BagBase, Relation
from repro.relational.schema import Schema
from repro.relational.view import ViewDefinition
from repro.sources.messages import SnapshotAnswer, UpdateNotice

# NOTE: repro.runtime.codec is imported lazily inside the two helpers
# below.  The warehouse package reaches this module at import time (the
# bootstrap path), and an eager import would close the cycle
# warehouse -> durability -> runtime -> distributed -> harness ->
# warehouse.


def encode_bag(bag: BagBase) -> dict:
    """Flat v2 rows plus explicit arity (``{"f": [...], "w": arity}``)."""
    from repro.runtime.codec import _encode_rows

    obj = _encode_rows(bag, 2)
    obj["w"] = len(bag.schema)
    return obj


def encoded_row_count(rows: dict) -> int:
    """Distinct rows in an encoded bag, without decoding it."""
    stride = int(rows.get("w", 0)) + 1
    return len(rows["f"]) // stride if stride > 1 else len(rows["f"])


def decode_relation(rows: Any, schema: Schema) -> Relation:
    from repro.runtime.codec import _decode_counts

    return Relation(schema, _decode_counts(rows, len(schema)))


def decode_delta(rows: Any, schema: Schema) -> Delta:
    from repro.runtime.codec import _decode_counts

    return Delta(schema, _decode_counts(rows, len(schema)))


# ----------------------------------------------------------------------
# Update notices (WAL frames / checkpoint pending queue)
# ----------------------------------------------------------------------
def encode_notice(notice: UpdateNotice) -> dict:
    """A JSON-safe dict for one delivered update.

    Delivery stamps (``delivery_seq``/``delivered_at``) are deliberately
    dropped: on replay the dispatcher re-stamps them, which is what lets
    a fresh recorder number the recovered run's deliveries from one.
    """
    return {
        "source_index": notice.source_index,
        "seq": notice.seq,
        "applied_at": notice.applied_at,
        "txn_id": notice.txn_id,
        "txn_total": notice.txn_total,
        "rows": encode_bag(notice.delta),
    }


def decode_notice(obj: dict, view: ViewDefinition) -> UpdateNotice:
    index = int(obj["source_index"])
    return UpdateNotice(
        source_index=index,
        seq=int(obj["seq"]),
        delta=decode_delta(obj["rows"], view.schema_of(index)),
        applied_at=float(obj.get("applied_at", 0.0)),
        txn_id=obj.get("txn_id"),
        txn_total=int(obj.get("txn_total", 0)),
    )


# ----------------------------------------------------------------------
# Delta-encoded snapshots (bootstrap / recompute)
# ----------------------------------------------------------------------
def snapshot_relation(answer: SnapshotAnswer, schema: Schema) -> Relation:
    """Materialize a snapshot answer, whichever form it travelled in."""
    if answer.relation is not None:
        return answer.relation
    if answer.rows is None:
        raise ValueError("snapshot answer carries neither relation nor rows")
    return decode_relation(answer.rows, schema)


def snapshot_delta(answer: SnapshotAnswer, schema: Schema) -> Delta:
    """A snapshot answer as an insertion delta (bootstrap seeding)."""
    if answer.relation is not None:
        return Delta.from_relation(answer.relation)
    if answer.rows is None:
        raise ValueError("snapshot answer carries neither relation nor rows")
    return decode_delta(answer.rows, schema)


__all__ = [
    "decode_delta",
    "decode_notice",
    "decode_relation",
    "encode_bag",
    "encode_notice",
    "encoded_row_count",
    "snapshot_delta",
    "snapshot_relation",
]
