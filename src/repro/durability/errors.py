"""Durability-layer errors.

The contract of the whole package: a warehouse either recovers to a
provably consistent state or fails **loudly** -- it never serves a
silently wrong view.  Torn tails (an append cut short by the crash) are
the one expected form of damage and are repaired by truncation; any
other mismatch raises one of these.
"""

from __future__ import annotations


class DurabilityError(Exception):
    """Base class for checkpoint/WAL/recovery failures."""


class WalCorruptionError(DurabilityError):
    """A WAL frame failed its CRC (not at the torn tail) or is malformed."""


class CheckpointCorruptionError(DurabilityError):
    """A checkpoint file is unreadable or fails its integrity check."""


class GenerationMismatchError(DurabilityError):
    """Checkpoint and update log disagree about the generation number.

    A WAL from a different generation than the newest checkpoint means
    the durable directory holds remnants of two different incarnations;
    replaying it could re-apply already-checkpointed updates.
    """


class RecoveryError(DurabilityError):
    """Recovered state cannot be re-entered into the protocol."""


class SimulatedCrash(BaseException):
    """Deterministic crash injection marker (see :class:`CrashPlan`).

    Derives from ``BaseException`` like ``KeyboardInterrupt``: a crash is
    not an error any protocol layer may catch and survive -- the harness
    that scheduled it is the only legitimate handler.
    """


__all__ = [
    "CheckpointCorruptionError",
    "DurabilityError",
    "GenerationMismatchError",
    "RecoveryError",
    "SimulatedCrash",
    "WalCorruptionError",
]
