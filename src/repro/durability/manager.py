"""Durability hooks for a running warehouse.

:class:`DurabilityManager` owns the durable directory of one warehouse:
it logs every delivered update to the open WAL, counts installs, and
rolls a new checkpoint generation when the policy says so -- always at a
*stable point* (between units of work, see
:func:`repro.durability.checkpoint.capture_checkpoint`), which is why
the warehouse loop calls :meth:`maybe_checkpoint` rather than the
manager checkpointing asynchronously.

:class:`CrashPlan` is the deterministic crash injector used by the
crash-restart sweep: it kills the warehouse after the N-th delivery or
the N-th install, which -- deliveries interleaving freely with sweep
steps -- lands crash points mid-batch, mid-compensation and mid
multi-view install as N varies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.durability.checkpoint import (
    ViewCheckpoint,
    capture_checkpoint,
    checkpoint_generations,
    checkpoint_path,
)
from repro.durability.errors import SimulatedCrash
from repro.durability.wal import UpdateLog, wal_generations, wal_path
from repro.simulation.channel import Message
from repro.simulation.mailbox import Mailbox
from repro.sources.messages import (
    PositionRequest,
    UpdateNotice,
    next_request_id,
)

import os


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to roll a new checkpoint generation.

    ``every_installs`` rolls after that many installs since the last
    checkpoint; ``every_time`` after that much virtual time.  Either can
    be disabled with 0; both disabled means only the attach-time
    checkpoint is ever written (the WAL then carries the whole run).
    """

    every_installs: int = 25
    every_time: float = 0.0


class CrashPlan:
    """Deterministic kill switch: crash after N deliveries or N installs."""

    def __init__(
        self,
        after_deliveries: int | None = None,
        after_installs: int | None = None,
    ):
        self.after_deliveries = after_deliveries
        self.after_installs = after_installs
        self.deliveries = 0
        self.installs = 0
        self.fired = False

    def tick_delivery(self) -> None:
        self.deliveries += 1
        if (
            not self.fired
            and self.after_deliveries is not None
            and self.deliveries >= self.after_deliveries
        ):
            self.fired = True
            raise SimulatedCrash(
                f"crash plan fired after delivery #{self.deliveries}"
            )

    def tick_install(self) -> None:
        self.installs += 1
        if (
            not self.fired
            and self.after_installs is not None
            and self.installs >= self.after_installs
        ):
            self.fired = True
            raise SimulatedCrash(
                f"crash plan fired after install #{self.installs}"
            )


class LoggingMailbox(Mailbox):
    """A warehouse inbox that logs updates *before* accepting them.

    The TCP listener acknowledges a frame only after ``destination.put``
    returns (see :mod:`repro.runtime.tcp`), so routing the listener's
    deliveries through this mailbox yields log-before-ack: a SIGKILL
    between ack and dispatch cannot lose an update, because the append
    happened first and the unacked frame would have been retransmitted
    anyway.  ``manager`` is attached later by
    :meth:`DurabilityManager.attach`; puts before that (recovery replay)
    are deliberately not logged -- they are already durable.
    """

    def __init__(self, sim, name: str = "warehouse-inbox"):
        super().__init__(sim, name)
        self.manager: DurabilityManager | None = None

    def put(self, message) -> None:
        if self.manager is not None and message.kind == "update":
            self.manager.log_delivery(message.payload, crash_ok=False)
        super().put(message)


class DurabilityManager:
    """Checkpoint + WAL lifecycle for one warehouse."""

    def __init__(
        self,
        directory: str,
        policy: CheckpointPolicy | None = None,
        fsync_batch: int = 8,
        crash_plan: CrashPlan | None = None,
        binary: bool = True,
    ):
        self.directory = directory
        self.policy = policy if policy is not None else CheckpointPolicy()
        self.fsync_batch = fsync_batch
        self.crash_plan = crash_plan
        #: serialize checkpoints/WAL frames through the shared binary
        #: kernel (format 2); readers sniff, so either setting recovers
        #: directories written by the other.
        self.binary = binary
        os.makedirs(directory, exist_ok=True)
        self.warehouse = None
        self.generation = 0
        #: which incarnation of the warehouse this is (the attach-time
        #: base generation): stamped into every outgoing query and echoed
        #: by sources, so the dispatcher can drop answers addressed to a
        #: pre-crash incarnation.  Strictly increases across restarts.
        self.incarnation = 0
        self.wal: UpdateLog | None = None
        #: highest seq delivered in a *previous* incarnation, per source;
        #: redeliveries at or below are duplicates and must be dropped.
        self.resume_marks: dict[int, int] = {}
        #: highest seq made durable (checkpointed or WAL-logged), per source.
        self.logged_marks: dict[int, int] = {}
        #: recovered (logged-but-uninstalled) updates, parked per source
        #: until that source's position provably covers them -- see
        #: :meth:`ingest_update` for why they cannot be replayed eagerly.
        self._parked: dict[int, deque] = {}
        #: highest source position observed this incarnation (live update
        #: seqs and :class:`PositionAnswer` probes both advance it).
        self._source_pos: dict[int, int] = {}
        self._probes_sent = False
        self.checkpoints_written = 0
        self._installs_since = 0
        self._last_checkpoint_at = 0.0

    # ------------------------------------------------------------------
    def attach(self, warehouse, state=None) -> None:
        """Bind to a warehouse (already resumed, if ``state`` is given) and
        write the incarnation's base checkpoint."""
        self.warehouse = warehouse
        warehouse.durability = self
        if isinstance(warehouse.inbox, LoggingMailbox):
            warehouse.inbox.manager = self
        if state is not None:
            self.resume_marks = dict(state.delivered_marks)
            self.generation = state.generation + 1
            for notice in state.pending:
                self._parked.setdefault(
                    notice.source_index, deque()
                ).append(notice)
        self.incarnation = self.generation
        self.logged_marks = dict(self.resume_marks)
        self._write_checkpoint()

    # ------------------------------------------------------------------
    # Hooks called from the warehouse loops
    # ------------------------------------------------------------------
    def parked_count(self) -> int:
        """Recovered updates still awaiting source-position confirmation."""
        return sum(len(parked) for parked in self._parked.values())

    def ingest_update(self, msg) -> None:
        """The dispatcher's delivery path for one live update message.

        Recovered pending updates cannot simply be replayed into the
        queue at attach time: SWEEP's compensation is exact only when
        every update reflected in a query answer is accounted for by the
        view state, the batch, or the update queue.  A replayed update's
        *source* may not have re-reached that state yet (the whole world
        restarting deterministically re-runs the source schedules), so a
        sweep driven by an eagerly replayed update would subtract its
        delta from answers that never contained it.  Instead the
        recovered updates stay parked per source and are released -- in
        their original per-source order -- only once the source's
        observed position covers them: any live update with seq ``s``
        proves the source applied everything up to ``s`` (redelivered
        twins of parked updates are absorbed, newer updates park behind
        the recovered prefix to preserve FIFO), and a
        :class:`~repro.sources.messages.PositionAnswer` probe covers
        sources that kept their state across the crash and therefore
        never resend acknowledged updates.  Because updates, answers and
        probe replies share one FIFO channel per source, every release
        lands in the queue before any answer whose evaluation saw the
        released update -- which is exactly the compensation invariant.
        """
        notice = msg.payload
        index, seq = notice.source_index, notice.seq
        warehouse = self.warehouse
        if seq > self._source_pos.get(index, 0):
            self._source_pos[index] = seq
        parked = self._parked.get(index)
        if parked:
            if seq > self.resume_marks.get(index, 0):
                self.log_delivery(notice)
                parked.append(notice)
                warehouse.metrics.increment("recovery_parked_live")
            else:
                warehouse.metrics.increment("recovery_duplicates_dropped")
            self._drain_parked(index)
            return
        if seq <= self.resume_marks.get(index, 0):
            warehouse.metrics.increment("recovery_duplicates_dropped")
            return
        warehouse.note_delivery(notice)
        self.log_delivery(notice)
        warehouse.update_queue.put(msg)

    def on_position(self, index: int, position: int) -> None:
        """A probe answer: the source has applied ``position`` updates."""
        if position > self._source_pos.get(index, 0):
            self._source_pos[index] = position
        self._drain_parked(index)

    def _drain_parked(self, index: int) -> None:
        parked = self._parked.get(index)
        if not parked:
            return
        warehouse = self.warehouse
        position = self._source_pos.get(index, 0)
        while parked and parked[0].seq <= position:
            notice = parked.popleft()
            warehouse.note_delivery(notice)
            warehouse.update_queue.put(
                Message(kind="update", sender="recovery", payload=notice)
            )
            warehouse.metrics.increment("recovery_replayed")
        if not parked:
            del self._parked[index]

    def _maybe_send_probes(self) -> None:
        """Once, at the first stable point: probe every parked source.

        Sent before the first sweep query of this incarnation, so by
        channel FIFO the probe's answer (and the releases it triggers)
        precedes any sweep answer the source evaluates afterwards.
        """
        if self._probes_sent:
            return
        self._probes_sent = True
        for index in sorted(self._parked):
            self.warehouse.send_query(
                index, PositionRequest(request_id=next_request_id())
            )

    def log_delivery(self, notice: UpdateNotice, crash_ok: bool = True) -> None:
        """Append a newly delivered update to the WAL (idempotent per seq).

        ``crash_ok`` gates crash injection to the dispatcher path so a
        plan never fires inside a transport callback, where the exception
        could be swallowed instead of killing the warehouse.
        """
        mark = self.logged_marks.get(notice.source_index, 0)
        if notice.seq > mark:
            self.wal.append_notice(notice)
            self.logged_marks[notice.source_index] = notice.seq
        if crash_ok and self.crash_plan is not None:
            self.crash_plan.tick_delivery()

    def on_install(self) -> None:
        self._installs_since += 1
        if self.crash_plan is not None:
            self.crash_plan.tick_install()

    def maybe_checkpoint(self) -> bool:
        """Roll a generation if the policy is due.  Stable points only."""
        self._maybe_send_probes()
        warehouse = self.warehouse
        due = (
            self.policy.every_installs
            and self._installs_since >= self.policy.every_installs
        ) or (
            self.policy.every_time
            and warehouse.sim.now - self._last_checkpoint_at
            >= self.policy.every_time
        )
        if not due or self._installs_since == 0:
            return False
        if len(warehouse._answer_box):  # pragma: no cover - defensive
            return False  # not actually stable; defer to the next boundary
        self.generation += 1
        self._write_checkpoint()
        return True

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()

    # ------------------------------------------------------------------
    def _write_checkpoint(self) -> ViewCheckpoint:
        warehouse = self.warehouse
        checkpoint = capture_checkpoint(
            warehouse,
            self.generation,
            self.logged_marks,
            parked=[
                notice
                for index in sorted(self._parked)
                for notice in self._parked[index]
            ],
        )
        checkpoint.write(self.directory, binary=self.binary)
        if self.wal is not None:
            self.wal.close()
        self.wal = UpdateLog(
            self.directory,
            self.generation,
            fsync_batch=self.fsync_batch,
            binary=self.binary,
        )
        self._prune_before(self.generation)
        self.checkpoints_written += 1
        self._installs_since = 0
        self._last_checkpoint_at = warehouse.sim.now
        warehouse.metrics.increment("checkpoints_written")
        if warehouse.trace:
            warehouse.trace.record(
                warehouse.sim.now,
                "warehouse",
                "checkpoint",
                f"generation {self.generation}",
            )
        return checkpoint

    def _prune_before(self, generation: int) -> None:
        """Older generations are fully subsumed by the new checkpoint."""
        for gen in checkpoint_generations(self.directory):
            if gen < generation:
                os.unlink(checkpoint_path(self.directory, gen))
        for gen in wal_generations(self.directory):
            if gen < generation:
                os.unlink(wal_path(self.directory, gen))


__all__ = [
    "CheckpointPolicy",
    "CrashPlan",
    "DurabilityManager",
    "LoggingMailbox",
]
