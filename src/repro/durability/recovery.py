"""Crash-restart recovery: checkpoint + WAL replay back into the protocol.

:func:`load_state` reads the durable directory back into a
:class:`RecoveredState`; :func:`resume_warehouse` re-enters a freshly
constructed warehouse at the exact FIFO position the durable state
records; :func:`attach_durability` composes both with a new
:class:`~repro.durability.manager.DurabilityManager` and is the one call
sites use.

Why this is correct (the Section 4 argument, restated for recovery):
SWEEP's only ordering requirement is per-source FIFO between the update
stream and the query answers.  Recovery preserves it because

* the view contents and ``applied_counts`` come from the same stable
  point (a checkpoint is only taken between units of work), so the
  restored view is exactly "the delivery prefix counted by ``V0``";
* every update delivered after that stable point is *parked* in the
  :class:`~repro.durability.manager.DurabilityManager` in its original
  per-source order (checkpoint ``pending`` first, then the WAL records
  -- the WAL for generation ``G`` only ever holds post-checkpoint
  deliveries) and released into the queue only once the source's
  position provably covers it -- a live update with that or a higher
  seq, or a ``PositionAnswer`` probe.  Eager replay would be wrong:
  sweeps over a replayed update query the source's *current* state, and
  compensation is only exact when everything that state reflects is in
  the view, the batch, or the queue;
* redeliveries of already-parked updates (sources replay, or the
  transport retransmits unacked frames) are absorbed by the
  ``delivered_marks`` fence, so the queue never holds an update twice
  and never reorders within a source;
* in-flight sweeps are not resumed but *restarted*: their driving update
  is parked then re-queued, the re-issued queries see the sources'
  current state, and every queued update from a source is -- as always --
  exactly the set whose error terms local compensation subtracts;
* answers to pre-crash queries that the transport redelivers are
  dropped by the dispatcher: ids at or below the checkpoint's
  ``request_watermark`` fall under the id floor, and answers to queries
  issued *after* that checkpoint (whose ids durable state never saw)
  carry the pre-crash incarnation's epoch, which no longer matches.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import shutil

from repro.durability.checkpoint import (
    ViewCheckpoint,
    checkpoint_generations,
    checkpoint_path,
)
from repro.durability.encoding import decode_notice, decode_relation
from repro.durability.errors import GenerationMismatchError, RecoveryError
from repro.durability.manager import CheckpointPolicy, CrashPlan, DurabilityManager
from repro.durability.wal import read_update_log, wal_generations, wal_path
from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition
from repro.sources.messages import UpdateNotice, ensure_request_ids_above


@dataclass
class RecoveredState:
    """Everything a restarted warehouse needs to re-enter the protocol."""

    generation: int
    applied_counts: dict[int, int]
    delivered_marks: dict[int, int]
    view_states: dict[str, Relation]
    pending: list[UpdateNotice] = field(default_factory=list)
    #: source name -> checkpointed auxiliary copy (locality layer).
    aux_states: dict[str, Relation] = field(default_factory=dict)
    installs: int = 0
    request_watermark: int = 0
    wal_records: int = 0
    wal_torn_bytes: int = 0

    @property
    def delivered_total(self) -> int:
        """Updates delivered (durably) across all previous incarnations."""
        return sum(self.delivered_marks.values())


def load_state(
    directory: str, views: list[ViewDefinition]
) -> RecoveredState | None:
    """Read durable state back; ``None`` means a fresh (empty) directory.

    Raises loudly on anything that could yield a silently wrong view:
    corrupt checkpoint, scrambled WAL frame, or a WAL whose generation
    does not match the newest checkpoint.
    """
    if not os.path.isdir(directory):
        return None
    latest = ViewCheckpoint.load_latest(directory)
    generations = wal_generations(directory)
    if latest is None:
        if generations:
            raise RecoveryError(
                f"{directory}: update log(s) for generation(s) {generations}"
                " but no checkpoint; cannot establish a base state"
            )
        return None
    generation, checkpoint = latest
    newer = [g for g in generations if g > generation]
    if newer:
        raise GenerationMismatchError(
            f"{directory}: update log generation(s) {newer} are newer than"
            f" the newest checkpoint ({generation}); a checkpoint is missing"
        )

    by_name = {view.name: view for view in views}
    primary = views[0]
    unknown = sorted(set(checkpoint.views) - set(by_name))
    if unknown or set(by_name) - set(checkpoint.views):
        raise RecoveryError(
            f"{directory}: checkpoint views {sorted(checkpoint.views)} do not"
            f" match configured views {sorted(by_name)}"
        )
    view_states = {
        name: decode_relation(rows, by_name[name].view_schema)
        for name, rows in checkpoint.views.items()
    }

    source_schemas = {
        primary.name_of(i): primary.schema_of(i)
        for i in range(1, primary.n_relations + 1)
    }
    unknown_aux = sorted(set(checkpoint.aux) - set(source_schemas))
    if unknown_aux:
        raise RecoveryError(
            f"{directory}: checkpoint auxiliary copies for unknown"
            f" source(s) {unknown_aux}"
        )
    aux_states = {
        name: decode_relation(rows, source_schemas[name])
        for name, rows in checkpoint.aux.items()
    }

    pending = [decode_notice(obj, primary) for obj in checkpoint.pending]
    wal_records = 0
    torn = 0
    path = wal_path(directory, generation)
    if os.path.exists(path):
        wal_gen, records, torn = read_update_log(path, repair=True)
        if wal_gen is not None and wal_gen != generation:
            raise GenerationMismatchError(
                f"{path}: header claims generation {wal_gen}, checkpoint is"
                f" generation {generation}"
            )
        for obj in records:
            pending.append(decode_notice(obj, primary))
        wal_records = len(records)

    delivered = dict(checkpoint.delivered_marks)
    for notice in pending:
        mark = delivered.get(notice.source_index, 0)
        if notice.seq > mark:
            delivered[notice.source_index] = notice.seq
    for index, applied in checkpoint.applied_counts.items():
        if delivered.get(index, 0) < applied:
            raise RecoveryError(
                f"{directory}: source {index} claims {applied} installed"
                f" updates but only {delivered.get(index, 0)} delivered"
            )
    return RecoveredState(
        generation=generation,
        applied_counts=dict(checkpoint.applied_counts),
        delivered_marks=delivered,
        view_states=view_states,
        pending=pending,
        aux_states=aux_states,
        installs=checkpoint.installs,
        request_watermark=checkpoint.request_watermark,
        wal_records=wal_records,
        wal_torn_bytes=torn,
    )


def resume_warehouse(warehouse, state: RecoveredState) -> None:
    """Re-enter a freshly built warehouse at the recovered position.

    Must run before the transports start delivering: view stores and
    claimed vectors are overwritten and the recorders are rebased.  The
    pending updates are *not* enqueued here -- the manager parks them at
    attach and releases each one only when its source's position is
    confirmed (see :meth:`DurabilityManager.ingest_update`).
    """
    from repro.warehouse.base import QueueDrivenWarehouse

    if not isinstance(warehouse, QueueDrivenWarehouse):
        raise RecoveryError(
            f"durability supports queue-driven warehouses, not"
            f" {type(warehouse).__name__}"
        )
    stores = getattr(warehouse, "stores", None) or {
        warehouse.view.name: warehouse.store
    }
    for name, relation in state.view_states.items():
        stores[name].relation = relation.copy()
    warehouse.applied_counts.update(state.applied_counts)
    warehouse.store.installs = state.installs
    #: answers to pre-crash queries are stale at or below this id.
    warehouse.stale_answer_floor = state.request_watermark
    ensure_request_ids_above(state.request_watermark)

    if warehouse.recorder is not None:
        warehouse.recorder.resume_from(
            state.applied_counts, warehouse.store.relation
        )
    for name, recorder in getattr(warehouse, "extra_recorders", {}).items():
        recorder.resume_from(state.applied_counts, stores[name].relation)

    locality = getattr(warehouse, "locality", None)
    if locality is not None:
        # Seed covered copies from the checkpoint; demote any copy the
        # durable state does not carry (pre-locality checkpoint, or a
        # mode change across the restart).  The answer cache is always
        # cold after recovery.
        locality.resume_from(state.aux_states)

    warehouse.metrics.observe("recovered_pending", len(state.pending))
    warehouse.metrics.increment("recoveries")


def attach_durability(
    warehouse,
    directory: str,
    policy: CheckpointPolicy | None = None,
    fsync_batch: int = 8,
    crash_plan: CrashPlan | None = None,
    binary: bool = True,
) -> tuple[DurabilityManager, RecoveredState | None]:
    """Recover (if durable state exists), resume, and start logging.

    Returns the manager and the recovered state (``None`` on a fresh
    directory).  The manager immediately writes this incarnation's base
    checkpoint, so the WAL never straddles a crash boundary.  ``binary``
    picks the on-disk format for what this incarnation *writes*; reading
    always accepts both formats, so a JSON-era directory recovers here
    unchanged (and is upgraded in place by the base checkpoint).
    """
    views = getattr(warehouse, "views", None) or [warehouse.view]
    state = load_state(directory, list(views))
    if state is not None:
        resume_warehouse(warehouse, state)
    manager = DurabilityManager(
        directory,
        policy=policy,
        fsync_batch=fsync_batch,
        crash_plan=crash_plan,
        binary=binary,
    )
    manager.attach(warehouse, state)
    return manager, state


def seed_standby_dir(source_dir: str, dest_dir: str) -> int | None:
    """Seed a hot standby's durable directory from a primary's checkpoint.

    Copies only the *newest checkpoint* -- never the WAL.  The WAL
    records the primary's own post-checkpoint deliveries, which the
    standby must NOT inherit: it receives those same updates over its
    own FIFO channels, and replaying the primary's log would double
    them.  The checkpoint alone is a stable prefix (taken between units
    of work), so the seeded standby parks its ``pending`` and catches up
    exactly like a restarted primary whose WAL was empty.

    Returns the seeded generation, or ``None`` when the primary has no
    checkpoint yet (the standby then starts cold from seq 1).  Refuses
    to seed over existing durable state.
    """
    if checkpoint_generations(dest_dir):
        raise RecoveryError(
            f"{dest_dir}: refusing to seed over existing durable state"
        )
    generations = checkpoint_generations(source_dir)
    if not generations:
        return None
    newest = generations[-1]
    os.makedirs(dest_dir, exist_ok=True)
    shutil.copyfile(
        checkpoint_path(source_dir, newest), checkpoint_path(dest_dir, newest)
    )
    return newest


__all__ = [
    "RecoveredState",
    "attach_durability",
    "load_state",
    "resume_warehouse",
    "seed_standby_dir",
]
