"""The append-only update log.

Frame format (all integers big-endian, mirroring the TCP transport's
length-prefix convention)::

    +----------------+----------------+------------------------+
    | length (4B BE) | crc32 (4B BE)  | payload                |
    +----------------+----------------+------------------------+

Frame 0 is a header record ``{"wal": <format>, "generation": G}`` binding
the file to checkpoint generation ``G``; every later frame is one encoded
:class:`~repro.sources.messages.UpdateNotice` in delivery order.  Format
1 serializes payloads as UTF-8 JSON; format 2 serializes them through the
shared binary kernel (:mod:`repro.runtime.binwire` -- the same encoder
codec v3 uses on the wire), eliminating the second JSON encode on the
durable path.  :func:`read_update_log` sniffs each payload's first byte,
so logs of either format (and mixed tails left by an upgrade) recover
identically.

Damage policy (the satellite contract):

* **torn tail** -- the file ends inside a frame (a crash cut an append
  short).  Expected; :func:`read_update_log` drops the partial frame and,
  with ``repair=True``, truncates the file back to the last whole frame.
* **CRC mismatch** -- a complete frame whose payload does not match its
  checksum.  That is not a torn write (torn writes are short, not
  scrambled), so it raises :class:`WalCorruptionError` -- recovery must
  fail loudly rather than replay a damaged update into the view.

Durability policy: every append is flushed to the OS immediately (a
process crash loses nothing) and ``fsync``\\ ed once per ``fsync_batch``
appends (a machine crash loses at most one batch); ``sync()`` forces the
fsync at protocol boundaries.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

from repro.durability.encoding import encode_notice
from repro.durability.errors import WalCorruptionError

_FRAME_HEADER = struct.Struct("!II")
WAL_FORMAT = 1
WAL_FORMAT_BINARY = 2


def _binwire():
    # NOTE: imported lazily -- a module-level import of repro.runtime
    # from the durability package would close the package import cycle
    # (runtime -> distributed -> harness -> warehouse -> durability).
    from repro.runtime import binwire

    return binwire


def wal_path(directory: str, generation: int) -> str:
    return os.path.join(directory, f"update-{generation:08d}.wal")


def wal_generations(directory: str) -> list[int]:
    """Generations with a WAL file present, ascending."""
    found = []
    for name in os.listdir(directory):
        if name.startswith("update-") and name.endswith(".wal"):
            try:
                found.append(int(name[len("update-") : -len(".wal")]))
            except ValueError:
                continue
    return sorted(found)


def _frame(payload: bytes) -> bytes:
    return _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class UpdateLog:
    """Writer half: an open, appendable WAL for one checkpoint generation."""

    def __init__(
        self,
        directory: str,
        generation: int,
        fsync_batch: int = 8,
        binary: bool = True,
    ):
        if fsync_batch < 1:
            raise ValueError(f"fsync_batch must be >= 1, got {fsync_batch}")
        self.generation = generation
        self.fsync_batch = fsync_batch
        self.binary = binary
        self.path = wal_path(directory, generation)
        self.appended = 0
        self._since_sync = 0
        self._file = open(self.path, "wb")
        header = {
            "wal": WAL_FORMAT_BINARY if binary else WAL_FORMAT,
            "generation": generation,
        }
        self._file.write(_frame(self._serialize(header)))
        self._file.flush()
        os.fsync(self._file.fileno())

    def _serialize(self, record: dict) -> bytes:
        if self.binary:
            return _binwire().dumps(record)
        return json.dumps(record, separators=(",", ":")).encode("utf-8")

    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Append one record; flushed now, fsynced once per batch."""
        self._file.write(_frame(self._serialize(record)))
        self._file.flush()
        self.appended += 1
        self._since_sync += 1
        if self._since_sync >= self.fsync_batch:
            self.sync()

    def append_notice(self, notice) -> None:
        """Append one delivered :class:`UpdateNotice`."""
        self.append(encode_notice(notice))

    def sync(self) -> None:
        """Force the outstanding batch to stable storage."""
        if self._since_sync:
            os.fsync(self._file.fileno())
            self._since_sync = 0

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            try:
                os.fsync(self._file.fileno())
            except OSError:  # pragma: no cover - closing on teardown
                pass
            self._file.close()

    def __repr__(self) -> str:
        return f"UpdateLog(gen={self.generation}, {self.appended} records)"


def read_update_log(
    path: str, repair: bool = False
) -> tuple[int | None, list[dict], int]:
    """Scan a WAL; returns ``(generation, records, torn_bytes)``.

    ``generation`` is ``None`` when even the header frame is torn (the
    file carries nothing durable).  ``torn_bytes`` counts bytes dropped
    from the tail; with ``repair=True`` the file is truncated back to the
    last complete frame so a subsequent append cannot interleave with
    garbage.
    """
    data = open(path, "rb").read()
    frames: list[bytes] = []
    offset = 0
    while offset < len(data):
        if offset + _FRAME_HEADER.size > len(data):
            break  # torn: header cut short
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        start = offset + _FRAME_HEADER.size
        if start + length > len(data):
            break  # torn: payload cut short
        payload = data[start : start + length]
        if zlib.crc32(payload) != crc:
            raise WalCorruptionError(
                f"{path}: frame {len(frames)} at byte {offset} fails CRC"
                " (complete frame, scrambled payload -- not a torn tail)"
            )
        frames.append(payload)
        offset = start + length
    torn = len(data) - offset
    if torn and repair:
        with open(path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())
    if not frames:
        return None, [], torn
    binwire = _binwire()

    def _deserialize(frame: bytes):
        # Per-frame sniff: JSON and binwire frames may coexist in one log
        # (a process upgraded between restarts appends binary frames to
        # no log it did not itself open, but mixed *logs* in one dir do
        # happen), and decode must accept both regardless of format.
        if binwire.is_binary(frame):
            return binwire.loads(frame)
        return json.loads(frame)

    try:
        header = _deserialize(frames[0])
        generation = int(header["generation"])
        if int(header.get("wal", 0)) not in (WAL_FORMAT, WAL_FORMAT_BINARY):
            raise WalCorruptionError(
                f"{path}: unsupported WAL format {header.get('wal')!r}"
            )
        records = [_deserialize(frame) for frame in frames[1:]]
    except (ValueError, KeyError, TypeError) as exc:
        raise WalCorruptionError(f"{path}: undecodable frame: {exc}") from exc
    return generation, records, torn


__all__ = [
    "UpdateLog",
    "WAL_FORMAT",
    "WAL_FORMAT_BINARY",
    "read_update_log",
    "wal_generations",
    "wal_path",
]
