"""Experiment harness: configuration, wiring, results and reports.

One :class:`~repro.harness.config.ExperimentConfig` fully determines a run
(same config => bit-identical result).  :func:`~repro.harness.runner.run_experiment`
wires workload + sources + warehouse into a simulator, runs to quiescence
and returns a :class:`~repro.harness.results.RunResult` with message
metrics and consistency verdicts.  :mod:`repro.harness.experiments`
contains one module per paper artifact (Table 1, Figure 5, and the
analytical claims S1-S5 plus ablations A1-A2 of DESIGN.md).
"""

from repro.harness.config import ExperimentConfig
from repro.harness.results import RunResult
from repro.harness.runner import build_latency_model, run_experiment
from repro.harness.report import format_table

__all__ = [
    "ExperimentConfig",
    "RunResult",
    "build_latency_model",
    "format_table",
    "run_experiment",
]
