"""Experiment configuration: one frozen dataclass drives one run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.workloads.scenarios import Workload


@dataclass
class ExperimentConfig:
    """Everything that determines a maintenance experiment.

    The defaults describe a small but contention-prone setup: channel
    latency comparable to update inter-arrival times, so sweeps routinely
    race with updates and compensation paths are exercised.
    """

    # -- what runs ------------------------------------------------------
    algorithm: str = "sweep"
    seed: int = 0

    # -- workload -------------------------------------------------------
    n_sources: int = 3
    n_updates: int = 20
    rows_per_relation: int = 20
    match_fraction: float = 0.8
    insert_fraction: float = 0.6
    mean_interarrival: float = 10.0
    interarrival_distribution: str = "exponential"
    txn_fraction: float = 0.0
    txn_max_rows: int = 3
    global_txn_fraction: float = 0.0
    project_keys: bool = True
    #: Pre-built workload overriding all generation knobs above (used to run
    #: several algorithms against the *same* update history).
    workload: Workload | None = None

    # -- environment ----------------------------------------------------
    backend: str = "memory"  # "memory" | "sqlite"
    latency: float = 5.0
    latency_model: str = "uniform"  # "constant" | "uniform" | "exponential"
    query_service_time: float = 0.0
    #: Chaos mode: drop the FIFO guarantee on every channel.  The paper's
    #: algorithms are NOT correct without FIFO; this exists to demonstrate
    #: that the assumption is load-bearing (see tests/test_chaos.py).
    fifo_channels: bool = True

    # -- algorithm options ---------------------------------------------
    sweep_parallel: bool = False
    sweep_merge_queue_updates: bool = True
    nested_max_depth: int | None = None
    pipeline_max_parallel: int = 8
    #: Batched-sweep batch-size cap; 0 drains the whole queue per sweep.
    batch_max: int = 0
    #: Derive the batched-sweep drain cap from observed queue depth and
    #: install lag instead of using ``batch_max`` statically (``batch_max``
    #: then acts as the adaptive controller's ceiling; 0 = unbounded).
    batch_adaptive: bool = False
    #: Size of the maintained view family (sharded runtime); views beyond
    #: the first are selection variants of the generated chain view.
    n_views: int = 1
    #: Query-locality layer: "off" (remote round trips, the paper's
    #: protocol), "aux" (warehouse-local source copies under the row
    #: budget, rest remote), "cache" (delta-patched answer cache), or
    #: "auto" (cover what fits the budget, cache the rest).
    locality: str = "off"
    #: Row budget for the locality layer (0 = unlimited): caps which
    #: sources get auxiliary copies and bounds the answer cache.
    locality_budget_rows: int = 0

    # -- instrumentation --------------------------------------------
    trace: bool = False
    check_consistency: bool = True
    max_check_vectors: int = 20_000
    max_events: int = 2_000_000
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_sources < 1:
            raise ValueError("n_sources must be >= 1")
        if self.n_updates < 0:
            raise ValueError("n_updates must be >= 0")
        if self.backend not in ("memory", "sqlite"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.latency_model not in ("constant", "uniform", "exponential"):
            raise ValueError(f"unknown latency model {self.latency_model!r}")
        if self.latency < 0:
            raise ValueError("latency must be >= 0")
        if self.n_views < 1:
            raise ValueError("n_views must be >= 1")
        if self.locality not in ("off", "aux", "cache", "auto"):
            raise ValueError(f"unknown locality mode {self.locality!r}")
        if self.locality_budget_rows < 0:
            raise ValueError("locality_budget_rows must be >= 0")

    def describe(self) -> str:
        """One-line human-readable summary used in reports."""
        return (
            f"{self.algorithm} n={self.n_sources} updates={self.n_updates}"
            f" seed={self.seed} backend={self.backend}"
            f" lat={self.latency}({self.latency_model})"
            f" ia={self.mean_interarrival}"
        )


__all__ = ["ExperimentConfig"]
