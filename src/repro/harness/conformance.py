"""Protocol conformance under fault injection (``repro conformance``).

The paper's claims are per-algorithm consistency guarantees *given
reliable FIFO channels* (Section 2).  The chaos layer
(:mod:`repro.runtime.chaos`) supplies FIFO channels whose implementation
is under attack -- delayed, duplicated, dropped-and-retransmitted,
blacked out -- so a conformance run asks the only question that matters:
does every registered algorithm still achieve **at least its claimed
consistency level** when the transport misbehaves in every way the
contract permits?

One *case* is (algorithm, fault profile, seed): a seeded randomized
update stream driven through a distributed run with that profile's
faults, then judged by the independent consistency oracle.  A case
passes when

* the achieved (oracle-classified) level is >= the registry's claimed
  level for the algorithm, and
* for batching schedulers, the batch-aware completeness check holds --
  every composite install is a contiguous delivery-order prefix and
  every delivered update is attributed to exactly one install.

:func:`run_matrix` sweeps the full cross product and builds a JSON-able
report (uploaded as a CI artifact by the ``conformance-smoke`` job);
``python -m repro conformance`` is the command-line front end.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Sequence

from repro.consistency.levels import ConsistencyLevel
from repro.harness.config import ExperimentConfig
from repro.harness.report import format_table
from repro.runtime.chaos import PROFILES
from repro.warehouse.locality import SUPPORTED_ALGORITHMS as LOCALITY_ALGORITHMS
from repro.warehouse.registry import ALGORITHMS, algorithm_info

#: Every registered algorithm, in registry order.
DEFAULT_ALGORITHMS: tuple[str, ...] = tuple(ALGORITHMS)

#: The stock sweep: healthy control plus one profile per fault family --
#: transport faults first, then the source-side profiles (stalled and
#: bursty schedules, reorder attempts absorbed by the FIFO session).
DEFAULT_PROFILES: tuple[str, ...] = (
    "healthy", "delay", "dup", "crash", "source-stall", "source-reorder",
)

#: Algorithms whose installs are composite by design: the batch-aware
#: completeness check is a hard gate for them, informational otherwise.
BATCHING_ALGORITHMS: tuple[str, ...] = ("batched-sweep",)

#: Sharded-runtime conformance cases (opt-in via ``--algorithms``): the
#: named scheduler runs over a 4-view family partitioned across 2 shards
#: and every view of every shard must reach the claimed level -- the
#: oracle's verdict is the *minimum* across the whole family.
SHARDED_ALGORITHMS: dict[str, dict] = {
    "sharded-sweep": {
        "algorithm": "sweep",
        "claimed": ConsistencyLevel.COMPLETE,
    },
    "sharded-batched-sweep": {
        "algorithm": "batched-sweep",
        "claimed": ConsistencyLevel.STRONG,
    },
    # Hot-standby deployment: every shard paired with one replica that
    # installs in lockstep.  Standbys are mute on the answer path, so the
    # claimed level is unchanged -- that invariance is what this case pins.
    "sharded-sweep-r1": {
        "algorithm": "sweep",
        "claimed": ConsistencyLevel.COMPLETE,
        "replicas": 1,
    },
}

#: Workload shape for one case.  Small enough that the independent
#: (vector-space) checker runs in exact mode, long enough that the crash
#: profile's blackout windows land inside the run.
CASE_DEFAULTS: dict = {
    "n_sources": 3,
    "n_updates": 12,
    "mean_interarrival": 6.0,
    "time_scale": 0.002,
    "timeout": 120.0,
}

#: Codec pins a conformance case accepts: a single version for the whole
#: fleet, ``auto`` (negotiate freely), or ``mixed`` -- a v3 warehouse
#: against v1-only sources, the handshake-downgrade case.
CODEC_CHOICES: tuple[str, ...] = ("auto", "1", "2", "3", "mixed")


def _codec_configs(codec: str):
    """(warehouse tcp_config, source tcp_config) for one codec pin."""
    from repro.runtime.tcp import TcpChannelConfig

    if codec == "auto":
        return None, None
    if codec == "mixed":
        return (
            TcpChannelConfig(codec_version=3),
            TcpChannelConfig(codec_version=1),
        )
    config = TcpChannelConfig(codec_version=int(codec))
    return config, config


def run_case(
    algorithm: str,
    profile: str,
    seed: int = 0,
    transport: str = "local",
    n_sources: int = CASE_DEFAULTS["n_sources"],
    n_updates: int = CASE_DEFAULTS["n_updates"],
    mean_interarrival: float = CASE_DEFAULTS["mean_interarrival"],
    time_scale: float = CASE_DEFAULTS["time_scale"],
    timeout: float = CASE_DEFAULTS["timeout"],
    locality: str = "off",
    codec: str = "auto",
) -> dict:
    """One (algorithm, profile, seed) conformance case as a flat row dict."""
    from repro.runtime import run_distributed

    if profile not in PROFILES:
        raise KeyError(
            f"unknown chaos profile {profile!r}; available: {sorted(PROFILES)}"
        )
    if codec not in CODEC_CHOICES:
        raise ValueError(
            f"unknown codec pin {codec!r}; available: {CODEC_CHOICES}"
        )
    if codec == "mixed" and algorithm in SHARDED_ALGORITHMS:
        raise ValueError(
            "mixed-version fleets are a distributed (non-sharded) case;"
            f" {algorithm!r} cannot pin per-side codecs"
        )
    if algorithm in SHARDED_ALGORITHMS:
        claimed = SHARDED_ALGORITHMS[algorithm]["claimed"]
    else:
        claimed = algorithm_info(algorithm).claimed_consistency
    row = {
        "algorithm": algorithm,
        "profile": profile,
        "seed": seed,
        "transport": transport,
        "locality": locality,
        "codec": codec,
        "claimed": claimed.name.lower(),
        "achieved": None,
        "ok": False,
        "installs": 0,
        "updates": 0,
        "faults": 0,
        "batched_ok": None,
        "mean_staleness": None,
        "wall_seconds": 0.0,
        "error": "",
    }
    if algorithm in SHARDED_ALGORITHMS:
        return _run_sharded_case(
            row,
            SHARDED_ALGORITHMS[algorithm],
            claimed,
            profile=profile,
            seed=seed,
            transport=transport,
            n_sources=n_sources,
            n_updates=n_updates,
            mean_interarrival=mean_interarrival,
            time_scale=time_scale,
            timeout=timeout,
            locality=locality,
            codec=codec,
        )
    config = ExperimentConfig(
        algorithm=algorithm,
        n_sources=n_sources,
        n_updates=n_updates,
        seed=seed,
        mean_interarrival=mean_interarrival,
        check_consistency=True,
        locality=locality,
    )
    tcp_config, source_tcp_config = _codec_configs(codec)
    try:
        result = run_distributed(
            config,
            transport=transport,
            time_scale=time_scale,
            timeout=timeout,
            chaos=profile,
            tcp_config=tcp_config,
            source_tcp_config=source_tcp_config,
        )
    except Exception as exc:  # noqa: BLE001 -- a crash is a conformance verdict
        row["error"] = f"{type(exc).__name__}: {exc}"
        return row
    achieved = result.classified_level or ConsistencyLevel.NONE
    batched = result.recorder.check_batched()
    row.update(
        achieved=achieved.name.lower(),
        installs=result.installs,
        updates=result.updates_delivered,
        faults=(
            result.chaos_stats.faults_injected
            if result.chaos_stats is not None
            else 0
        ),
        batched_ok=batched.ok,
        mean_staleness=(
            round(result.mean_per_update_staleness, 3)
            if result.mean_per_update_staleness is not None
            else None
        ),
        wall_seconds=round(result.wall_seconds, 3),
    )
    ok = achieved >= claimed
    if algorithm in BATCHING_ALGORITHMS and not batched.ok:
        ok = False
        row["error"] = f"batched check: {batched.detail}"
    elif not ok:
        row["error"] = f"achieved {achieved.name.lower()} < claimed"
    row["ok"] = ok
    return row


def _run_sharded_case(
    row: dict,
    spec: dict,
    claimed: ConsistencyLevel,
    profile: str,
    seed: int,
    transport: str,
    n_sources: int,
    n_updates: int,
    mean_interarrival: float,
    time_scale: float,
    timeout: float,
    locality: str = "off",
    codec: str = "auto",
) -> dict:
    """Fill ``row`` from one sharded-runtime conformance run.

    A 4-view family over 2 shards (round-robin so both shards are
    exercised regardless of the hash layout); ``achieved`` is the weakest
    per-view oracle verdict, so one stale view on one shard fails the
    whole case.
    """
    from repro.runtime import run_sharded

    config = ExperimentConfig(
        algorithm=spec["algorithm"],
        n_sources=n_sources,
        n_updates=n_updates,
        seed=seed,
        mean_interarrival=mean_interarrival,
        n_views=4,
        check_consistency=True,
        locality=locality,
    )
    tcp_config, _ = _codec_configs(codec)
    try:
        result = run_sharded(
            config,
            n_shards=2,
            transport=transport,
            time_scale=time_scale,
            timeout=timeout,
            chaos=profile,
            tcp_config=tcp_config,
            strategy="round-robin",
            replicas=spec.get("replicas", 0),
        )
    except Exception as exc:  # noqa: BLE001 -- a crash is a conformance verdict
        row["error"] = f"{type(exc).__name__}: {exc}"
        return row
    achieved = result.min_level()
    batched_checks = None
    if spec["algorithm"] in BATCHING_ALGORITHMS:
        batched_checks = [
            recorder.check_batched() for recorder in result.recorders.values()
        ]
    row.update(
        achieved=achieved.name.lower(),
        installs=result.installs,
        updates=result.updates_total,
        faults=(
            result.chaos_stats.faults_injected
            if result.chaos_stats is not None
            else 0
        ),
        batched_ok=(
            all(check.ok for check in batched_checks)
            if batched_checks is not None
            else None
        ),
        wall_seconds=round(result.wall_seconds, 3),
    )
    ok = achieved >= claimed
    if batched_checks is not None and not all(c.ok for c in batched_checks):
        ok = False
        bad = next(check for check in batched_checks if not check.ok)
        row["error"] = f"batched check: {bad.detail}"
    elif not ok:
        row["error"] = f"achieved {achieved.name.lower()} < claimed"
    row["ok"] = ok
    return row


def run_matrix(
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    profiles: Sequence[str] = DEFAULT_PROFILES,
    seeds: Sequence[int] = (0,),
    transport: str = "local",
    localities: Sequence[str] = ("off",),
    codec: str = "auto",
    progress=None,
    **case_kwargs,
) -> dict:
    """The full cross product; ``progress`` (if given) is called per row.

    Locality modes beyond ``off`` only apply to the sweep-family
    schedulers (see :data:`repro.warehouse.locality.SUPPORTED_ALGORITHMS`);
    unsupported (algorithm, locality) combinations are skipped, not
    failed.  The same applies to ``codec="mixed"`` and the sharded
    cases, which cannot pin per-side codec versions.
    """
    rows = []
    for algorithm in algorithms:
        base = SHARDED_ALGORITHMS.get(algorithm, {}).get("algorithm", algorithm)
        if codec == "mixed" and algorithm in SHARDED_ALGORITHMS:
            continue
        for locality in localities:
            if locality != "off" and base not in LOCALITY_ALGORITHMS:
                continue
            for profile in profiles:
                for seed in seeds:
                    row = run_case(
                        algorithm,
                        profile,
                        seed,
                        transport=transport,
                        locality=locality,
                        codec=codec,
                        **case_kwargs,
                    )
                    rows.append(row)
                    if progress is not None:
                        progress(row)
    return build_report(rows, transport=transport)


def build_report(rows: list[dict], transport: str = "local") -> dict:
    """The JSON document shape written to ``conformance_report.json``."""
    failed = [r for r in rows if not r["ok"]]
    return {
        "suite": "conformance",
        "python": platform.python_version(),
        "transport": transport,
        "cases": len(rows),
        "failed": len(failed),
        "ok": not failed,
        "rows": rows,
    }


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def load_report(path: str | Path) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def format_report(report: dict) -> str:
    """Human-readable verdict table for one conformance report."""
    rows = report["rows"]
    table = format_table(
        ["algorithm", "profile", "seed", "locality", "codec", "claimed",
         "achieved", "faults", "installs", "stale", "batched", "verdict"],
        [
            [
                row["algorithm"],
                row["profile"],
                row["seed"],
                row.get("locality", "off"),
                row.get("codec", "auto"),
                row["claimed"],
                row["achieved"] or "-",
                row["faults"],
                row["installs"],
                row["mean_staleness"] if row["mean_staleness"] is not None else "-",
                {True: "ok", False: "FAIL", None: "-"}[row["batched_ok"]],
                "PASS" if row["ok"] else f"FAIL ({row['error']})",
            ]
            for row in rows
        ],
        title=f"Protocol conformance under fault injection"
        f" ({report['transport']} transport)",
    )
    verdict = (
        "all cases conform"
        if report["ok"]
        else f"{report['failed']}/{report['cases']} cases FAILED"
    )
    return f"{table}\n\n{verdict}"


__all__ = [
    "BATCHING_ALGORITHMS",
    "CASE_DEFAULTS",
    "CODEC_CHOICES",
    "DEFAULT_ALGORITHMS",
    "DEFAULT_PROFILES",
    "SHARDED_ALGORITHMS",
    "build_report",
    "format_report",
    "load_report",
    "run_case",
    "run_matrix",
    "write_report",
]
