"""One module per reproduced paper artifact (see DESIGN.md Section 4).

===============  ======================================================
``table1``       Table 1 -- measured algorithm comparison
``fig5``         Figure 5 -- the Section 5.2 trajectory under SWEEP
``scaling``      S1 -- messages per update vs number of sources
``concurrency``  S2 -- messages per update vs update rate (compensation)
``staleness``    S3 -- view staleness under sustained updates
``amortization`` S4 -- Nested SWEEP's message amortization over bursts
``messagesize``  S5 -- ECA compensating-query payload growth
``ablation``     A1/A2 -- SWEEP variants and Nested SWEEP depth caps
===============  ======================================================

Every module exposes ``run_*`` returning plain row dicts plus a
``format_*`` renderer, and is runnable as a script
(``python -m repro.harness.experiments.table1``).
"""
