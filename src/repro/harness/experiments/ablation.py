"""Ablations A1/A2: the Section 5.3 optimizations and the Section 6.2 guard.

* **A1 -- SWEEP variants.**  Parallel left/right sweeps halve the critical
  path (Section 5.3's first optimization); merging queued updates into one
  compensation term (the second) changes bookkeeping but not messages.
  Correctness is identical across variants -- measured here alongside the
  install-latency win.
* **A2 -- Nested SWEEP termination.**  Under the alternating-interference
  adversary, unbounded recursion absorbs every new update and never
  refreshes the view until the stream breaks; a depth cap trades messages
  for continuous installs (depth 0 degenerates to SWEEP).
"""

from __future__ import annotations

from repro.harness.config import ExperimentConfig
from repro.harness.report import format_dict_table
from repro.harness.runner import run_experiment
from repro.simulation.rng import RngRegistry
from repro.workloads.scenarios import alternating_interference_workload


def run_sweep_variants(
    seed: int = 6, n_sources: int = 6, n_updates: int = 18
) -> list[dict]:
    """A1: sequential vs parallel sweeps, merged vs per-update compensation."""
    variants = (
        ("sequential", "sweep", {}),
        ("parallel", "sweep", {"sweep_parallel": True}),
        ("unmerged-compensation", "sweep", {"sweep_merge_queue_updates": False}),
        ("pipelined", "pipelined-sweep", {}),
    )
    rows = []
    for label, algorithm, overrides in variants:
        result = run_experiment(
            ExperimentConfig(
                algorithm=algorithm,
                seed=seed,
                n_sources=n_sources,
                n_updates=n_updates,
                rows_per_relation=8,
                match_fraction=1.0,
                insert_fraction=0.5,
                mean_interarrival=2.0,
                latency=6.0,
                latency_model="uniform",
                **overrides,
            )
        )
        rows.append(
            {
                "variant": label,
                "consistency": result.classified_level.name.lower(),
                "queries_per_update": result.queries_per_update,
                "mean_install_lag": result.mean_install_delay or 0.0,
                "compensations": result.metrics.counters.get("compensations", 0),
            }
        )
    return rows


def format_sweep_variants(rows: list[dict]) -> str:
    return format_dict_table(
        rows,
        columns=[
            "variant",
            "consistency",
            "queries_per_update",
            "mean_install_lag",
            "compensations",
        ],
        title="A1: SWEEP variants (Section 5.3 optimizations)",
    )


def run_nested_depth(
    depths: tuple[int | None, ...] = (None, 2, 1, 0),
    seed: int = 0,
    n_sources: int = 3,
    n_rounds: int = 8,
) -> list[dict]:
    """A2: Nested SWEEP depth caps under alternating interference."""
    rng = RngRegistry(seed).stream("ablation-adversary")
    workload = alternating_interference_workload(
        n_sources, rng, n_rounds=n_rounds, spacing=0.5
    )
    rows = []
    for depth in depths:
        result = run_experiment(
            ExperimentConfig(
                algorithm="nested-sweep",
                seed=seed,
                workload=workload,
                n_sources=n_sources,
                latency=10.0,
                latency_model="constant",
                nested_max_depth=depth,
            )
        )
        rows.append(
            {
                "max_depth": "unbounded" if depth is None else depth,
                "consistency": result.classified_level.name.lower(),
                "installs": result.installs,
                "queries_total": result.queries_sent,
                "depth_limit_hits": result.warehouse.max_depth_hits,
                "first_install_at": (
                    result.recorder.snapshots.snapshots[0].time
                    if result.installs
                    else float("nan")
                ),
            }
        )
    return rows


def format_nested_depth(rows: list[dict]) -> str:
    return format_dict_table(
        rows,
        columns=[
            "max_depth",
            "consistency",
            "installs",
            "queries_total",
            "depth_limit_hits",
            "first_install_at",
        ],
        title="A2: Nested SWEEP termination guard under alternating interference",
    )


def main() -> None:  # pragma: no cover
    print(format_sweep_variants(run_sweep_variants()))
    print()
    print(format_nested_depth(run_nested_depth()))


if __name__ == "__main__":  # pragma: no cover
    main()
