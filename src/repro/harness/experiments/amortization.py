"""Experiment S4: Nested SWEEP amortizes messages over concurrent updates.

Section 6.2: "if there are multiple updates, Nested SWEEP constructs the
view change collectively for all the updates.  Thus the message cost is
amortized."  Sweeping the burstiness (inter-arrival time) shows the
amortization factor: SWEEP's cost stays at 2(n-1) per update while Nested
SWEEP's per-update cost falls as more updates are absorbed per sweep.
"""

from __future__ import annotations

from repro.harness.config import ExperimentConfig
from repro.harness.report import format_dict_table
from repro.harness.runner import run_experiment

DEFAULT_INTERARRIVALS = (30.0, 8.0, 3.0, 1.0, 0.3)


def run_amortization(
    interarrivals: tuple[float, ...] = DEFAULT_INTERARRIVALS,
    n_sources: int = 5,
    n_updates: int = 24,
    seed: int = 2,
) -> list[dict]:
    rows = []
    for ia in interarrivals:
        for algorithm in ("sweep", "nested-sweep"):
            result = run_experiment(
                ExperimentConfig(
                    algorithm=algorithm,
                    seed=seed,
                    n_sources=n_sources,
                    n_updates=n_updates,
                    rows_per_relation=8,
                    match_fraction=1.0,
                    insert_fraction=0.5,
                    mean_interarrival=ia,
                    latency=6.0,
                    latency_model="uniform",
                    check_consistency=False,
                )
            )
            updates = max(1, result.updates_delivered)
            rows.append(
                {
                    "interarrival": ia,
                    "algorithm": algorithm,
                    "queries_per_update": result.queries_per_update,
                    "installs": result.installs,
                    "updates_per_install": updates / max(1, result.installs),
                }
            )
    return rows


def format_amortization(rows: list[dict]) -> str:
    return format_dict_table(
        rows,
        columns=[
            "interarrival",
            "algorithm",
            "queries_per_update",
            "installs",
            "updates_per_install",
        ],
        title="S4: Nested SWEEP message amortization over concurrent updates",
    )


def main() -> None:  # pragma: no cover
    print(format_amortization(run_amortization()))


if __name__ == "__main__":  # pragma: no cover
    main()
