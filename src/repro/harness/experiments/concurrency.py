"""Experiment S2: message cost vs concurrency (the compensation gap).

Section 3's analysis: as more updates interfere with each in-flight query
(higher K), C-Strobe must send cascading compensating queries, while SWEEP
compensates locally and its message count does not move at all.  The
update inter-arrival time sweeps the concurrency level at fixed latency.
"""

from __future__ import annotations

from repro.harness.config import ExperimentConfig
from repro.harness.report import format_dict_table
from repro.harness.runner import run_experiment

DEFAULT_INTERARRIVALS = (8.0, 4.0, 2.0, 1.0, 0.5)
DEFAULT_ALGORITHMS = ("sweep", "c-strobe")


def run_concurrency(
    interarrivals: tuple[float, ...] = DEFAULT_INTERARRIVALS,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    n_sources: int = 5,
    n_updates: int = 20,
    seed: int = 5,
) -> list[dict]:
    rows = []
    for ia in interarrivals:
        for algorithm in algorithms:
            result = run_experiment(
                ExperimentConfig(
                    algorithm=algorithm,
                    seed=seed,
                    n_sources=n_sources,
                    n_updates=n_updates,
                    rows_per_relation=8,
                    match_fraction=1.0,
                    insert_fraction=0.5,
                    mean_interarrival=ia,
                    latency=6.0,
                    latency_model="uniform",
                    check_consistency=False,
                )
            )
            counters = result.metrics.counters
            rows.append(
                {
                    "interarrival": ia,
                    "algorithm": algorithm,
                    "queries_per_update": result.queries_per_update,
                    "msgs_per_update": result.messages_per_update,
                    "local_compensations": counters.get("compensations", 0),
                    "remote_comp_queries": counters.get(
                        "cstrobe_compensating_queries", 0
                    ),
                }
            )
    return rows


def format_concurrency(rows: list[dict]) -> str:
    return format_dict_table(
        rows,
        columns=[
            "interarrival",
            "algorithm",
            "queries_per_update",
            "msgs_per_update",
            "local_compensations",
            "remote_comp_queries",
        ],
        title="S2: message cost vs concurrency (local vs remote compensation)",
    )


def main() -> None:  # pragma: no cover
    print(format_concurrency(run_concurrency()))


if __name__ == "__main__":  # pragma: no cover
    main()
