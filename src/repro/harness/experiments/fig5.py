"""Experiment F5: the Figure 5 trajectory, step by step, under SWEEP.

Runs the exact Section 5.2 scenario with the three updates racing each
other's sweeps (commit spacing far below the sweep round-trip) and checks
that the warehouse still installs every intermediate state of Figure 5 in
order -- the paper's demonstration of complete consistency.
"""

from __future__ import annotations

from repro.harness.config import ExperimentConfig
from repro.harness.report import format_dict_table
from repro.harness.runner import run_experiment
from repro.workloads.paper_example import (
    PAPER_EXPECTED_TRAJECTORY,
    paper_example_states,
    paper_example_updates,
    paper_example_view,
)
from repro.workloads.scenarios import Workload

EVENTS = (
    "initial state",
    "Delta-R2 = +(3,5)",
    "Delta-R3 = -(7,8)",
    "Delta-R1 = -(2,3)",
)


def _render(state: dict) -> str:
    return (
        "{" + ", ".join(f"{row}[{c}]" for row, c in sorted(state.items())) + "}"
        if state
        else "{}"
    )


def run_fig5(
    algorithm: str = "sweep", spacing: float = 0.5, seed: int = 0
) -> list[dict]:
    """Replay Figure 5; returns one row per event with expected/measured."""
    workload = Workload(
        view=paper_example_view(),
        initial_states=paper_example_states(),
        schedules=paper_example_updates(spacing=spacing),
        description="Figure 5 example",
    )
    result = run_experiment(
        ExperimentConfig(
            algorithm=algorithm,
            seed=seed,
            workload=workload,
            n_sources=3,
            latency=5.0,
            latency_model="constant",
        )
    )
    measured = [result.recorder.snapshots.initial.as_dict()] + [
        snap.view.as_dict() for snap in result.recorder.snapshots
    ]
    rows = []
    for step, event in enumerate(EVENTS):
        expected = dict(PAPER_EXPECTED_TRAJECTORY[step])
        got = measured[step] if step < len(measured) else None
        rows.append(
            {
                "step": step,
                "event": event,
                "expected_view": _render(expected),
                "measured_view": _render(got) if got is not None else "(missing)",
                "match": "yes" if got == expected else "NO",
            }
        )
    return rows


def format_fig5(rows: list[dict]) -> str:
    return format_dict_table(
        rows,
        columns=["step", "event", "expected_view", "measured_view", "match"],
        title="Figure 5 (measured): SWEEP under three concurrent updates",
    )


def main() -> None:  # pragma: no cover
    print(format_fig5(run_fig5()))


if __name__ == "__main__":  # pragma: no cover
    main()
