"""Experiment S5: ECA's compensating-query payload growth.

Section 3 (and Table 1): "In ECA the size of query messages is quadratic
in the number of interfering updates."  At a single site, each new update's
query subtracts interaction terms with every still-pending query, so
payload size grows with the number of in-flight queries -- which rises as
inter-arrival time falls relative to the query round-trip.  SWEEP's query
payloads (the partial Delta-V) are shown alongside for contrast.
"""

from __future__ import annotations

from repro.harness.config import ExperimentConfig
from repro.harness.report import format_dict_table
from repro.harness.runner import run_experiment

DEFAULT_INTERARRIVALS = (50.0, 10.0, 4.0, 2.0, 1.0, 0.5)


def run_messagesize(
    interarrivals: tuple[float, ...] = DEFAULT_INTERARRIVALS,
    n_sources: int = 3,
    n_updates: int = 24,
    seed: int = 4,
) -> list[dict]:
    rows = []
    for ia in interarrivals:
        for algorithm in ("eca", "sweep"):
            result = run_experiment(
                ExperimentConfig(
                    algorithm=algorithm,
                    seed=seed,
                    n_sources=n_sources,
                    n_updates=n_updates,
                    rows_per_relation=8,
                    match_fraction=1.0,
                    insert_fraction=0.5,
                    mean_interarrival=ia,
                    latency=8.0,
                    latency_model="constant",
                    check_consistency=False,
                )
            )
            queries = max(1, result.queries_sent)
            metrics = result.metrics
            rows.append(
                {
                    "interarrival": ia,
                    "algorithm": algorithm,
                    "mean_query_rows": result.query_rows_sent / queries,
                    "max_query_terms": metrics.max_observation("eca_query_terms")
                    or 1,
                    "mean_query_terms": metrics.mean_observation(
                        "eca_query_terms"
                    )
                    or 1,
                    "total_query_rows": result.query_rows_sent,
                }
            )
    return rows


def format_messagesize(rows: list[dict]) -> str:
    return format_dict_table(
        rows,
        columns=[
            "interarrival",
            "algorithm",
            "mean_query_rows",
            "mean_query_terms",
            "max_query_terms",
            "total_query_rows",
        ],
        title="S5: ECA compensating-query size vs concurrency",
    )


def main() -> None:  # pragma: no cover
    print(format_messagesize(run_messagesize()))


if __name__ == "__main__":  # pragma: no cover
    main()
