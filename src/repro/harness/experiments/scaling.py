"""Experiment S1: messages per update vs number of sources.

The paper's Section 5.3 claim: SWEEP needs a number of messages *linear* in
``n`` per update even under concurrency (exactly ``2(n-1)``), while
C-Strobe's remote compensation cascades and grows much faster.  Each point
runs the same style of contention-prone workload at a different chain
length.
"""

from __future__ import annotations

from repro.harness.config import ExperimentConfig
from repro.harness.report import format_dict_table
from repro.harness.runner import run_experiment

DEFAULT_SOURCES = (2, 3, 4, 6, 8, 10)
DEFAULT_ALGORITHMS = ("sweep", "nested-sweep", "c-strobe")


def run_scaling(
    sources: tuple[int, ...] = DEFAULT_SOURCES,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    n_updates: int = 16,
    seed: int = 11,
) -> list[dict]:
    """One row per (algorithm, n): measured message costs."""
    rows = []
    for n in sources:
        for algorithm in algorithms:
            result = run_experiment(
                ExperimentConfig(
                    algorithm=algorithm,
                    seed=seed,
                    n_sources=n,
                    n_updates=n_updates,
                    rows_per_relation=8,
                    match_fraction=1.0,
                    insert_fraction=0.5,
                    mean_interarrival=1.5,
                    latency=6.0,
                    latency_model="uniform",
                    check_consistency=False,  # cost sweep, not a correctness run
                )
            )
            rows.append(
                {
                    "n_sources": n,
                    "algorithm": algorithm,
                    "queries_per_update": result.queries_per_update,
                    "msgs_per_update": result.messages_per_update,
                    "sweep_bound_2(n-1)": 2 * (n - 1),
                    "installs": result.installs,
                }
            )
    return rows


def format_scaling(rows: list[dict]) -> str:
    return format_dict_table(
        rows,
        columns=[
            "n_sources",
            "algorithm",
            "queries_per_update",
            "msgs_per_update",
            "sweep_bound_2(n-1)",
            "installs",
        ],
        title="S1: message cost vs number of sources (Section 5.3 claim)",
    )


def main() -> None:  # pragma: no cover
    print(format_scaling(run_scaling()))


if __name__ == "__main__":  # pragma: no cover
    main()
