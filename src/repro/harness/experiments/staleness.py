"""Experiment S3: view staleness under a sustained update stream.

The paper's critique of Strobe (Sections 3 and 5.3): it installs only at
quiescence, so while updates keep arriving the materialized view *trails*
the sources -- potentially forever.  SWEEP installs continuously.  The
metric here is the fraction of updates whose effects were visible before
the stream ended, plus the mean delivery-to-install lag.
"""

from __future__ import annotations

from repro.harness.config import ExperimentConfig
from repro.harness.report import format_dict_table
from repro.harness.runner import run_experiment

DEFAULT_INTERARRIVALS = (20.0, 5.0, 2.0, 1.0)
DEFAULT_ALGORITHMS = ("sweep", "nested-sweep", "strobe", "eca")


def run_staleness(
    interarrivals: tuple[float, ...] = DEFAULT_INTERARRIVALS,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
    n_sources: int = 4,
    n_updates: int = 30,
    seed: int = 3,
) -> list[dict]:
    rows = []
    for ia in interarrivals:
        for algorithm in algorithms:
            result = run_experiment(
                ExperimentConfig(
                    algorithm=algorithm,
                    seed=seed,
                    n_sources=n_sources,
                    n_updates=n_updates,
                    rows_per_relation=8,
                    match_fraction=1.0,
                    insert_fraction=0.5,
                    mean_interarrival=ia,
                    latency=6.0,
                    latency_model="uniform",
                    check_consistency=False,
                )
            )
            last_delivery = max(
                (n.delivered_at for n in result.recorder.deliveries), default=0.0
            )
            installs_during_stream = sum(
                1
                for snap in result.recorder.snapshots
                if snap.time <= last_delivery
            )
            rows.append(
                {
                    "interarrival": ia,
                    "algorithm": algorithm,
                    "installs": result.installs,
                    "installs_during_stream": installs_during_stream,
                    "mean_install_lag": result.mean_install_delay or 0.0,
                    "max_install_lag": result.metrics.max_observation(
                        "install_delay"
                    )
                    or 0.0,
                    # what a reader experiences: delivered-but-invisible
                    # updates, averaged over the run
                    "mean_unreflected": result.mean_unreflected_updates(),
                }
            )
    return rows


def format_staleness(rows: list[dict]) -> str:
    return format_dict_table(
        rows,
        columns=[
            "interarrival",
            "algorithm",
            "installs",
            "installs_during_stream",
            "mean_install_lag",
            "max_install_lag",
            "mean_unreflected",
        ],
        title="S3: staleness under sustained updates (quiescence requirement)",
    )


def main() -> None:  # pragma: no cover
    print(format_staleness(run_staleness()))


if __name__ == "__main__":  # pragma: no cover
    main()
