"""Experiment T1: regenerate Table 1 with *measured* values.

Every algorithm runs against the **same** update history (a shared
workload object): a contention-prone chain of 4 sources where channel
latency exceeds update inter-arrival, so compensation paths are active.
The paper's static claims (architecture, consistency, message cost,
quiescence) become measured columns:

* consistency -- the oracle's classification of the installed states;
* msgs/update -- protocol messages (queries + answers) per update;
* quiescent installs -- whether installs collapse to quiescent points
  (installs < updates while the view still converges).
"""

from __future__ import annotations

from repro.harness.config import ExperimentConfig
from repro.harness.report import format_dict_table
from repro.harness.results import RunResult
from repro.harness.runner import run_experiment
from repro.simulation.rng import RngRegistry
from repro.warehouse.registry import ALGORITHMS
from repro.workloads.scenarios import make_workload
from repro.workloads.stream import UpdateStreamConfig

#: Algorithms in the paper's Table 1, in the paper's row order.
TABLE1_ALGORITHMS = ("eca", "strobe", "c-strobe", "sweep", "nested-sweep")

COLUMNS = (
    "algorithm",
    "architecture",
    "claimed",
    "measured_consistency",
    "claimed_cost",
    "msgs_per_update",
    "query_rows_per_update",
    "installs",
    "updates",
    "comments",
)


def shared_workload(seed: int, n_sources: int, n_updates: int):
    """One update history reused by every algorithm for fairness."""
    rng = RngRegistry(seed).stream("table1-workload")
    return make_workload(
        n_sources,
        rng,
        rows_per_relation=10,
        match_fraction=1.0,
        stream=UpdateStreamConfig(
            n_updates=n_updates,
            mean_interarrival=1.0,
            insert_fraction=0.5,
        ),
    )


def run_one(algorithm: str, workload, seed: int) -> RunResult:
    """Run one Table 1 cell."""
    return run_experiment(
        ExperimentConfig(
            algorithm=algorithm,
            seed=seed,
            workload=workload,
            n_sources=workload.view.n_relations,
            latency=8.0,
            latency_model="uniform",
        )
    )


def result_row(result: RunResult) -> dict:
    """Flatten a run into a Table 1 row."""
    info = ALGORITHMS[result.info.name]
    updates = max(1, result.updates_delivered)
    return {
        "algorithm": info.name,
        "architecture": info.architecture,
        "claimed": info.claimed_consistency.name.lower(),
        "measured_consistency": (
            result.classified_level.name.lower()
            if result.classified_level is not None
            else "unchecked"
        ),
        "claimed_cost": info.message_cost,
        "msgs_per_update": result.messages_per_update,
        "query_rows_per_update": result.query_rows_sent / updates,
        "installs": result.installs,
        "updates": result.updates_delivered,
        "comments": info.comments,
    }


def run_table1(
    seed: int = 7,
    n_sources: int = 4,
    n_updates: int = 24,
    include_baselines: bool = False,
) -> list[dict]:
    """Run every Table 1 algorithm on the shared workload."""
    workload = shared_workload(seed, n_sources, n_updates)
    names = list(TABLE1_ALGORITHMS)
    if include_baselines:
        names += ["convergent", "recompute"]
    return [result_row(run_one(name, workload, seed)) for name in names]


def format_table1(rows: list[dict]) -> str:
    """Paper-style rendering of the measured Table 1."""
    return format_dict_table(
        rows,
        columns=list(COLUMNS),
        title="Table 1 (measured): comparison of view maintenance algorithms",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table1(run_table1(include_baselines=True)))


if __name__ == "__main__":  # pragma: no cover
    main()
