"""Failover equivalence: kill a primary mid-protocol, promote, compare.

Hot-standby correctness is an *equivalence* claim: a run that loses a
shard's primary at an arbitrary protocol point and hands the shard to
its standby must be observably identical to a run that never crashed.
Every case in this harness tests exactly that, over the sharded runtime
(4-view family, 2 shards, round-robin so both shards host work):

1. **baseline** -- ``replicas=0``, no failure: the reference final views
   and the consistency level an unperturbed run classifies at.
2. **failover** -- ``replicas=1`` with a deterministic
   :class:`~repro.runtime.shard.FailoverSpec` that kills the chosen
   shard's primary inside its own protocol frame: *mid-batch* (after the
   N-th install, so a composite batch is split by the death),
   *mid-compensation* (after the N-th delivery, between a sweep's query
   and its answer), or *mid-query* (right after the N-th query left for
   a source, so the answer arrives addressed to a dead member and is
   dropped -- the harness's observable equivalent of epoch fencing).

A case passes only if the failover run (a) actually promoted (a kill
switch that never fires is a configuration error, not a pass), (b)
reaches at least the scheduler's claimed consistency level on *every*
view under the promoted member's own delivery order -- the oracle's
bag-semantics check doubles as the no-lost/no-double-installed-update
check, since a dropped or duplicated delta leaves the view observably
wrong -- (c) delivers exactly the baseline's update count (no frame of
the duplicated fan-out was lost or double-counted across the
promotion), and (d) every final view is **byte-equal**
(:func:`~repro.warehouse.sharding.canonical_view_bytes`) to the
uncrashed baseline's.

:func:`run_failover_sweep` drives the default 30-seed matrix: kill
points rotate per seed, schedulers alternate, and every ``tcp_every``-th
seed runs over loopback TCP so listener sessions and per-member channel
naming are exercised.  :func:`promotion_smoke` is the multiprocess
variant -- a real ``SIGKILL`` against the primary ``serve-shard``
process, with the supervisor expected to detect the death and promote
the standby within :data:`DETECTION_BUDGET` seconds instead of failing
or restarting the fleet.
"""

from __future__ import annotations

import json
import signal
import time as _time
from pathlib import Path
from typing import Sequence

from repro.harness.config import ExperimentConfig
from repro.harness.report import format_table
from repro.runtime.shard import CLAIMED_LEVELS, FailoverSpec
from repro.warehouse.sharding import canonical_view_bytes

#: Workload shared by every case (kept small: each case runs it twice).
CASE_DEFAULTS = dict(
    n_sources=3,
    n_updates=12,
    mean_interarrival=6.0,
)
N_VIEWS = 4
N_SHARDS = 2

#: Schedulers under test (the sharded runtime's two claimants).
ALGORITHMS = ("sweep", "batched-sweep")

#: Protocol points a primary can die at; seeds rotate through all three.
KILL_POINTS = ("mid-batch", "mid-compensation", "mid-query")

#: Wall seconds the supervisor gets to notice a SIGKILLed primary and
#: promote its standby (the poll interval is 0.2s; the budget leaves
#: slack for a loaded CI host).
DETECTION_BUDGET = 5.0


def failover_spec(seed: int, shard: int) -> FailoverSpec:
    """The deterministic kill for a seed: point and threshold both vary.

    Thresholds are kept small enough that every kill point fires before
    the 12-update workload drains on either scheduler (batched-sweep
    compresses installs and queries, so those counts stay low).
    """
    point = KILL_POINTS[seed % len(KILL_POINTS)]
    if point == "mid-batch":
        return FailoverSpec(shard=shard, after_installs=1 + (seed // 3) % 3)
    if point == "mid-compensation":
        return FailoverSpec(shard=shard, after_deliveries=2 + (seed // 3) % 5)
    return FailoverSpec(shard=shard, after_queries=1 + (seed // 3) % 3)


def kill_point(seed: int) -> str:
    return KILL_POINTS[seed % len(KILL_POINTS)]


def run_failover_case(
    algorithm: str,
    seed: int,
    transport: str = "local",
    time_scale: float = 0.002,
    timeout: float = 120.0,
) -> dict:
    """One baseline/failover pair; returns a flat report row."""
    from repro.runtime import run_sharded

    config = ExperimentConfig(
        algorithm=algorithm,
        seed=seed,
        n_views=N_VIEWS,
        **CASE_DEFAULTS,
    )
    claimed = CLAIMED_LEVELS[algorithm]
    row = {
        "algorithm": algorithm,
        "transport": transport,
        "seed": seed,
        "kill_point": kill_point(seed),
        "kill_shard": None,
        "kill_spec": {},
        "claimed": claimed.name.lower(),
        "ok": False,
        "promoted": "",
        "achieved": "none",
        "views_equal": False,
        "deliveries_equal": False,
        "wall_seconds": 0.0,
        "error": "",
    }
    common = dict(
        n_shards=N_SHARDS,
        time_scale=time_scale,
        timeout=timeout,
        strategy="round-robin",
    )
    started = _time.perf_counter()
    try:
        baseline = run_sharded(config, transport="local", **common)
        expected = {
            name: canonical_view_bytes(view)
            for name, view in baseline.final_views.items()
        }
        active = baseline.plan.active_shards
        shard = active[seed % len(active)]
        spec = failover_spec(seed, shard)
        row["kill_shard"] = shard
        row["kill_spec"] = {
            k: v
            for k, v in (
                ("after_installs", spec.after_installs),
                ("after_deliveries", spec.after_deliveries),
                ("after_queries", spec.after_queries),
            )
            if v is not None
        }
        result = run_sharded(
            config,
            transport=transport,
            replicas=1,
            failover=spec,
            **common,
        )
        row["promoted"] = (result.promotions or {}).get(shard, "")
        achieved = result.min_level()
        row["achieved"] = achieved.name.lower()
        row["deliveries_equal"] = (
            result.deliveries_total == baseline.deliveries_total
        )
        mismatched = sorted(
            name
            for name, view in result.final_views.items()
            if canonical_view_bytes(view) != expected.get(name)
        )
        row["views_equal"] = not mismatched
        if not row["promoted"]:
            row["error"] = "primary died but no standby was promoted"
        elif achieved < claimed:
            row["error"] = f"achieved {achieved.name.lower()} < claimed"
        elif not row["deliveries_equal"]:
            row["error"] = (
                f"promoted run delivered {result.deliveries_total}"
                f" updates, baseline {baseline.deliveries_total}"
            )
        elif mismatched:
            row["error"] = (
                f"view(s) {', '.join(mismatched)} differ from the"
                " uncrashed baseline"
            )
        else:
            row["ok"] = True
        return row
    except Exception as exc:  # noqa: BLE001 - report rows, don't abort sweeps
        row["error"] = f"{type(exc).__name__}: {exc}"
        return row
    finally:
        row["wall_seconds"] = round(_time.perf_counter() - started, 3)


def run_failover_sweep(
    seeds: Sequence[int] = range(30),
    tcp_every: int = 5,
    time_scale: float = 0.002,
    timeout: float = 120.0,
    progress=None,
) -> list[dict]:
    """The seed sweep: kill points rotate (seed mod 3), schedulers
    alternate (seed mod 2 -- over 30 seeds every (algorithm, point) pair
    recurs), and every ``tcp_every``-th seed runs over loopback TCP (0
    disables TCP cases)."""
    rows = []
    for seed in seeds:
        algorithm = ALGORITHMS[seed % len(ALGORITHMS)]
        transport = (
            "tcp" if tcp_every and seed % tcp_every == tcp_every - 1
            else "local"
        )
        row = run_failover_case(
            algorithm,
            seed,
            transport=transport,
            time_scale=time_scale,
            timeout=timeout,
        )
        rows.append(row)
        if progress is not None:
            progress(row)
    return rows


# ---------------------------------------------------------------------------
# Multiprocess promotion smoke
# ---------------------------------------------------------------------------

def promotion_smoke(
    timeout: float = 240.0,
    time_scale: float = 0.02,
    host: str = "127.0.0.1",
) -> dict:
    """SIGKILL the primary ``serve-shard`` process of a replicated fleet.

    The supervisor must notice within :data:`DETECTION_BUDGET` wall
    seconds and promote the hot standby -- the fleet then finishes and
    every surviving member exits 0 with its views verified (shards
    verify their own consistency before exiting, so a clean fleet exit
    means the promoted standby's views passed the oracle).  No restart
    may fire: promotion takes precedence, and the dead primary stays
    dead.
    """
    from repro.runtime.shard import build_sharded_supervisor

    config = ExperimentConfig(
        algorithm="sweep",
        seed=11,
        n_sources=3,
        n_updates=16,
        mean_interarrival=5.0,
        n_views=N_VIEWS,
    )
    report = {
        "ok": False,
        "killed": "shard0",
        "promoted": "",
        "detection_seconds": None,
        "failover_log": [],
        "error": "",
    }
    supervisor = build_sharded_supervisor(
        config,
        N_SHARDS,
        time_scale=time_scale,
        strategy="round-robin",
        host=host,
        timeout=timeout,
        replicas=1,
    )
    try:
        target = supervisor.procs["shard0"]
        # Let the fleet wire up and start delivering before the kill
        # (probes + first updates); the schedule is paced slowly
        # enough that the SIGKILL lands mid-protocol.
        warmup_until = _time.monotonic() + 2.5
        while _time.monotonic() < warmup_until and target.poll() is None:
            _time.sleep(0.05)
        if target.poll() is not None:
            report["error"] = "shard0 exited before the kill was armed"
            supervisor.wait(timeout=timeout)
            return report
        target.send_signal(signal.SIGKILL)
        # wait() starts its failover-log clock now, so the logged
        # ``t+`` stamp of the promotion IS the detection latency.
        supervisor.wait(timeout=timeout)
        report["promoted"] = supervisor.promoted.get("shard0", "")
        report["failover_log"] = list(supervisor.failover_log)
        for entry in supervisor.failover_log:
            if "promoted standby" in entry:
                report["detection_seconds"] = float(
                    entry.split("]", 1)[0].lstrip("[t+").rstrip("s")
                )
                break
        if report["promoted"] != "shard0r1":
            report["error"] = (
                "supervisor did not promote shard0r1:"
                f" {supervisor.failover_log}"
            )
        elif supervisor.restarts.get("shard0", 0) > 0:
            report["error"] = "dead primary was restarted, not promoted"
        elif (
            report["detection_seconds"] is None
            or report["detection_seconds"] > DETECTION_BUDGET
        ):
            report["error"] = (
                f"promotion took {report['detection_seconds']}s,"
                f" budget is {DETECTION_BUDGET}s"
            )
        else:
            report["ok"] = True
        return report
    except Exception as exc:  # noqa: BLE001 - smoke reports, not raises
        report["failover_log"] = list(supervisor.failover_log)
        report["error"] = f"{type(exc).__name__}: {exc}"
        return report


# ---------------------------------------------------------------------------
# Report plumbing (mirrors repro.harness.recovery)
# ---------------------------------------------------------------------------

def build_report(rows: list[dict], smoke: dict | None = None) -> dict:
    report = {
        "suite": "failover-equivalence",
        "cases": len(rows),
        "failed": sum(1 for row in rows if not row["ok"]),
        "ok": all(row["ok"] for row in rows)
        and (smoke is None or smoke["ok"]),
        "rows": rows,
    }
    if smoke is not None:
        report["promotion_smoke"] = smoke
    return report


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def load_report(path: str | Path) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def format_report(report: dict) -> str:
    rows = report["rows"]
    table = format_table(
        ["algorithm", "transport", "seed", "kill", "claimed", "achieved",
         "promoted", "views", "wall s", "verdict"],
        [
            [
                row["algorithm"],
                row["transport"],
                row["seed"],
                ",".join(
                    f"{k.split('_')[1]}={v}"
                    for k, v in row["kill_spec"].items()
                ) + f"@s{row['kill_shard']}",
                row["claimed"],
                row["achieved"],
                row["promoted"] or "-",
                "equal" if row["views_equal"] else "DIFFER",
                row["wall_seconds"],
                "PASS" if row["ok"] else f"FAIL ({row['error']})",
            ]
            for row in rows
        ],
        title="Failover equivalence: promoted runs vs uncrashed baselines",
    )
    lines = [table]
    smoke = report.get("promotion_smoke")
    if smoke is not None:
        verdict = "PASS" if smoke["ok"] else f"FAIL ({smoke['error']})"
        detect = (
            f", detected in {smoke['detection_seconds']}s"
            if smoke.get("detection_seconds") is not None
            else ""
        )
        lines.append(
            f"\npromotion smoke: {verdict}"
            f" ({smoke['killed']} -> {smoke['promoted'] or '?'}{detect})"
        )
        for entry in smoke.get("failover_log", []):
            lines.append(f"  {entry}")
    lines.append(
        "\nall promoted runs equivalent" if report["ok"]
        else f"\n{report['failed']} of {report['cases']} case(s) FAILED"
    )
    return "\n".join(lines)


__all__ = [
    "ALGORITHMS",
    "CASE_DEFAULTS",
    "DETECTION_BUDGET",
    "KILL_POINTS",
    "N_SHARDS",
    "N_VIEWS",
    "build_report",
    "failover_spec",
    "format_report",
    "kill_point",
    "load_report",
    "promotion_smoke",
    "run_failover_case",
    "run_failover_sweep",
    "write_report",
]
