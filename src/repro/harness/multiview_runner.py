"""Wiring for multi-view experiments.

The standard harness is single-view; this runner wires a
:class:`~repro.warehouse.multiview.MultiViewSweepWarehouse` over a shared
source chain, records per-view consistency independently, and returns one
verdict per view.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.consistency.levels import ConsistencyLevel
from repro.consistency.oracle import RunRecorder
from repro.harness.runner import build_latency_model
from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition
from repro.simulation.channel import Channel
from repro.simulation.kernel import Simulator
from repro.simulation.mailbox import Mailbox
from repro.simulation.metrics import MetricsCollector
from repro.simulation.rng import RngRegistry
from repro.sources.memory import MemoryBackend
from repro.sources.server import DataSourceServer
from repro.sources.sqlite import SqliteBackend
from repro.sources.updater import ScheduledUpdater
from repro.warehouse.multiview import MultiViewSweepWarehouse
from repro.workloads.scenarios import Workload


@dataclass
class MultiViewResult:
    """Per-view outcomes plus shared run metrics."""

    final_views: dict[str, Relation]
    levels: dict[str, ConsistencyLevel]
    recorders: dict[str, RunRecorder]
    metrics: MetricsCollector
    updates_delivered: int

    @property
    def queries_sent(self) -> int:
        return self.metrics.counters.get("queries_sent", 0)


def run_multi_view(
    views: Sequence[ViewDefinition],
    workload: Workload,
    seed: int = 0,
    latency: float = 5.0,
    latency_model: str = "uniform",
    backend: str = "memory",
    max_check_vectors: int = 20_000,
    max_events: int = 2_000_000,
) -> MultiViewResult:
    """Maintain ``views`` (views[0] primary) over ``workload``'s sources.

    ``workload.view`` is ignored; its initial states and schedules drive
    the sources.  Every view gets an independent consistency verdict.
    """
    views = list(views)
    sim = Simulator()
    rngs = RngRegistry(seed)
    metrics = MetricsCollector()
    inbox = Mailbox(sim, "warehouse-inbox")

    recorders = {view.name: RunRecorder(view) for view in views}
    primary = views[0]

    def latency_for(name: str):
        return build_latency_model(
            latency_model, latency, rngs.stream(f"latency:{name}")
        )

    query_channels = {}
    backends = []
    for index in range(1, primary.n_relations + 1):
        name = primary.name_of(index)
        initial = workload.initial_states[name]
        if backend == "sqlite":
            store = SqliteBackend(primary, index, initial)
        else:
            store = MemoryBackend(primary, index, initial)
        backends.append(store)
        to_wh = Channel(sim, f"{name}->wh", inbox, latency_for(f"{name}-up"), metrics)
        server = DataSourceServer(sim, name, index, store, to_wh)
        for recorder in recorders.values():
            recorder.register_source(index, name, initial)
        server.add_update_listener(
            lambda notice: [
                r.history.on_source_update(notice) for r in recorders.values()
            ]
        )
        query_channels[index] = Channel(
            sim, f"wh->{name}", server.query_inbox,
            latency_for(f"{name}-down"), metrics,
        )
        ScheduledUpdater(
            sim, name, server.local_update, workload.schedules.get(index, [])
        )

    warehouse = MultiViewSweepWarehouse(
        sim,
        primary,
        query_channels,
        initial_view=primary.evaluate(workload.initial_states),
        recorder=recorders[primary.name],
        metrics=metrics,
        inbox=inbox,
        extra_views=views[1:],
        initial_states=workload.initial_states,
        extra_recorders={v.name: recorders[v.name] for v in views[1:]},
    )

    sim.run(max_events=max_events)
    for backend_obj in backends:
        backend_obj.close()

    # extra recorders share the primary's delivery order
    primary_deliveries = recorders[primary.name].deliveries
    for view in views[1:]:
        recorders[view.name].deliveries = list(primary_deliveries)

    final_views = {
        view.name: warehouse.view_contents(view.name) for view in views
    }
    levels = {
        view.name: recorders[view.name].classify(max_vectors=max_check_vectors)
        for view in views
    }
    return MultiViewResult(
        final_views=final_views,
        levels=levels,
        recorders=recorders,
        metrics=metrics,
        updates_delivered=recorders[primary.name].updates_delivered,
    )


__all__ = ["MultiViewResult", "run_multi_view"]
