"""Rebalance equivalence: migrate a view mid-run, drain, hand off, compare.

Live rebalancing is an *equivalence* claim: a run that seals a view on
its donor shard at an arbitrary protocol point, drains the in-flight
sweeps, hands the state off and re-routes the stream behind a fencing
epoch must be observably identical to a run that never migrated
anything.  Every case in this harness tests exactly that, over the
sharded runtime (4-view family, 2 shards, round-robin so both shards
host a migratable non-primary view):

1. **baseline** -- the static launch plan, never migrated: the reference
   final views and the consistency level an unperturbed run classifies
   at.
2. **rebalance** -- the same workload with a deterministic
   :class:`~repro.runtime.shard.RebalanceSpec` that fires inside the
   donor primary's own protocol frame: *mid-batch* (after the N-th
   install, so the seal request lands inside a composite batch),
   *mid-compensation* (after the N-th delivery, between a sweep's query
   and its answer), or *late* (within the last few deliveries, so the
   gap window closes against an almost-drained stream).

A case passes only if the rebalanced run (a) actually migrated (a
trigger that never fires is a configuration error, not a pass) and
completed catch-up on every recipient member, (b) reaches at least the
scheduler's claimed consistency level on *every* view -- the migrated
view classifies under its own spliced delivery order (donor prefix +
forwarded gap + pen + steady state) -- (c) left **no delivery holes**:
the migrated view's recorder saw every source update exactly once
(:meth:`~repro.consistency.oracle.RunRecorder.missing_deliveries`),
which is the check that stays sharp even when a dropped straggler's
delta joins to nothing, (d) delivers exactly the baseline's update
count, and (e) every final view is byte-equal
(:func:`~repro.warehouse.sharding.canonical_view_bytes`) to the
never-migrated baseline's.

The **mutation** case re-runs one migration with
``skip_straggler_forwarding=True`` -- the donor seals and hands off but
silently drops the straggler window ``(P_i, B_i]``.  The harness
requires the mutation to be *non-vacuous* (at least one straggler was
actually skipped) and *caught*: the migrated view must show delivery
holes, and typically also degrades below its claimed level or diverges
from the baseline bytes.  A harness that cannot see the bug it guards
against proves nothing.

:func:`run_rebalance_sweep` drives the default 30-seed matrix:
migration points rotate per seed, schedulers alternate, and every
``tcp_every``-th seed runs over loopback TCP so the fences ride real
listener sessions (they are ordinary empty update notices, so the
binwire codec carries them unchanged).
"""

from __future__ import annotations

import json
import time as _time
from pathlib import Path
from typing import Sequence

from repro.harness.config import ExperimentConfig
from repro.harness.report import format_table
from repro.runtime.shard import CLAIMED_LEVELS, RebalanceSpec

#: Workload shared by every case (kept small: each case runs it twice).
CASE_DEFAULTS = dict(
    n_sources=3,
    n_updates=12,
    mean_interarrival=6.0,
)
N_VIEWS = 4
N_SHARDS = 2

#: Schedulers under test (the sharded runtime's two claimants).
ALGORITHMS = ("sweep", "batched-sweep")

#: Protocol points the migration can fire at; seeds rotate through all.
MIGRATION_POINTS = ("mid-batch", "mid-compensation", "late-drain")

#: Mid-compensation seeds (seed % 3 == 1) the mutation case probes for a
#: fire point whose gap actually holds a straggler to skip.
MUTATION_SEEDS = (1, 4, 7, 10, 13)


def migration_point(seed: int) -> str:
    return MIGRATION_POINTS[seed % len(MIGRATION_POINTS)]


def rebalance_spec(
    seed: int, view: str, to_shard: int, mutated: bool = False
) -> RebalanceSpec:
    """The deterministic migration for a seed: point and threshold vary.

    Thresholds stay below the 12-delivery drain of the shared workload
    on either scheduler, so the trigger always fires; the ``late-drain``
    band sits in the last third of the stream, where the straggler
    window closes against nearly exhausted channels.
    """
    point = migration_point(seed)
    if point == "mid-batch":
        kwargs = dict(after_installs=1 + (seed // 3) % 3)
    elif point == "mid-compensation":
        kwargs = dict(after_deliveries=2 + (seed // 3) % 5)
    else:
        kwargs = dict(after_deliveries=8 + (seed // 3) % 3)
    return RebalanceSpec(
        view=view,
        to_shard=to_shard,
        skip_straggler_forwarding=mutated,
        **kwargs,
    )


def pick_migration(plan) -> tuple[str, int]:
    """The migrating view and its destination, derived from the plan.

    Deterministic per plan: the first active shard hosting more than its
    primary donates its first extra view to the next active shard.
    """
    for shard in plan.active_shards:
        views = plan.views_for(shard)
        if len(views) > 1:
            recipients = [s for s in plan.active_shards if s != shard]
            return views[1].name, recipients[0]
    raise ValueError(f"no migratable view under [{plan.describe()}]")


def run_rebalance_case(
    algorithm: str,
    seed: int,
    transport: str = "local",
    time_scale: float = 0.002,
    timeout: float = 120.0,
    mutated: bool = False,
) -> dict:
    """One baseline/rebalance pair; returns a flat report row."""
    from repro.runtime import run_sharded

    config = ExperimentConfig(
        algorithm=algorithm,
        seed=seed,
        n_views=N_VIEWS,
        **CASE_DEFAULTS,
    )
    claimed = CLAIMED_LEVELS[algorithm]
    row = {
        "algorithm": algorithm,
        "transport": transport,
        "seed": seed,
        "migration_point": migration_point(seed),
        "view": "",
        "from_shard": None,
        "to_shard": None,
        "spec": {},
        "mutated": mutated,
        "claimed": claimed.name.lower(),
        "ok": False,
        "completed": False,
        "achieved": "none",
        "views_equal": False,
        "deliveries_equal": False,
        "missing": {},
        "gap_forwarded": 0,
        "gap_skipped": 0,
        "pen_retained": 0,
        "wall_seconds": 0.0,
        "error": "",
    }
    common = dict(
        n_shards=N_SHARDS,
        time_scale=time_scale,
        timeout=timeout,
        strategy="round-robin",
    )
    started = _time.perf_counter()
    try:
        from repro.warehouse.sharding import canonical_view_bytes

        baseline = run_sharded(config, transport="local", **common)
        expected = {
            name: canonical_view_bytes(view)
            for name, view in baseline.final_views.items()
        }
        view, to_shard = pick_migration(baseline.plan)
        spec = rebalance_spec(seed, view, to_shard, mutated=mutated)
        row["view"] = view
        row["from_shard"] = baseline.plan.shard_of(view)
        row["to_shard"] = to_shard
        row["spec"] = {
            k: v
            for k, v in (
                ("after_installs", spec.after_installs),
                ("after_deliveries", spec.after_deliveries),
            )
            if v is not None
        }
        result = run_sharded(
            config, transport=transport, rebalance=spec, **common
        )
        stats = result.rebalance_stats or {}
        row["completed"] = bool(stats.get("completed"))
        for counter in ("gap_forwarded", "gap_skipped", "pen_retained"):
            row[counter] = stats.get(counter, 0)
        achieved = result.min_level()
        row["achieved"] = achieved.name.lower()
        row["deliveries_equal"] = (
            result.deliveries_total == baseline.deliveries_total
        )
        row["missing"] = {
            str(idx): seqs
            for idx, seqs in result.recorders[view].missing_deliveries().items()
        }
        mismatched = sorted(
            name
            for name, final in result.final_views.items()
            if canonical_view_bytes(final) != expected.get(name)
        )
        row["views_equal"] = not mismatched
        if mutated:
            # The mutation must be non-vacuous AND caught by the oracle:
            # skipped stragglers leave delivery holes on the migrated view.
            if row["gap_skipped"] < 1:
                row["error"] = (
                    "mutation vacuous: no straggler was actually skipped"
                )
            elif not row["missing"]:
                row["error"] = (
                    "oracle blind: stragglers skipped but no delivery"
                    " holes reported"
                )
            else:
                row["ok"] = True
        elif not row["completed"]:
            row["error"] = "migration did not complete catch-up"
        elif achieved < claimed:
            row["error"] = f"achieved {achieved.name.lower()} < claimed"
        elif row["missing"]:
            row["error"] = (
                f"migrated view has delivery holes: {row['missing']}"
            )
        elif not row["deliveries_equal"]:
            row["error"] = (
                f"rebalanced run delivered {result.deliveries_total}"
                f" updates, baseline {baseline.deliveries_total}"
            )
        elif mismatched:
            row["error"] = (
                f"view(s) {', '.join(mismatched)} differ from the"
                " never-migrated baseline"
            )
        else:
            row["ok"] = True
        return row
    except Exception as exc:  # noqa: BLE001 - report rows, don't abort sweeps
        row["error"] = f"{type(exc).__name__}: {exc}"
        return row
    finally:
        row["wall_seconds"] = round(_time.perf_counter() - started, 3)


def run_rebalance_sweep(
    seeds: Sequence[int] = range(30),
    tcp_every: int = 5,
    time_scale: float = 0.002,
    timeout: float = 120.0,
    progress=None,
) -> list[dict]:
    """The seed sweep: migration points rotate (seed mod 3), schedulers
    alternate (seed mod 2 -- over 30 seeds every (algorithm, point) pair
    recurs), and every ``tcp_every``-th seed runs over loopback TCP (0
    disables TCP cases).  Two mutation cases -- one per scheduler -- ride
    at the end of every sweep, so the harness proves on each run that it
    can still see the bug it guards against.
    """
    rows = []
    for seed in seeds:
        algorithm = ALGORITHMS[seed % len(ALGORITHMS)]
        transport = (
            "tcp" if tcp_every and seed % tcp_every == tcp_every - 1
            else "local"
        )
        row = run_rebalance_case(
            algorithm,
            seed,
            transport=transport,
            time_scale=time_scale,
            timeout=timeout,
        )
        rows.append(row)
        if progress is not None:
            progress(row)
    for algorithm in ALGORITHMS:
        # Whether the gap holds a straggler at fire time depends on the
        # donor's queue depth, so probe the mid-compensation band until
        # the mutation is non-vacuous; a caught (or blind) mutation ends
        # the probe, and a fully vacuous band is itself a failure.
        row = None
        for candidate in MUTATION_SEEDS:
            row = run_rebalance_case(
                algorithm,
                candidate,
                transport="local",
                time_scale=time_scale,
                timeout=timeout,
                mutated=True,
            )
            if row["gap_skipped"] >= 1:
                break
        rows.append(row)
        if progress is not None:
            progress(row)
    return rows


# ---------------------------------------------------------------------------
# Report plumbing (mirrors repro.harness.failover)
# ---------------------------------------------------------------------------

def build_report(rows: list[dict]) -> dict:
    return {
        "suite": "rebalance-equivalence",
        "cases": len(rows),
        "failed": sum(1 for row in rows if not row["ok"]),
        "mutation_cases": sum(1 for row in rows if row["mutated"]),
        "ok": all(row["ok"] for row in rows),
        "rows": rows,
    }


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def load_report(path: str | Path) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def format_report(report: dict) -> str:
    rows = report["rows"]
    table = format_table(
        ["algorithm", "transport", "seed", "move", "fire", "claimed",
         "achieved", "gap", "views", "wall s", "verdict"],
        [
            [
                row["algorithm"],
                row["transport"],
                row["seed"],
                f"{row['view'] or '?'}"
                f" s{row['from_shard']}->s{row['to_shard']}",
                ",".join(
                    f"{k.split('_')[1]}={v}" for k, v in row["spec"].items()
                ) + (" MUT" if row["mutated"] else ""),
                row["claimed"],
                row["achieved"],
                f"{row['gap_forwarded']}+{row['pen_retained']}p"
                + (f" skip={row['gap_skipped']}" if row["mutated"] else ""),
                "equal" if row["views_equal"] else "DIFFER",
                row["wall_seconds"],
                "PASS" if row["ok"] else f"FAIL ({row['error']})",
            ]
            for row in rows
        ],
        title="Rebalance equivalence: migrated runs vs static baselines",
    )
    lines = [table]
    lines.append(
        "\nall migrated runs equivalent (mutations caught)" if report["ok"]
        else f"\n{report['failed']} of {report['cases']} case(s) FAILED"
    )
    return "\n".join(lines)


__all__ = [
    "ALGORITHMS",
    "CASE_DEFAULTS",
    "MIGRATION_POINTS",
    "MUTATION_SEEDS",
    "N_SHARDS",
    "N_VIEWS",
    "build_report",
    "format_report",
    "load_report",
    "migration_point",
    "pick_migration",
    "rebalance_spec",
    "run_rebalance_case",
    "run_rebalance_sweep",
    "write_report",
]
