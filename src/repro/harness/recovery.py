"""Crash-restart conformance: kill a shard mid-protocol, recover, compare.

Every case runs the same seeded workload three times over the sharded
runtime (4-view family, 2 shards, round-robin so both shards host work):

1. **baseline** -- durability off, no crash: the reference final views
   and the consistency level an uncrashed run classifies at.
2. **crash** -- durability on (checkpoints + WAL in a fresh directory)
   with a deterministic :class:`~repro.durability.manager.CrashPlan`
   that kills one shard after its N-th delivery or N-th install.  The
   run must die with :class:`~repro.durability.errors.SimulatedCrash`.
3. **recovery** -- the identical run re-entered over the same durable
   directory: both shards recover (checkpoint + WAL replay), re-issue
   in-flight sweeps, and run to quiescence.

A case passes only if the recovered run (a) reaches at least the
scheduler's claimed consistency level on *every* view -- the oracle's
convergence check doubles as the no-lost/no-double-installed-update
check, since a missing or twice-installed delta leaves the bag-semantics
view observably wrong -- and (b) every final view is **byte-equal**
(:func:`~repro.warehouse.sharding.canonical_view_bytes`) to the
uncrashed baseline's.

Crash points are varied across seeds: delivery-count crashes interleave
freely with sweep steps (so they land mid-compensation), and
install-count crashes on the batched scheduler land between the member
installs of one composite batch.  :func:`run_recovery_sweep` drives the
default 30-seed matrix (local transport, with every fifth seed run over
loopback TCP so listener epochs and session adoption are exercised);
:func:`kill_and_recover_smoke` is the multiprocess variant -- a real
``SIGKILL`` against a ``repro serve-shard`` process under a supervisor
with ``restart="on-crash"``.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import tempfile
import time as _time
from pathlib import Path
from typing import Sequence

from repro.durability.errors import SimulatedCrash
from repro.durability.manager import CheckpointPolicy, CrashPlan
from repro.harness.config import ExperimentConfig
from repro.harness.report import format_table
from repro.runtime.shard import CLAIMED_LEVELS
from repro.warehouse.sharding import canonical_view_bytes

#: Workload shared by every case (kept small: each case runs it 3x).
CASE_DEFAULTS = dict(
    n_sources=3,
    n_updates=12,
    mean_interarrival=6.0,
)
N_VIEWS = 4
N_SHARDS = 2
#: Aggressive roll rate so every case exercises checkpoint + WAL replay.
CHECKPOINT_POLICY = CheckpointPolicy(every_installs=3)

#: Schedulers under test (the sharded runtime's two claimants).
ALGORITHMS = ("sweep", "batched-sweep")


def crash_spec(seed: int) -> dict:
    """The deterministic crash point for a seed.

    Even seeds crash on a delivery count (deliveries tick inside the
    dispatcher, which interleaves with sweep steps -- mid-compensation),
    odd seeds on an install count (mid-batch for the batched scheduler).
    """
    if seed % 2 == 0:
        return {"after_deliveries": 4 + (seed // 2) % 7}
    return {"after_installs": 2 + (seed // 2) % 6}


def run_crash_restart_case(
    algorithm: str,
    seed: int,
    transport: str = "local",
    time_scale: float = 0.002,
    timeout: float = 120.0,
    locality: str = "off",
) -> dict:
    """One baseline/crash/recovery triple; returns a flat report row.

    With ``locality="aux"`` all three runs carry warehouse-local source
    copies; the crash run checkpoints them and the recovery run must
    re-seed them from the checkpoint (or demote, for copies the durable
    state predates) and still end byte-equal to the uncrashed baseline.
    """
    from repro.runtime import run_sharded

    config = ExperimentConfig(
        algorithm=algorithm,
        seed=seed,
        n_views=N_VIEWS,
        locality=locality,
        **CASE_DEFAULTS,
    )
    claimed = CLAIMED_LEVELS[algorithm]
    spec = crash_spec(seed)
    crash_shard = seed % N_SHARDS
    row = {
        "algorithm": algorithm,
        "transport": transport,
        "seed": seed,
        "locality": locality,
        "crash_shard": crash_shard,
        "crash_spec": spec,
        "claimed": claimed.name.lower(),
        "ok": False,
        "crash_fired": False,
        "recovered_pending": 0,
        "achieved": "none",
        "views_equal": False,
        "wall_seconds": 0.0,
        "error": "",
    }
    common = dict(
        n_shards=N_SHARDS,
        time_scale=time_scale,
        timeout=timeout,
        strategy="round-robin",
    )
    started = _time.perf_counter()
    durable_root = tempfile.mkdtemp(prefix="repro-recovery-")
    try:
        baseline = run_sharded(config, transport="local", **common)
        expected = {
            name: canonical_view_bytes(view)
            for name, view in baseline.final_views.items()
        }
        try:
            run_sharded(
                config,
                transport=transport,
                durable_dir=durable_root,
                checkpoint_policy=CHECKPOINT_POLICY,
                crash_plans={crash_shard: CrashPlan(**spec)},
                **common,
            )
        except SimulatedCrash:
            row["crash_fired"] = True
        if not row["crash_fired"]:
            row["error"] = f"crash plan {spec} never fired"
            return row
        recovered = run_sharded(
            config,
            transport=transport,
            durable_dir=durable_root,
            checkpoint_policy=CHECKPOINT_POLICY,
            **common,
        )
        row["recovered_pending"] = sum(
            (recovered.recovered_pending or {}).values()
        )
        achieved = recovered.min_level()
        row["achieved"] = achieved.name.lower()
        mismatched = sorted(
            name
            for name, view in recovered.final_views.items()
            if canonical_view_bytes(view) != expected.get(name)
        )
        row["views_equal"] = not mismatched
        if recovered.recovered_pending is None:
            row["error"] = "second run did not recover durable state"
        elif achieved < claimed:
            row["error"] = f"achieved {achieved.name.lower()} < claimed"
        elif mismatched:
            row["error"] = (
                f"view(s) {', '.join(mismatched)} differ from the"
                " uncrashed baseline"
            )
        else:
            row["ok"] = True
        return row
    except Exception as exc:  # noqa: BLE001 - report rows, don't abort sweeps
        row["error"] = f"{type(exc).__name__}: {exc}"
        return row
    finally:
        row["wall_seconds"] = round(_time.perf_counter() - started, 3)
        shutil.rmtree(durable_root, ignore_errors=True)


def run_recovery_sweep(
    seeds: Sequence[int] = range(30),
    tcp_every: int = 5,
    time_scale: float = 0.002,
    timeout: float = 120.0,
    progress=None,
) -> list[dict]:
    """The seed sweep: algorithms alternate, every ``tcp_every``-th seed
    runs over loopback TCP (0 disables TCP cases), and every third seed
    crashes with the locality layer on (``aux``), so checkpointed
    auxiliary copies and their recovery path stay under test."""
    rows = []
    for seed in seeds:
        algorithm = ALGORITHMS[seed % len(ALGORITHMS)]
        transport = (
            "tcp" if tcp_every and seed % tcp_every == tcp_every - 1
            else "local"
        )
        row = run_crash_restart_case(
            algorithm,
            seed,
            transport=transport,
            time_scale=time_scale,
            timeout=timeout,
            locality="aux" if seed % 3 == 2 else "off",
        )
        rows.append(row)
        if progress is not None:
            progress(row)
    return rows


# ---------------------------------------------------------------------------
# Multiprocess kill-and-recover smoke
# ---------------------------------------------------------------------------

def kill_and_recover_smoke(
    timeout: float = 240.0,
    time_scale: float = 0.05,
    host: str = "127.0.0.1",
    locality: str = "aux",
) -> dict:
    """SIGKILL a durable ``serve-shard`` process; the supervisor restarts
    it and the fleet still finishes with every view verified.

    The schedule is paced slowly enough (relative to ``time_scale``) that
    the kill lands while the shard is mid-protocol: the harness waits for
    the shard's durable directory to hold a checkpoint before pulling the
    trigger, so the restarted incarnation always has state to recover.
    """
    from repro.runtime.shard import build_sharded_supervisor

    # Locality on by default: the kill then also exercises checkpointed
    # auxiliary copies riding through a real process restart (the
    # ``--locality`` flag reaches the serve-shard processes via
    # ``_config_argv``).
    config = ExperimentConfig(
        algorithm="sweep",
        seed=11,
        n_sources=3,
        n_updates=16,
        mean_interarrival=4.0,
        n_views=N_VIEWS,
        locality=locality,
    )
    report = {
        "ok": False,
        "restarts": 0,
        "restart_log": [],
        "killed": "shard0",
        "error": "",
    }
    with tempfile.TemporaryDirectory(prefix="repro-kill-recover-") as root:
        supervisor = build_sharded_supervisor(
            config,
            N_SHARDS,
            time_scale=time_scale,
            strategy="round-robin",
            host=host,
            timeout=timeout,
            durable_root=root,
            restart="on-crash",
            max_restarts=2,
        )
        try:
            target = supervisor.procs["shard0"]
            # Arm the kill only once the victim has durable state: the
            # attach-time checkpoint plus at least one WAL-logged update.
            wal_dir = os.path.join(root, "shard0")
            deadline = _time.monotonic() + timeout / 2
            while _time.monotonic() < deadline:
                if target.poll() is not None:
                    break  # finished early; report below
                wals = [
                    os.path.join(wal_dir, name)
                    for name in (
                        os.listdir(wal_dir) if os.path.isdir(wal_dir) else ()
                    )
                    if name.endswith(".wal")
                ]
                if any(os.path.getsize(path) > 64 for path in wals):
                    break
                _time.sleep(0.05)
            if target.poll() is None:
                target.send_signal(signal.SIGKILL)
            else:
                report["error"] = "shard0 exited before the kill was armed"
                supervisor.wait(timeout=timeout)
                return report
            supervisor.wait(timeout=timeout)
            report["restarts"] = supervisor.restarts.get("shard0", 0)
            report["restart_log"] = list(supervisor.restart_log)
            # Only the injected SIGKILL (exit -9) may have triggered a
            # relaunch.  A recovered incarnation crashing on its own and
            # being saved by the restart budget is a recovery bug this
            # smoke exists to catch, not a pass.
            unexpected = [
                line
                for line in report["restart_log"]
                if "exit -9," not in line
            ]
            if report["restarts"] < 1:
                report["error"] = "supervisor never restarted shard0"
            elif unexpected:
                report["error"] = (
                    "recovered incarnation crashed: " + "; ".join(unexpected)
                )
            else:
                # wait() returning means every member exited 0 -- each
                # shard verified its views against the claimed level.
                report["ok"] = True
            return report
        except Exception as exc:  # noqa: BLE001 - smoke reports, not raises
            report["restart_log"] = list(supervisor.restart_log)
            report["error"] = f"{type(exc).__name__}: {exc}"
            return report


# ---------------------------------------------------------------------------
# Report plumbing (mirrors repro.harness.conformance)
# ---------------------------------------------------------------------------

def build_report(rows: list[dict], smoke: dict | None = None) -> dict:
    report = {
        "suite": "crash-restart",
        "cases": len(rows),
        "failed": sum(1 for row in rows if not row["ok"]),
        "ok": all(row["ok"] for row in rows)
        and (smoke is None or smoke["ok"]),
        "rows": rows,
    }
    if smoke is not None:
        report["kill_and_recover"] = smoke
    return report


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def load_report(path: str | Path) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def format_report(report: dict) -> str:
    rows = report["rows"]
    table = format_table(
        ["algorithm", "transport", "seed", "locality", "crash", "claimed",
         "achieved", "replayed", "views", "wall s", "verdict"],
        [
            [
                row["algorithm"],
                row["transport"],
                row["seed"],
                row.get("locality", "off"),
                ",".join(
                    f"{k.split('_')[1]}={v}"
                    for k, v in row["crash_spec"].items()
                ) + f"@s{row['crash_shard']}",
                row["claimed"],
                row["achieved"],
                row["recovered_pending"],
                "equal" if row["views_equal"] else "DIFFER",
                row["wall_seconds"],
                "PASS" if row["ok"] else f"FAIL ({row['error']})",
            ]
            for row in rows
        ],
        title="Crash-restart recovery: recovered runs vs uncrashed baselines",
    )
    lines = [table]
    smoke = report.get("kill_and_recover")
    if smoke is not None:
        verdict = "PASS" if smoke["ok"] else f"FAIL ({smoke['error']})"
        lines.append(
            f"\nkill-and-recover smoke: {verdict}"
            f" ({smoke['restarts']} restart(s) of {smoke['killed']})"
        )
        for entry in smoke.get("restart_log", []):
            lines.append(f"  {entry}")
    lines.append(
        "\nall cases recovered" if report["ok"]
        else f"\n{report['failed']} of {report['cases']} case(s) FAILED"
    )
    return "\n".join(lines)


__all__ = [
    "ALGORITHMS",
    "CASE_DEFAULTS",
    "CHECKPOINT_POLICY",
    "N_SHARDS",
    "N_VIEWS",
    "build_report",
    "crash_spec",
    "format_report",
    "kill_and_recover_smoke",
    "load_report",
    "run_crash_restart_case",
    "run_recovery_sweep",
    "write_report",
]
