"""Plain-text table rendering for experiment reports.

The benchmark harness prints paper-style tables (e.g. the measured Table 1)
to stdout and into ``results/``.  No dependency beyond the standard
library; values are stringified with sensible float formatting.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if value is None:
        return "-"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_dict_table(
    rows: Iterable[dict[str, object]],
    columns: Sequence[str],
    title: str | None = None,
) -> str:
    """Render dict rows, selecting and ordering ``columns``."""
    return format_table(
        columns,
        [[row.get(col) for col in columns] for row in rows],
        title=title,
    )


__all__ = ["format_dict_table", "format_table"]
