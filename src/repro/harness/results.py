"""Run results: metrics, consistency verdicts and report rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consistency.checker import CheckResult
from repro.consistency.levels import ConsistencyLevel
from repro.consistency.oracle import RunRecorder
from repro.harness.config import ExperimentConfig
from repro.relational.relation import Relation
from repro.simulation.metrics import MetricsCollector
from repro.simulation.trace import TraceLog
from repro.warehouse.base import WarehouseBase
from repro.warehouse.registry import AlgorithmInfo


@dataclass
class RunResult:
    """Everything an experiment run produced."""

    config: ExperimentConfig
    info: AlgorithmInfo
    final_view: Relation
    sim_time: float
    wall_seconds: float
    metrics: MetricsCollector
    recorder: RunRecorder
    warehouse: WarehouseBase
    trace: TraceLog | None = None
    consistency: dict[ConsistencyLevel, CheckResult] = field(default_factory=dict)
    classified_level: ConsistencyLevel | None = None

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def updates_delivered(self) -> int:
        return self.recorder.updates_delivered

    @property
    def installs(self) -> int:
        return len(self.recorder.snapshots)

    @property
    def queries_sent(self) -> int:
        return self.metrics.counters.get("queries_sent", 0)

    @property
    def messages_total(self) -> int:
        return self.metrics.messages_total

    @property
    def protocol_messages(self) -> int:
        """Messages excluding the unavoidable update notices themselves."""
        return self.messages_total - self.updates_delivered

    @property
    def messages_per_update(self) -> float:
        """Protocol messages (queries + answers) per delivered update."""
        if self.updates_delivered == 0:
            return 0.0
        return self.protocol_messages / self.updates_delivered

    @property
    def queries_per_update(self) -> float:
        if self.updates_delivered == 0:
            return 0.0
        return self.queries_sent / self.updates_delivered

    @property
    def query_rows_sent(self) -> int:
        """Total payload rows carried by query messages (size metric)."""
        return self.metrics.rows_of_kind("query")

    @property
    def mean_install_delay(self) -> float | None:
        """Mean virtual time from delivery to install (staleness proxy)."""
        return self.metrics.mean_observation("install_delay")

    @property
    def locality_stats(self) -> dict[str, int | str]:
        """Structured counters of the query-locality layer.

        ``mode`` is the configured planner mode; the counters are zero
        when the layer is off (they are plain metrics counters, so the
        same keys work for distributed and sharded runs).
        """
        counters = self.metrics.counters
        return {
            "mode": getattr(self.config, "locality", "off"),
            "covered_sources": counters.get("locality_covered_sources", 0),
            "aux_hits": counters.get("locality_aux_hits", 0),
            "cache_hits": counters.get("locality_cache_hits", 0),
            "cache_misses": counters.get("locality_cache_misses", 0),
            "cache_patches": counters.get("locality_cache_patches", 0),
            "cache_evictions": counters.get("locality_cache_evictions", 0),
            "cache_invalidations": counters.get(
                "locality_cache_invalidations", 0
            ),
            "dedup_saved": counters.get("locality_dedup_saved", 0),
        }

    @property
    def predicate_cache(self) -> dict[str, int]:
        """This run's predicate compile-cache traffic (hits/misses)."""
        counters = self.metrics.counters
        return {
            "hits": counters.get("predicate_cache_hits", 0),
            "misses": counters.get("predicate_cache_misses", 0),
        }

    @property
    def mean_per_update_staleness(self) -> float | None:
        """Mean delivery-to-install time attributed per *update*.

        Unlike :attr:`mean_install_delay` (one observation per install),
        this stays per-update under batching: a composite install covering
        ``k`` updates contributes ``k`` observations via the oracle's
        batch attribution.  ``None`` when no update was attributed or the
        claimed vectors do not support attribution.
        """
        try:
            staleness = self.recorder.per_update_staleness()
        except ValueError:
            return None
        if not staleness:
            return None
        return sum(staleness) / len(staleness)

    @property
    def uninstalled_updates(self) -> int:
        """Updates delivered but never reflected by an install."""
        return self.updates_delivered - self.metrics.counters.get(
            "updates_installed", 0
        )

    def mean_unreflected_updates(self) -> float:
        """Time-averaged count of delivered-but-unreflected updates.

        This is what a reader at the warehouse experiences: how many
        already-delivered updates are, on average over the run, *not yet*
        visible in the view it queries.  Computed post hoc by integrating
        a step function over the run: +1 at each delivery, -k at each
        install covering k updates (from the claimed state vectors).
        """
        deliveries = self.recorder.deliveries
        if not deliveries:
            return 0.0
        events: list[tuple[float, int]] = [
            (n.delivered_at, +1) for n in deliveries
        ]
        prev_total = 0
        for snap in self.recorder.snapshots:
            vector = snap.claimed_vector or {}
            total = sum(vector.values())
            if total > prev_total:
                events.append((snap.time, -(total - prev_total)))
                prev_total = total
        events.sort(key=lambda e: e[0])
        start = events[0][0]
        end = max(self.sim_time, events[-1][0])
        if end <= start:
            return 0.0
        area = 0.0
        level = 0
        prev_time = start
        for time, delta in events:
            area += level * (time - prev_time)
            level += delta
            prev_time = time
        area += level * (end - prev_time)
        return area / (end - start)

    # ------------------------------------------------------------------
    def consistency_verdict(self) -> str:
        """Short verdict string for reports."""
        if self.classified_level is not None:
            return self.classified_level.name.lower()
        passed = [
            lvl.name.lower() for lvl, res in sorted(self.consistency.items()) if res.ok
        ]
        return ",".join(passed) if passed else "unchecked"

    def report(self) -> str:
        """Multi-line human-readable summary of the run."""
        lines = [
            f"algorithm        : {self.info.name} ({self.info.architecture})",
            f"config           : {self.config.describe()}",
            f"updates delivered: {self.updates_delivered}",
            f"installs         : {self.installs}",
            f"queries sent     : {self.queries_sent}",
            f"messages total   : {self.messages_total}"
            f" (per update: {self.messages_per_update:.2f})",
            f"query payload    : {self.query_rows_sent} rows",
            f"sim time         : {self.sim_time:.2f}",
            f"wall time        : {self.wall_seconds * 1000:.1f} ms",
            f"final view       : {self.final_view.distinct_count} rows",
            f"consistency      : {self.consistency_verdict()}",
        ]
        locality = self.locality_stats
        if locality["mode"] != "off":
            lines.append(
                f"locality         : mode={locality['mode']}"
                f" aux_hits={locality['aux_hits']}"
                f" cache_hits={locality['cache_hits']}"
                f" cache_misses={locality['cache_misses']}"
                f" patches={locality['cache_patches']}"
                f" dedup_saved={locality['dedup_saved']}"
            )
        cache = self.predicate_cache
        if cache["hits"] or cache["misses"]:
            lines.append(
                f"predicate cache  : {cache['hits']} hits /"
                f" {cache['misses']} misses"
            )
        delay = self.mean_install_delay
        if delay is not None:
            lines.append(f"mean install lag : {delay:.2f}")
        staleness = self.mean_per_update_staleness
        if staleness is not None:
            lines.append(f"per-update stale : {staleness:.2f}")
        for level, result in sorted(self.consistency.items()):
            status = "PASS" if result.ok else "FAIL"
            suffix = f" ({result.detail})" if result.detail else ""
            lines.append(
                f"  {level.name.lower():<12}: {status} [{result.method}]{suffix}"
            )
        return "\n".join(lines)


__all__ = ["RunResult"]
