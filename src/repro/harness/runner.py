"""Wiring one experiment: workload -> sources -> warehouse -> verdicts."""

from __future__ import annotations

import time as _time

from repro.consistency.levels import ConsistencyLevel
from repro.consistency.oracle import RunRecorder
from repro.harness.config import ExperimentConfig
from repro.harness.results import RunResult
from repro.simulation.channel import Channel
from repro.simulation.kernel import Simulator
from repro.simulation.latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    UniformLatency,
)
from repro.simulation.mailbox import Mailbox
from repro.simulation.metrics import MetricsCollector
from repro.simulation.rng import RngRegistry
from repro.simulation.trace import TraceLog
from repro.relational.predicate import compile_cache_stats
from repro.sources.central import CentralSource
from repro.sources.memory import MemoryBackend
from repro.sources.server import DataSourceServer
from repro.sources.sqlite import SqliteBackend
from repro.sources.updater import ScheduledUpdater
from repro.warehouse.locality import build_locality
from repro.warehouse.registry import algorithm_info
from repro.warehouse.sweep import SweepOptions
from repro.workloads.scenarios import Workload, make_workload
from repro.workloads.stream import UpdateStreamConfig

import random


def build_latency_model(
    kind: str, mean: float, rng: random.Random
) -> LatencyModel:
    """Instantiate one of the named latency models around ``mean``."""
    if kind == "constant":
        return ConstantLatency(mean)
    if kind == "uniform":
        return UniformLatency(0.5 * mean, 1.5 * mean, rng)
    if kind == "exponential":
        return ExponentialLatency(mean, rng)
    raise ValueError(f"unknown latency model {kind!r}")


def _latency(config: ExperimentConfig, rngs: RngRegistry, name: str) -> LatencyModel:
    rng = rngs.stream(f"latency:{name}")
    if config.latency_model == "constant":
        return ConstantLatency(config.latency)
    if config.latency_model == "uniform":
        return UniformLatency(0.5 * config.latency, 1.5 * config.latency, rng)
    return ExponentialLatency(config.latency, rng)


def build_workload(config: ExperimentConfig, rngs: RngRegistry) -> Workload:
    """The workload a config describes, drawn from the registry's streams.

    Shared by the simulator harness and the distributed runtime so that an
    identical config replays an identical update history on both hosts
    (the basis of the simulator-vs-runtime equivalence tests).
    """
    if config.workload is not None:
        return config.workload
    stream = UpdateStreamConfig(
        n_updates=config.n_updates,
        mean_interarrival=config.mean_interarrival,
        distribution=config.interarrival_distribution,
        insert_fraction=config.insert_fraction,
        match_fraction=config.match_fraction,
        txn_fraction=config.txn_fraction,
        txn_max_rows=config.txn_max_rows,
        global_txn_fraction=config.global_txn_fraction,
    )
    return make_workload(
        config.n_sources,
        rngs.stream("workload"),
        rows_per_relation=config.rows_per_relation,
        stream=stream,
        project_keys=config.project_keys,
        match_fraction=config.match_fraction,
    )


def algorithm_kwargs(config: ExperimentConfig) -> dict:
    """Per-algorithm constructor options encoded in a config."""
    if config.algorithm == "sweep":
        return {
            "options": SweepOptions(
                parallel=config.sweep_parallel,
                merge_queue_updates=config.sweep_merge_queue_updates,
            )
        }
    if config.algorithm == "batched-sweep":
        return {"max_batch": config.batch_max, "adaptive": config.batch_adaptive}
    if config.algorithm == "nested-sweep":
        return {"max_depth": config.nested_max_depth}
    if config.algorithm == "pipelined-sweep":
        return {"max_parallel": config.pipeline_max_parallel}
    return {}


def record_predicate_cache_delta(
    metrics: MetricsCollector, before: dict[str, int]
) -> None:
    """Fold this run's share of the process-global compile-cache traffic
    into its metrics (``before`` from :func:`compile_cache_stats`)."""
    after = compile_cache_stats()
    metrics.increment("predicate_cache_hits", after["hits"] - before["hits"])
    metrics.increment(
        "predicate_cache_misses", after["misses"] - before["misses"]
    )


def run_experiment(config: ExperimentConfig, warehouse_hook=None) -> RunResult:
    """Run one experiment to quiescence and return its results.

    ``warehouse_hook(warehouse)``, when given, is invoked after the
    warehouse is constructed and before the simulation starts -- e.g. to
    attach aggregate views that must observe every install.
    """
    predicate_stats_before = compile_cache_stats()
    rngs = RngRegistry(config.seed)
    workload = build_workload(config, rngs)
    view = workload.view
    info = algorithm_info(config.algorithm)

    sim = Simulator()
    metrics = MetricsCollector()
    trace = TraceLog(enabled=config.trace)
    recorder = RunRecorder(view)
    inbox = Mailbox(sim, "warehouse-inbox")

    backends = []
    if config.algorithm == "eca":
        # Centralized architecture: one site holds every base relation.
        to_wh = Channel(
            sim, "central->wh", inbox, _latency(config, rngs, "central-up"),
            metrics, enforce_fifo=config.fifo_channels,
        )
        central = CentralSource(
            sim,
            view,
            to_wh,
            initial=workload.initial_states,
            query_service_time=config.query_service_time,
            trace=trace if config.trace else None,
        )
        central.add_update_listener(recorder.on_source_update)
        for index in range(1, view.n_relations + 1):
            recorder.register_source(
                index, view.name_of(index), workload.initial_states[view.name_of(index)]
            )
        query_channels = {
            0: Channel(
                sim,
                "wh->central",
                central.query_inbox,
                _latency(config, rngs, "central-down"),
                metrics,
                enforce_fifo=config.fifo_channels,
            )
        }
        for index, schedule in sorted(workload.schedules.items()):
            ScheduledUpdater(
                sim,
                f"R{index}",
                (lambda delta, i=index: central.local_update(i, delta)),
                schedule,
            )
    else:
        query_channels = {}
        servers: dict[int, DataSourceServer] = {}
        for index in range(1, view.n_relations + 1):
            name = view.name_of(index)
            initial = workload.initial_states[name]
            if config.backend == "sqlite":
                backend = SqliteBackend(view, index, initial)
            else:
                backend = MemoryBackend(view, index, initial)
            backends.append(backend)
            to_wh = Channel(
                sim, f"{name}->wh", inbox, _latency(config, rngs, f"{name}-up"),
                metrics, enforce_fifo=config.fifo_channels,
            )
            server = DataSourceServer(
                sim,
                name,
                index,
                backend,
                to_wh,
                query_service_time=config.query_service_time,
                trace=trace if config.trace else None,
            )
            server.add_update_listener(recorder.on_source_update)
            recorder.register_source(index, name, initial)
            query_channels[index] = Channel(
                sim,
                f"wh->{name}",
                server.query_inbox,
                _latency(config, rngs, f"{name}-down"),
                metrics,
                enforce_fifo=config.fifo_channels,
            )
            servers[index] = server
        for index, schedule in sorted(workload.schedules.items()):
            # processes are owned by the simulator
            ScheduledUpdater(
                sim, view.name_of(index), servers[index].local_update, schedule
            )

    warehouse = info.cls(
        sim,
        view,
        query_channels,
        initial_view=view.evaluate(workload.initial_states),
        recorder=recorder,
        metrics=metrics,
        trace=trace if config.trace else None,
        inbox=inbox,
        locality=build_locality(config, [view], workload.initial_states),
        **algorithm_kwargs(config),
    )

    if warehouse_hook is not None:
        warehouse_hook(warehouse)

    started = _time.perf_counter()
    sim.run(max_events=config.max_events)
    wall = _time.perf_counter() - started
    record_predicate_cache_delta(metrics, predicate_stats_before)

    result = RunResult(
        config=config,
        info=info,
        final_view=warehouse.current_view(),
        sim_time=sim.now,
        wall_seconds=wall,
        metrics=metrics,
        recorder=recorder,
        warehouse=warehouse,
        trace=trace if config.trace else None,
    )
    if config.check_consistency:
        for level in (
            ConsistencyLevel.CONVERGENCE,
            ConsistencyLevel.WEAK,
            ConsistencyLevel.STRONG,
            ConsistencyLevel.COMPLETE,
        ):
            result.consistency[level] = recorder.check(
                level, max_vectors=config.max_check_vectors
            )
        result.classified_level = recorder.classify(
            max_vectors=config.max_check_vectors
        )
    for backend in backends:
        backend.close()
    return result


__all__ = [
    "algorithm_kwargs",
    "build_latency_model",
    "build_workload",
    "record_predicate_cache_delta",
    "run_experiment",
]
