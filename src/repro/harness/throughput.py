"""The end-to-end throughput regression suite (``BENCH_throughput.json``).

One suite run measures sustained update throughput for per-update SWEEP
versus the batched sweep scheduler on both runtime transports, in two
arrival regimes:

* **paced** -- the workload of ``results/runtime_throughput.txt``
  (3 sources, 40 updates, mean interarrival 2.0, time scale 0.001):
  arrivals dominate, so this regime pins protocol behaviour (installs,
  message cost, consistency) rather than raw speed.
* **saturated** -- the same generator time-compressed until the pending
  queue is never empty: this is where batching pays, because every drain
  amortizes one composite sweep over the whole backlog.

The recorded pre-batching baseline is ``BASELINE_UPDATES_PER_SEC`` (the
``local`` row of ``results/runtime_throughput.txt``); the acceptance
floor is ``SPEEDUP_TARGET`` times that, demanded of the batched scheduler
in the saturated regime on the local transport.

:func:`compare_reports` implements the CI gate: any cell of a fresh run
more than ``tolerance`` slower than the same cell of a checked-in
baseline report is a regression.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any

from repro.harness.config import ExperimentConfig
from repro.harness.report import format_table

#: The `local` row of results/runtime_throughput.txt before batching.
BASELINE_UPDATES_PER_SEC = 415.1
#: Required speedup of saturated batched-sweep over that baseline.
SPEEDUP_TARGET = 3.0

#: Arrival regimes: same seeded generator, different replay speeds.
MODES: dict[str, dict[str, Any]] = {
    "paced": {
        "n_updates": 40,
        "mean_interarrival": 2.0,
        "time_scale": 0.001,
    },
    "saturated": {
        "n_updates": 200,
        "mean_interarrival": 0.01,
        "time_scale": 0.0001,
    },
}

ALGORITHMS = ("sweep", "batched-sweep", "pipelined-sweep")
TRANSPORTS = ("local", "tcp")

#: Sharded-runtime bench: a saturated multi-view workload whose per-step
#: cost is the query service time, the quantity sharding divides.  With 8
#: views on one shard every sweep step pays 8 joins serially; split 2 per
#: shard across 4 shards the per-shard pipelines overlap.  Virtual units
#: deliberately dwarf transport latency so the measured ratio isolates
#: the sharding effect (every shard count runs the identical workload).
SHARD_MODE: dict[str, Any] = {
    "n_updates": 60,
    "mean_interarrival": 0.05,
    "time_scale": 0.002,
    "n_views": 8,
    "query_service_time": 1.0,
}
SHARD_COUNTS = (1, 2, 4)
QUICK_SHARD_COUNTS = (1, 2)
#: Required throughput ratio of shards=4 over shards=1 (shards=2 in quick
#: mode is gated via the recorded speedup ratios like every other cell).
SHARD_SPEEDUP_TARGET = 1.8

#: Maximum fraction of throughput the durability subsystem may cost on
#: the saturated multi-view workload (checkpoints + WAL fsyncs versus the
#: identical run with durability off).
DURABLE_OVERHEAD_TARGET = 0.15

#: Maximum fraction of throughput a hot standby per shard may cost
#: versus the identical replica-less cell.  Standbys ride duplicate
#: fanout of the same channels and never touch the answer path, so the
#: overhead should be the extra install work only.
REPLICA_OVERHEAD_TARGET = 0.15

#: The locality row family re-runs the saturated regime with every source
#: covered by a warehouse-local auxiliary copy (``--locality=aux``): a
#: covered sweep step answers its own query, so the gated quantities are
#: the throughput ratio and the message reduction of each ``+aux`` row
#: over its same-run remote twin (in-run ratios transfer across machines;
#: absolute rates do not).  The recorded reference for the headline cell
#: (saturated/tcp/sweep, locality off) is ``398.9`` upd/s.
LOCALITY_SPEEDUP_TARGET = 2.0
LOCALITY_MESSAGE_REDUCTION_TARGET = 3.0


def run_cell(
    mode: str,
    transport: str,
    algorithm: str,
    n_updates: int,
    mean_interarrival: float,
    time_scale: float,
    timeout: float = 120.0,
    locality: str = "off",
) -> dict:
    """One (mode, transport, algorithm) measurement as a flat row dict."""
    from repro.runtime import run_distributed

    config = ExperimentConfig(
        algorithm=algorithm,
        n_sources=3,
        n_updates=n_updates,
        seed=7,
        mean_interarrival=mean_interarrival,
        locality=locality,
    )
    result = run_distributed(
        config, transport=transport, time_scale=time_scale, timeout=timeout
    )
    counters = result.metrics.counters
    delivered = result.recorder.updates_delivered
    level = result.classified_level
    return {
        "mode": mode,
        "transport": transport,
        "algorithm": algorithm,
        "locality": locality,
        "updates": delivered,
        "installs": counters.get("installs", 0),
        "updates_installed": counters.get("updates_installed", 0),
        "messages_total": counters.get("messages_total", 0),
        "aux_hits": counters.get("locality_aux_hits", 0),
        "wall_seconds": round(result.wall_seconds, 4),
        "updates_per_sec": round(delivered / result.wall_seconds, 1),
        "consistency": level.name.lower() if level is not None else "none",
    }


def run_shard_cell(
    n_shards: int,
    n_updates: int,
    mean_interarrival: float,
    time_scale: float,
    n_views: int,
    query_service_time: float,
    timeout: float = 120.0,
    durable: bool = False,
    replicas: int = 0,
) -> dict:
    """One sharded-runtime measurement (always the same workload).

    The row only counts if every view passes the oracle: ``consistency``
    records the *weakest* per-view verdict across all shards, and
    :func:`compare_reports` fails the run when it differs from the
    baseline's (``complete``), so a sharded run that trades correctness
    for speed shows up as a regression, not a win.
    """
    from repro.runtime import run_sharded

    config = ExperimentConfig(
        algorithm="sweep",
        n_sources=3,
        n_updates=n_updates,
        seed=7,
        mean_interarrival=mean_interarrival,
        n_views=n_views,
        query_service_time=query_service_time,
    )
    kwargs = {}
    if durable:
        import tempfile

        stack = tempfile.TemporaryDirectory(prefix="repro-bench-durable-")
        kwargs["durable_dir"] = stack.name
    else:
        stack = None
    try:
        result = run_sharded(
            config,
            n_shards=n_shards,
            transport="local",
            time_scale=time_scale,
            timeout=timeout,
            strategy="round-robin",
            replicas=replicas,
            **kwargs,
        )
    finally:
        if stack is not None:
            stack.cleanup()
    counters = result.metrics.counters
    level = result.min_level()
    suffix = ("+durable" if durable else "") + (
        f"+r{replicas}" if replicas else ""
    )
    # Distinct source updates reflected by *every* view.  The raw
    # ``updates_installed`` counter is shared across shards, so an update
    # fanned out to k shards used to count k times (60 updates showed as
    # 240 at shards=4); the per-view recorders are the truthful count.
    installed_per_view = []
    for name, rec in result.recorders.items():
        if name not in result.final_views:
            continue
        snaps = list(rec.snapshots)
        installed_per_view.append(
            sum((snaps[-1].claimed_vector or {}).values()) if snaps else 0
        )
    return {
        "mode": "sharded",
        "transport": "local",
        "algorithm": f"sweep@shards={n_shards}{suffix}",
        "locality": "off",
        "updates": result.updates_total,
        "installs": result.installs,
        "updates_installed": min(installed_per_view, default=0),
        "installs_by_shard": {
            str(shard): count
            for shard, count in result.installs_by_shard.items()
        },
        "messages_total": counters.get("messages_total", 0),
        "wall_seconds": round(result.wall_seconds, 4),
        "updates_per_sec": round(result.updates_per_sec, 1),
        "consistency": level.name.lower() if result.levels else "unchecked",
        "checkpoints": counters.get("checkpoints_written", 0),
    }


def run_suite(quick: bool = False) -> list[dict]:
    """All suite rows; ``quick`` drops the paced regime and shards=4.

    Quick mode keeps the saturated workload identical to the full suite
    so its rows stay comparable, cell for cell, with a checked-in full
    report.
    """
    rows = []
    for mode, params in MODES.items():
        if quick and mode != "saturated":
            continue
        for transport in TRANSPORTS:
            for algorithm in ALGORITHMS:
                rows.append(run_cell(mode, transport, algorithm, **params))
    # Locality family: the saturated regime with every source covered.
    for transport in TRANSPORTS:
        for algorithm in ALGORITHMS:
            rows.append(
                run_cell(
                    "saturated",
                    transport,
                    algorithm,
                    locality="aux",
                    **MODES["saturated"],
                )
            )
    for n_shards in QUICK_SHARD_COUNTS if quick else SHARD_COUNTS:
        rows.append(run_shard_cell(n_shards, **SHARD_MODE))
    # Durable mode re-runs the shards=1 cell with checkpoints + WAL on;
    # the gated quantity is its throughput relative to the plain cell.
    rows.append(run_shard_cell(1, durable=True, **SHARD_MODE))
    # Hot-standby mode re-runs shard cells with one replica per shard;
    # the gated quantity is each ``+r1`` row's throughput relative to
    # its same-run replica-less twin.
    rows.append(run_shard_cell(2, replicas=1, **SHARD_MODE))
    if not quick:
        rows.append(run_shard_cell(4, replicas=1, **SHARD_MODE))
    return rows


def _row_key(row: dict) -> str:
    key = f"{row['mode']}/{row['transport']}/{row['algorithm']}"
    if row.get("locality", "off") != "off":
        key += f"+{row['locality']}"
    return key


def speedups(rows: list[dict]) -> dict[str, float]:
    """Batched-over-per-update throughput ratio per (mode, transport)."""
    by_key = {_row_key(r): r for r in rows}
    out = {}
    for mode in MODES:
        for transport in TRANSPORTS:
            base = by_key.get(f"{mode}/{transport}/sweep")
            fast = by_key.get(f"{mode}/{transport}/batched-sweep")
            if base and fast and base["updates_per_sec"]:
                out[f"{mode}/{transport}"] = round(
                    fast["updates_per_sec"] / base["updates_per_sec"], 2
                )
    for transport in TRANSPORTS:
        for algorithm in ALGORITHMS:
            off = by_key.get(f"saturated/{transport}/{algorithm}")
            aux = by_key.get(f"saturated/{transport}/{algorithm}+aux")
            if off and aux and off["updates_per_sec"]:
                out[f"locality/{transport}/{algorithm}"] = round(
                    aux["updates_per_sec"] / off["updates_per_sec"], 2
                )
    shard_base = by_key.get("sharded/local/sweep@shards=1")
    if shard_base and shard_base["updates_per_sec"]:
        for row in rows:
            if row["mode"] != "sharded" or row is shard_base:
                continue
            count = row["algorithm"].partition("@")[2]  # "shards=N[+durable]"
            out[f"sharded/local/{count}"] = round(
                row["updates_per_sec"] / shard_base["updates_per_sec"], 2
            )
    return out


def message_reductions(rows: list[dict]) -> dict[str, float]:
    """messages_total of each remote row over its ``+aux`` twin (>1 is
    fewer messages with locality on)."""
    by_key = {_row_key(r): r for r in rows}
    out = {}
    for transport in TRANSPORTS:
        for algorithm in ALGORITHMS:
            off = by_key.get(f"saturated/{transport}/{algorithm}")
            aux = by_key.get(f"saturated/{transport}/{algorithm}+aux")
            if off and aux and aux["messages_total"]:
                out[f"locality/{transport}/{algorithm}"] = round(
                    off["messages_total"] / aux["messages_total"], 2
                )
    return out


def locality_problems(
    rows: list[dict],
    min_speedup: float = LOCALITY_SPEEDUP_TARGET,
    min_message_reduction: float = LOCALITY_MESSAGE_REDUCTION_TARGET,
) -> list[str]:
    """The locality acceptance gate, as regression messages.

    The headline cell (saturated/tcp/sweep) must be at least
    ``min_speedup`` faster and ``min_message_reduction`` lighter on the
    wire than its same-run remote twin; every per-update ``+aux`` pair
    must cut messages by at least 2x, while batching schedulers -- whose
    remote twin already collapsed the round trips, and whose all-covered
    batches legitimately degenerate to singleton installs -- must simply
    not get heavier; and no pair may lose its remote twin's consistency
    verdict.
    """
    problems = []
    ratios = speedups(rows)
    reductions = message_reductions(rows)
    head = "locality/tcp/sweep"
    if head not in ratios:
        problems.append(f"{head}: locality rows missing from the suite")
        return problems
    if ratios[head] < min_speedup:
        problems.append(
            f"{head}: {ratios[head]}x throughput is below the"
            f" {min_speedup}x locality floor"
        )
    if reductions.get(head, 0.0) < min_message_reduction:
        problems.append(
            f"{head}: {reductions.get(head)}x message reduction is below"
            f" the {min_message_reduction}x locality floor"
        )
    order = ("none", "convergence", "weak", "strong", "complete")
    by_key = {_row_key(r): r for r in rows}
    for key, reduction in reductions.items():
        _, transport, algorithm = key.split("/")
        floor = 1.0 if "batched" in algorithm else 2.0
        if reduction < floor:
            problems.append(
                f"{key}: only {reduction}x message reduction"
                f" (< {floor:g}x)"
            )
        off = by_key[f"saturated/{transport}/{algorithm}"]
        aux = by_key[f"saturated/{transport}/{algorithm}+aux"]
        if order.index(aux["consistency"]) < order.index(off["consistency"]):
            problems.append(
                f"{key}: consistency dropped from {off['consistency']!r}"
                f" to {aux['consistency']!r} with locality on"
            )
    return problems


def durable_overhead(rows: list[dict]) -> float | None:
    """Fractional throughput lost to durability on the shards=1 cell."""
    by_key = {_row_key(r): r for r in rows}
    plain = by_key.get("sharded/local/sweep@shards=1")
    durable = by_key.get("sharded/local/sweep@shards=1+durable")
    if not plain or not durable or not plain["updates_per_sec"]:
        return None
    return round(1.0 - durable["updates_per_sec"] / plain["updates_per_sec"], 3)


def replica_overhead(rows: list[dict]) -> float | None:
    """Worst fractional throughput lost to hot standbys, over all
    ``+r<K>`` rows versus their same-run replica-less twins."""
    by_key = {_row_key(r): r for r in rows}
    worst = None
    for key, row in by_key.items():
        base_key, sep, _ = key.rpartition("+r")
        if not sep or not base_key.startswith("sharded/"):
            continue
        plain = by_key.get(base_key)
        if not plain or not plain["updates_per_sec"]:
            continue
        cost = round(1.0 - row["updates_per_sec"] / plain["updates_per_sec"], 3)
        if worst is None or cost > worst:
            worst = cost
    return worst


def build_report(rows: list[dict], quick: bool = False) -> dict:
    """The JSON document shape written to ``BENCH_throughput.json``."""
    return {
        "suite": "throughput",
        "quick": quick,
        "python": platform.python_version(),
        "baseline_updates_per_sec": BASELINE_UPDATES_PER_SEC,
        "speedup_target": SPEEDUP_TARGET,
        "durable_overhead_target": DURABLE_OVERHEAD_TARGET,
        "replica_overhead_target": REPLICA_OVERHEAD_TARGET,
        "locality_speedup_target": LOCALITY_SPEEDUP_TARGET,
        "locality_message_reduction_target": LOCALITY_MESSAGE_REDUCTION_TARGET,
        "rows": rows,
        "speedups": speedups(rows),
        "message_reductions": message_reductions(rows),
        "durable_overhead": durable_overhead(rows),
        "replica_overhead": replica_overhead(rows),
    }


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def load_report(path: str | Path) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def compare_reports(
    current: dict, baseline: dict, tolerance: float = 0.30
) -> list[str]:
    """Regression messages versus a checked-in baseline report.

    The gated quantity is each (mode, transport) *speedup ratio* of
    batched over per-update sweep, not the raw update rates: ratios are
    taken within one run on one machine, so they transfer between the
    machine that produced the baseline and the CI runner, while absolute
    rates do not.  Protocol integrity (every update installed,
    consistency level preserved) is compared cell by cell as well --
    that part is machine-independent by construction.
    """
    problems = []
    overhead = current.get("durable_overhead")
    if overhead is not None and overhead > DURABLE_OVERHEAD_TARGET:
        problems.append(
            f"durable_overhead: {overhead:.1%} throughput cost exceeds the"
            f" {DURABLE_OVERHEAD_TARGET:.0%} budget"
        )
    r_overhead = current.get("replica_overhead")
    if r_overhead is not None and r_overhead > REPLICA_OVERHEAD_TARGET:
        problems.append(
            f"replica_overhead: {r_overhead:.1%} throughput cost exceeds"
            f" the {REPLICA_OVERHEAD_TARGET:.0%} hot-standby budget"
        )
    base_speedups = baseline.get("speedups", {})
    for key, ratio in current.get("speedups", {}).items():
        base = base_speedups.get(key)
        if base is None:
            continue
        floor = base * (1.0 - tolerance)
        if ratio < floor:
            problems.append(
                f"speedup[{key}]: {ratio}x is more than {tolerance:.0%}"
                f" below baseline {base}x"
            )
    base_rows = {_row_key(r): r for r in baseline.get("rows", [])}
    for row in current.get("rows", []):
        base = base_rows.get(_row_key(row))
        if base is None:
            continue
        if row["updates_installed"] != base["updates_installed"]:
            problems.append(
                f"{_row_key(row)}: installed {row['updates_installed']}"
                f" updates, baseline installed {base['updates_installed']}"
            )
        if row["consistency"] != base["consistency"]:
            problems.append(
                f"{_row_key(row)}: consistency {row['consistency']!r},"
                f" baseline {base['consistency']!r}"
            )
    return problems


def format_suite(rows: list[dict]) -> str:
    ratio = speedups(rows)
    table = format_table(
        ["mode", "transport", "algorithm", "locality", "updates", "installs",
         "wall s", "upd/s", "msgs", "consistency"],
        [
            [
                row["mode"],
                row["transport"],
                row["algorithm"],
                row.get("locality", "off"),
                row["updates"],
                row["installs"],
                row["wall_seconds"],
                row["updates_per_sec"],
                row["messages_total"],
                row["consistency"],
            ]
            for row in rows
        ],
        title="Update throughput: per-update SWEEP vs batched sweep",
    )
    lines = [table, ""]
    for key, value in sorted(ratio.items()):
        lines.append(f"speedup[{key}] = {value}x")
    for key, value in sorted(message_reductions(rows).items()):
        lines.append(f"message reduction[{key}] = {value}x")
    lines.append(
        f"floor: saturated/local batched >= {SPEEDUP_TARGET}x"
        f" {BASELINE_UPDATES_PER_SEC} upd/s"
        f" = {SPEEDUP_TARGET * BASELINE_UPDATES_PER_SEC:.0f} upd/s"
    )
    lines.append(
        f"floor: sharded shards=4 >= {SHARD_SPEEDUP_TARGET}x shards=1 on"
        " the saturated multi-view workload (full suite)"
    )
    overhead = durable_overhead(rows)
    if overhead is not None:
        lines.append(
            f"durable overhead = {overhead:.1%} (budget"
            f" {DURABLE_OVERHEAD_TARGET:.0%} of shards=1 throughput)"
        )
    r_overhead = replica_overhead(rows)
    if r_overhead is not None:
        lines.append(
            f"hot-standby overhead = {r_overhead:.1%} (budget"
            f" {REPLICA_OVERHEAD_TARGET:.0%} of the replica-less twin)"
        )
    return "\n".join(lines)


__all__ = [
    "ALGORITHMS",
    "BASELINE_UPDATES_PER_SEC",
    "DURABLE_OVERHEAD_TARGET",
    "LOCALITY_MESSAGE_REDUCTION_TARGET",
    "LOCALITY_SPEEDUP_TARGET",
    "MODES",
    "QUICK_SHARD_COUNTS",
    "REPLICA_OVERHEAD_TARGET",
    "SHARD_COUNTS",
    "SHARD_MODE",
    "SHARD_SPEEDUP_TARGET",
    "SPEEDUP_TARGET",
    "TRANSPORTS",
    "build_report",
    "compare_reports",
    "durable_overhead",
    "format_suite",
    "load_report",
    "locality_problems",
    "message_reductions",
    "replica_overhead",
    "run_cell",
    "run_shard_cell",
    "run_suite",
    "speedups",
    "write_report",
]
