"""The end-to-end throughput regression suite (``BENCH_throughput.json``).

One suite run measures sustained update throughput for per-update SWEEP
versus the batched sweep scheduler on both runtime transports, in two
arrival regimes:

* **paced** -- the workload of ``results/runtime_throughput.txt``
  (3 sources, 40 updates, mean interarrival 2.0, time scale 0.001):
  arrivals dominate, so this regime pins protocol behaviour (installs,
  message cost, consistency) rather than raw speed.
* **saturated** -- the same generator time-compressed until the pending
  queue is never empty: this is where batching pays, because every drain
  amortizes one composite sweep over the whole backlog.

The recorded pre-batching baseline is ``BASELINE_UPDATES_PER_SEC`` (the
``local`` row of ``results/runtime_throughput.txt``); the acceptance
floor is ``SPEEDUP_TARGET`` times that, demanded of the batched scheduler
in the saturated regime on the local transport.

:func:`compare_reports` implements the CI gate: any cell of a fresh run
more than ``tolerance`` slower than the same cell of a checked-in
baseline report is a regression.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any

from repro.harness.config import ExperimentConfig
from repro.harness.report import format_table

#: The `local` row of results/runtime_throughput.txt before batching.
BASELINE_UPDATES_PER_SEC = 415.1
#: Required speedup of saturated batched-sweep over that baseline.
SPEEDUP_TARGET = 3.0

#: Arrival regimes: same seeded generator, different replay speeds.
MODES: dict[str, dict[str, Any]] = {
    "paced": {
        "n_updates": 40,
        "mean_interarrival": 2.0,
        "time_scale": 0.001,
    },
    "saturated": {
        "n_updates": 200,
        "mean_interarrival": 0.01,
        "time_scale": 0.0001,
    },
}

ALGORITHMS = ("sweep", "batched-sweep", "pipelined-sweep")
TRANSPORTS = ("local", "tcp")

#: Sharded-runtime bench: a saturated multi-view workload whose per-step
#: cost is the query service time, the quantity sharding divides.  With 8
#: views on one shard every sweep step pays 8 joins serially; split 2 per
#: shard across 4 shards the per-shard pipelines overlap.  Virtual units
#: deliberately dwarf transport latency so the measured ratio isolates
#: the sharding effect (every shard count runs the identical workload).
SHARD_MODE: dict[str, Any] = {
    "n_updates": 60,
    "mean_interarrival": 0.05,
    "time_scale": 0.002,
    "n_views": 8,
    "query_service_time": 1.0,
}
SHARD_COUNTS = (1, 2, 4)
QUICK_SHARD_COUNTS = (1, 2)
#: Required throughput ratio of shards=4 over shards=1 (shards=2 in quick
#: mode is gated via the recorded speedup ratios like every other cell).
SHARD_SPEEDUP_TARGET = 1.8

#: Maximum fraction of throughput the durability subsystem may cost on
#: the saturated multi-view workload (checkpoints + WAL fsyncs versus the
#: identical run with durability off).
DURABLE_OVERHEAD_TARGET = 0.15

#: Maximum fraction of throughput a hot standby per shard may cost
#: versus the identical replica-less cell.  Standbys ride duplicate
#: fanout of the same channels and never touch the answer path, so the
#: overhead should be the extra install work only.
REPLICA_OVERHEAD_TARGET = 0.15

#: Maximum fraction of throughput one live view migration may cost on
#: the saturated multi-view workload: a ``+rebal`` row re-runs its twin
#: with one mid-run drain/handoff/re-route (seal the donor, ship the
#: handoff blob, replay the gap on the recipient) and must stay within
#: this budget of the static-plan cell.  The pair runs a 9-view family
#: so the move is *load-neutral* -- the donor starts one view heavier
#: (3/2/2/2 at four shards) and hands that view to a lighter shard, so
#: the bottleneck shard serves 3 views before and after and the measured
#: cost is the protocol (seal, handoff, gap replay), not placement skew.
REBALANCE_OVERHEAD_TARGET = 0.15
REBALANCE_MODE: dict[str, Any] = {**SHARD_MODE, "n_views": 9}

#: The locality row family re-runs the saturated regime with every source
#: covered by a warehouse-local auxiliary copy (``--locality=aux``): a
#: covered sweep step answers its own query, so the gated quantities are
#: the throughput ratio and the message reduction of each ``+aux`` row
#: over its same-run remote twin (in-run ratios transfer across machines;
#: absolute rates do not).  The recorded reference for the headline cell
#: (saturated/tcp/sweep, locality off) is ``398.9`` upd/s.
LOCALITY_SPEEDUP_TARGET = 2.0
LOCALITY_MESSAGE_REDUCTION_TARGET = 3.0

#: The codec row family pins the binary wire codec (v3) against the JSON
#: flat-row codec (v2) on the message-bound saturated sweep workload --
#: same run, same machine, so the ratios transfer to CI.  v3 earns its
#: keep by either delivering updates faster over saturated TCP or by
#: shrinking the pre-compression bytes shipped per update (either arm
#: passes the gate; consistency must be unchanged either way).
CODEC_VERSIONS = (2, 3)
CODEC_SPEEDUP_TARGET = 1.3
CODEC_BYTES_REDUCTION_TARGET = 2.0


def run_cell(
    mode: str,
    transport: str,
    algorithm: str,
    n_updates: int,
    mean_interarrival: float,
    time_scale: float,
    timeout: float = 120.0,
    locality: str = "off",
    codec_version: int | None = None,
) -> dict:
    """One (mode, transport, algorithm) measurement as a flat row dict."""
    from repro.runtime import run_distributed
    from repro.runtime.tcp import TcpChannelConfig

    config = ExperimentConfig(
        algorithm=algorithm,
        n_sources=3,
        n_updates=n_updates,
        seed=7,
        mean_interarrival=mean_interarrival,
        locality=locality,
    )
    tcp_config = (
        None
        if codec_version is None
        else TcpChannelConfig(codec_version=codec_version)
    )
    result = run_distributed(
        config,
        transport=transport,
        time_scale=time_scale,
        timeout=timeout,
        tcp_config=tcp_config,
    )
    counters = result.metrics.counters
    delivered = result.recorder.updates_delivered
    level = result.classified_level
    return {
        "mode": mode,
        "transport": transport,
        "algorithm": algorithm,
        "locality": locality,
        "codec": codec_version,
        "updates": delivered,
        "installs": counters.get("installs", 0),
        "updates_installed": counters.get("updates_installed", 0),
        "messages_total": counters.get("messages_total", 0),
        "aux_hits": counters.get("locality_aux_hits", 0),
        "wall_seconds": round(result.wall_seconds, 4),
        "updates_per_sec": round(delivered / result.wall_seconds, 1),
        **_wire_columns(counters, delivered),
        "consistency": level.name.lower() if level is not None else "none",
    }


def _wire_columns(counters: dict, delivered: int) -> dict:
    """Wire-cost columns from the sender-side channel counters.

    ``bytes_per_update`` divides the *pre-compression* serialized bytes
    by the delivered updates: that is the codec's own footprint, with the
    zlib frame compressor factored out (``wire_bytes_total`` keeps the
    post-compression truth).  All three are zero on the local transport.
    """
    precompress = counters.get("wire_bytes_precompress", 0)
    return {
        "wire_bytes_total": counters.get("wire_bytes_total", 0),
        "bytes_per_update": (
            round(precompress / delivered, 1) if delivered else 0.0
        ),
        "encode_seconds": round(counters.get("encode_ns", 0) / 1e9, 4),
    }


def run_shard_cell(
    n_shards: int,
    n_updates: int,
    mean_interarrival: float,
    time_scale: float,
    n_views: int,
    query_service_time: float,
    timeout: float = 120.0,
    durable: bool = False,
    replicas: int = 0,
    transport: str = "local",
    codec_version: int | None = None,
    fsync_batch: int = 8,
    rebalance: bool = False,
) -> dict:
    """One sharded-runtime measurement (always the same workload).

    The row only counts if every view passes the oracle: ``consistency``
    records the *weakest* per-view verdict across all shards, and
    :func:`compare_reports` fails the run when it differs from the
    baseline's (``complete``), so a sharded run that trades correctness
    for speed shows up as a regression, not a win.
    """
    from repro.runtime import RebalanceSpec, run_sharded
    from repro.runtime.tcp import TcpChannelConfig

    config = ExperimentConfig(
        algorithm="sweep",
        n_sources=3,
        n_updates=n_updates,
        seed=7,
        mean_interarrival=mean_interarrival,
        n_views=n_views,
        query_service_time=query_service_time,
    )
    kwargs = {}
    if durable:
        import tempfile

        stack = tempfile.TemporaryDirectory(prefix="repro-bench-durable-")
        kwargs["durable_dir"] = stack.name
    else:
        stack = None
    tcp_config = (
        None
        if codec_version is None
        else TcpChannelConfig(codec_version=codec_version)
    )
    if rebalance:
        # Round-robin places family view ``i`` on shard ``i % n_shards``,
        # so the donor's first non-primary view is ``V#s<n_shards>``;
        # firing at half the workload lands the migration mid-saturation.
        kwargs["rebalance"] = RebalanceSpec(
            view=f"V#s{n_shards}",
            to_shard=1 % n_shards,
            after_deliveries=max(1, n_updates // 2),
        )
    try:
        result = run_sharded(
            config,
            n_shards=n_shards,
            transport=transport,
            time_scale=time_scale,
            timeout=timeout,
            tcp_config=tcp_config,
            strategy="round-robin",
            fsync_batch=fsync_batch,
            replicas=replicas,
            **kwargs,
        )
    finally:
        if stack is not None:
            stack.cleanup()
    counters = result.metrics.counters
    level = result.min_level()
    suffix = (
        ("+durable" if durable else "")
        + (f"+fsync{fsync_batch}" if fsync_batch != 8 else "")
        + (f"+r{replicas}" if replicas else "")
        + (f"+v{n_views}" if n_views != SHARD_MODE["n_views"] else "")
        + ("+rebal" if rebalance else "")
    )
    # Distinct source updates reflected by *every* view.  The raw
    # ``updates_installed`` counter is shared across shards, so an update
    # fanned out to k shards used to count k times (60 updates showed as
    # 240 at shards=4); the per-view recorders are the truthful count.
    installed_per_view = []
    for name, rec in result.recorders.items():
        if name not in result.final_views:
            continue
        snaps = list(rec.snapshots)
        installed_per_view.append(
            sum((snaps[-1].claimed_vector or {}).values()) if snaps else 0
        )
    return {
        "mode": "sharded",
        "transport": transport,
        "algorithm": f"sweep@shards={n_shards}{suffix}",
        "locality": "off",
        "codec": codec_version,
        "updates": result.updates_total,
        "installs": result.installs,
        "updates_installed": min(installed_per_view, default=0),
        "installs_by_shard": {
            str(shard): count
            for shard, count in result.installs_by_shard.items()
        },
        "messages_total": counters.get("messages_total", 0),
        "wall_seconds": round(result.wall_seconds, 4),
        "updates_per_sec": round(result.updates_per_sec, 1),
        **_wire_columns(counters, result.updates_total),
        "consistency": level.name.lower() if result.levels else "unchecked",
        "checkpoints": counters.get("checkpoints_written", 0),
    }


def run_suite(quick: bool = False) -> list[dict]:
    """All suite rows; ``quick`` drops the paced regime and shards=4.

    Quick mode keeps the saturated workload identical to the full suite
    so its rows stay comparable, cell for cell, with a checked-in full
    report.
    """
    rows = []
    for mode, params in MODES.items():
        if quick and mode != "saturated":
            continue
        for transport in TRANSPORTS:
            for algorithm in ALGORITHMS:
                rows.append(run_cell(mode, transport, algorithm, **params))
    # Locality family: the saturated regime with every source covered.
    for transport in TRANSPORTS:
        for algorithm in ALGORITHMS:
            rows.append(
                run_cell(
                    "saturated",
                    transport,
                    algorithm,
                    locality="aux",
                    **MODES["saturated"],
                )
            )
    for n_shards in QUICK_SHARD_COUNTS if quick else SHARD_COUNTS:
        rows.append(run_shard_cell(n_shards, **SHARD_MODE))
    # Durable mode re-runs the shards=1 cell with checkpoints + WAL on;
    # the gated quantity is its throughput relative to the plain cell.
    rows.append(run_shard_cell(1, durable=True, **SHARD_MODE))
    # Hot-standby mode re-runs shard cells with one replica per shard;
    # the gated quantity is each ``+r1`` row's throughput relative to
    # its same-run replica-less twin.
    rows.append(run_shard_cell(2, replicas=1, **SHARD_MODE))
    if not quick:
        rows.append(run_shard_cell(4, replicas=1, **SHARD_MODE))
    # Rebalance family: each ``+rebal`` cell performs one mid-run view
    # migration (drain/handoff/re-route) on the load-neutral 9-view
    # workload; the gated quantity is its throughput relative to the
    # same-workload static-plan twin right above it.
    rows.append(run_shard_cell(2, **REBALANCE_MODE))
    rows.append(run_shard_cell(2, rebalance=True, **REBALANCE_MODE))
    if not quick:
        rows.append(run_shard_cell(4, **REBALANCE_MODE))
        rows.append(run_shard_cell(4, rebalance=True, **REBALANCE_MODE))
    # Codec family: v2 (JSON flat rows) vs v3 (binary kernel) on the
    # message-bound saturated sweep, plain on both transports and with
    # the durable path on (checkpoint + WAL share the same kernel, so
    # the durable pair measures the whole single-serialization claim).
    for transport in TRANSPORTS:
        for codec in CODEC_VERSIONS:
            rows.append(
                run_cell(
                    "saturated",
                    transport,
                    "sweep",
                    codec_version=codec,
                    **MODES["saturated"],
                )
            )
    for codec in CODEC_VERSIONS:
        rows.append(
            run_shard_cell(
                1,
                durable=True,
                transport="tcp",
                codec_version=codec,
                **SHARD_MODE,
            )
        )
    # Group commit: the durable shards=1 cell fsyncing once per 32
    # appended updates instead of the default 8.
    rows.append(run_shard_cell(1, durable=True, fsync_batch=32, **SHARD_MODE))
    return rows


def _row_key(row: dict) -> str:
    key = f"{row['mode']}/{row['transport']}/{row['algorithm']}"
    if row.get("locality", "off") != "off":
        key += f"+{row['locality']}"
    if row.get("codec"):
        key += f"@codec={row['codec']}"
    return key


def speedups(rows: list[dict]) -> dict[str, float]:
    """Batched-over-per-update throughput ratio per (mode, transport)."""
    by_key = {_row_key(r): r for r in rows}
    out = {}
    for mode in MODES:
        for transport in TRANSPORTS:
            base = by_key.get(f"{mode}/{transport}/sweep")
            fast = by_key.get(f"{mode}/{transport}/batched-sweep")
            if base and fast and base["updates_per_sec"]:
                out[f"{mode}/{transport}"] = round(
                    fast["updates_per_sec"] / base["updates_per_sec"], 2
                )
    for transport in TRANSPORTS:
        for algorithm in ALGORITHMS:
            off = by_key.get(f"saturated/{transport}/{algorithm}")
            aux = by_key.get(f"saturated/{transport}/{algorithm}+aux")
            if off and aux and off["updates_per_sec"]:
                out[f"locality/{transport}/{algorithm}"] = round(
                    aux["updates_per_sec"] / off["updates_per_sec"], 2
                )
    shard_base = by_key.get("sharded/local/sweep@shards=1")
    if shard_base and shard_base["updates_per_sec"]:
        for row in rows:
            if row["mode"] != "sharded" or row is shard_base:
                continue
            # Codec-family shard cells run over TCP against their own
            # same-codec twin (see codec_efficiency); they are not
            # comparable to the local shards=1 base.
            if row.get("codec") or row["transport"] != "local":
                continue
            count = row["algorithm"].partition("@")[2]  # "shards=N[+durable]"
            out[f"sharded/local/{count}"] = round(
                row["updates_per_sec"] / shard_base["updates_per_sec"], 2
            )
    return out


def message_reductions(rows: list[dict]) -> dict[str, float]:
    """messages_total of each remote row over its ``+aux`` twin (>1 is
    fewer messages with locality on)."""
    by_key = {_row_key(r): r for r in rows}
    out = {}
    for transport in TRANSPORTS:
        for algorithm in ALGORITHMS:
            off = by_key.get(f"saturated/{transport}/{algorithm}")
            aux = by_key.get(f"saturated/{transport}/{algorithm}+aux")
            if off and aux and aux["messages_total"]:
                out[f"locality/{transport}/{algorithm}"] = round(
                    off["messages_total"] / aux["messages_total"], 2
                )
    return out


def locality_problems(
    rows: list[dict],
    min_speedup: float = LOCALITY_SPEEDUP_TARGET,
    min_message_reduction: float = LOCALITY_MESSAGE_REDUCTION_TARGET,
) -> list[str]:
    """The locality acceptance gate, as regression messages.

    The headline cell (saturated/tcp/sweep) must be at least
    ``min_speedup`` faster and ``min_message_reduction`` lighter on the
    wire than its same-run remote twin; every per-update ``+aux`` pair
    must cut messages by at least 2x, while batching schedulers -- whose
    remote twin already collapsed the round trips, and whose all-covered
    batches legitimately degenerate to singleton installs -- must simply
    not get heavier; and no pair may lose its remote twin's consistency
    verdict.
    """
    problems = []
    ratios = speedups(rows)
    reductions = message_reductions(rows)
    head = "locality/tcp/sweep"
    if head not in ratios:
        problems.append(f"{head}: locality rows missing from the suite")
        return problems
    if ratios[head] < min_speedup:
        problems.append(
            f"{head}: {ratios[head]}x throughput is below the"
            f" {min_speedup}x locality floor"
        )
    if reductions.get(head, 0.0) < min_message_reduction:
        problems.append(
            f"{head}: {reductions.get(head)}x message reduction is below"
            f" the {min_message_reduction}x locality floor"
        )
    order = ("none", "convergence", "weak", "strong", "complete")
    by_key = {_row_key(r): r for r in rows}
    for key, reduction in reductions.items():
        _, transport, algorithm = key.split("/")
        floor = 1.0 if "batched" in algorithm else 2.0
        if reduction < floor:
            problems.append(
                f"{key}: only {reduction}x message reduction"
                f" (< {floor:g}x)"
            )
        off = by_key[f"saturated/{transport}/{algorithm}"]
        aux = by_key[f"saturated/{transport}/{algorithm}+aux"]
        if order.index(aux["consistency"]) < order.index(off["consistency"]):
            problems.append(
                f"{key}: consistency dropped from {off['consistency']!r}"
                f" to {aux['consistency']!r} with locality on"
            )
    return problems


def codec_efficiency(rows: list[dict]) -> dict[str, float]:
    """v3-over-v2 ratios for each codec row pair, from one run.

    ``*/speedup`` is delivered updates/sec of the v3 cell over its v2
    twin; ``*/bytes_reduction`` is the v2 cell's pre-compression bytes
    per update over the v3 cell's (>1 means the binary codec ships fewer
    bytes).  Byte ratios only exist where frames exist, i.e. on TCP.
    """
    by_key = {_row_key(r): r for r in rows}
    pairs = {
        "codec/local/sweep": "saturated/local/sweep@codec={v}",
        "codec/tcp/sweep": "saturated/tcp/sweep@codec={v}",
        "codec/tcp/durable": "sharded/tcp/sweep@shards=1+durable@codec={v}",
    }
    out = {}
    for name, template in pairs.items():
        v2 = by_key.get(template.format(v=2))
        v3 = by_key.get(template.format(v=3))
        if not v2 or not v3:
            continue
        if v2["updates_per_sec"]:
            out[f"{name}/speedup"] = round(
                v3["updates_per_sec"] / v2["updates_per_sec"], 2
            )
        if v3.get("bytes_per_update"):
            out[f"{name}/bytes_reduction"] = round(
                v2["bytes_per_update"] / v3["bytes_per_update"], 2
            )
    return out


def codec_problems(
    rows: list[dict],
    min_speedup: float = CODEC_SPEEDUP_TARGET,
    min_bytes_reduction: float = CODEC_BYTES_REDUCTION_TARGET,
) -> list[str]:
    """The codec acceptance gate, as regression messages.

    The headline pair (saturated/tcp/sweep at codec 2 vs 3) must clear
    *either* arm -- ``min_speedup`` on delivered updates/sec or
    ``min_bytes_reduction`` on pre-compression bytes per update -- and
    no codec pair may trade away its v2 twin's consistency verdict or
    install count.
    """
    problems = []
    ratios = codec_efficiency(rows)
    speedup = ratios.get("codec/tcp/sweep/speedup")
    reduction = ratios.get("codec/tcp/sweep/bytes_reduction")
    if speedup is None or reduction is None:
        problems.append("codec/tcp/sweep: codec rows missing from the suite")
        return problems
    if speedup < min_speedup and reduction < min_bytes_reduction:
        problems.append(
            f"codec/tcp/sweep: v3 clears neither gate arm"
            f" ({speedup}x updates/sec < {min_speedup}x and"
            f" {reduction}x bytes/update reduction < {min_bytes_reduction}x)"
        )
    by_key = {_row_key(r): r for r in rows}
    for key, row in by_key.items():
        if not key.endswith("@codec=3"):
            continue
        twin = by_key.get(key.replace("@codec=3", "@codec=2"))
        if twin is None:
            continue
        if row["consistency"] != twin["consistency"]:
            problems.append(
                f"{key}: consistency {row['consistency']!r} differs from"
                f" the codec-2 twin's {twin['consistency']!r}"
            )
        if row["updates_installed"] != twin["updates_installed"]:
            problems.append(
                f"{key}: installed {row['updates_installed']} updates, the"
                f" codec-2 twin installed {twin['updates_installed']}"
            )
    return problems


def durable_overhead(rows: list[dict]) -> float | None:
    """Fractional throughput lost to durability on the shards=1 cell."""
    by_key = {_row_key(r): r for r in rows}
    plain = by_key.get("sharded/local/sweep@shards=1")
    durable = by_key.get("sharded/local/sweep@shards=1+durable")
    if not plain or not durable or not plain["updates_per_sec"]:
        return None
    return round(1.0 - durable["updates_per_sec"] / plain["updates_per_sec"], 3)


def replica_overhead(rows: list[dict]) -> float | None:
    """Worst fractional throughput lost to hot standbys, over all
    ``+r<K>`` rows versus their same-run replica-less twins."""
    by_key = {_row_key(r): r for r in rows}
    worst = None
    for key, row in by_key.items():
        base_key, sep, count = key.rpartition("+r")
        # ``count`` must be the replica count -- "+rebal" rows also
        # split on "+r" but leave a non-numeric tail.
        if not sep or not count.isdigit() or not base_key.startswith("sharded/"):
            continue
        plain = by_key.get(base_key)
        if not plain or not plain["updates_per_sec"]:
            continue
        cost = round(1.0 - row["updates_per_sec"] / plain["updates_per_sec"], 3)
        if worst is None or cost > worst:
            worst = cost
    return worst


def rebalance_overhead(rows: list[dict]) -> float | None:
    """Worst fractional throughput lost to a live migration, over all
    ``+rebal`` rows versus their same-run static-plan twins."""
    by_key = {_row_key(r): r for r in rows}
    worst = None
    for key, row in by_key.items():
        base_key, sep, _ = key.rpartition("+rebal")
        if not sep or not base_key.startswith("sharded/"):
            continue
        plain = by_key.get(base_key)
        if not plain or not plain["updates_per_sec"]:
            continue
        cost = round(1.0 - row["updates_per_sec"] / plain["updates_per_sec"], 3)
        if worst is None or cost > worst:
            worst = cost
    return worst


def build_report(rows: list[dict], quick: bool = False) -> dict:
    """The JSON document shape written to ``BENCH_throughput.json``."""
    return {
        "suite": "throughput",
        "quick": quick,
        "python": platform.python_version(),
        "baseline_updates_per_sec": BASELINE_UPDATES_PER_SEC,
        "speedup_target": SPEEDUP_TARGET,
        "durable_overhead_target": DURABLE_OVERHEAD_TARGET,
        "replica_overhead_target": REPLICA_OVERHEAD_TARGET,
        "rebalance_overhead_target": REBALANCE_OVERHEAD_TARGET,
        "locality_speedup_target": LOCALITY_SPEEDUP_TARGET,
        "locality_message_reduction_target": LOCALITY_MESSAGE_REDUCTION_TARGET,
        "codec_speedup_target": CODEC_SPEEDUP_TARGET,
        "codec_bytes_reduction_target": CODEC_BYTES_REDUCTION_TARGET,
        "rows": rows,
        "speedups": speedups(rows),
        "message_reductions": message_reductions(rows),
        "codec_efficiency": codec_efficiency(rows),
        "durable_overhead": durable_overhead(rows),
        "replica_overhead": replica_overhead(rows),
        "rebalance_overhead": rebalance_overhead(rows),
    }


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def load_report(path: str | Path) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def compare_reports(
    current: dict, baseline: dict, tolerance: float = 0.30
) -> list[str]:
    """Regression messages versus a checked-in baseline report.

    The gated quantity is each (mode, transport) *speedup ratio* of
    batched over per-update sweep, not the raw update rates: ratios are
    taken within one run on one machine, so they transfer between the
    machine that produced the baseline and the CI runner, while absolute
    rates do not.  Protocol integrity (every update installed,
    consistency level preserved) is compared cell by cell as well --
    that part is machine-independent by construction.
    """
    problems = []
    overhead = current.get("durable_overhead")
    if overhead is not None and overhead > DURABLE_OVERHEAD_TARGET:
        problems.append(
            f"durable_overhead: {overhead:.1%} throughput cost exceeds the"
            f" {DURABLE_OVERHEAD_TARGET:.0%} budget"
        )
    r_overhead = current.get("replica_overhead")
    if r_overhead is not None and r_overhead > REPLICA_OVERHEAD_TARGET:
        problems.append(
            f"replica_overhead: {r_overhead:.1%} throughput cost exceeds"
            f" the {REPLICA_OVERHEAD_TARGET:.0%} hot-standby budget"
        )
    m_overhead = current.get("rebalance_overhead")
    if m_overhead is not None and m_overhead > REBALANCE_OVERHEAD_TARGET:
        problems.append(
            f"rebalance_overhead: {m_overhead:.1%} throughput cost exceeds"
            f" the {REBALANCE_OVERHEAD_TARGET:.0%} live-migration budget"
        )
    base_speedups = baseline.get("speedups", {})
    for key, ratio in current.get("speedups", {}).items():
        base = base_speedups.get(key)
        if base is None:
            continue
        floor = base * (1.0 - tolerance)
        if ratio < floor:
            problems.append(
                f"speedup[{key}]: {ratio}x is more than {tolerance:.0%}"
                f" below baseline {base}x"
            )
    base_rows = {_row_key(r): r for r in baseline.get("rows", [])}
    for row in current.get("rows", []):
        base = base_rows.get(_row_key(row))
        if base is None:
            continue
        if row["updates_installed"] != base["updates_installed"]:
            problems.append(
                f"{_row_key(row)}: installed {row['updates_installed']}"
                f" updates, baseline installed {base['updates_installed']}"
            )
        if row["consistency"] != base["consistency"]:
            problems.append(
                f"{_row_key(row)}: consistency {row['consistency']!r},"
                f" baseline {base['consistency']!r}"
            )
    return problems


def format_suite(rows: list[dict]) -> str:
    ratio = speedups(rows)
    table = format_table(
        ["mode", "transport", "algorithm", "locality", "codec", "updates",
         "installs", "wall s", "upd/s", "msgs", "B/upd", "consistency"],
        [
            [
                row["mode"],
                row["transport"],
                row["algorithm"],
                row.get("locality", "off"),
                row.get("codec") or "-",
                row["updates"],
                row["installs"],
                row["wall_seconds"],
                row["updates_per_sec"],
                row["messages_total"],
                row.get("bytes_per_update", 0.0) or "-",
                row["consistency"],
            ]
            for row in rows
        ],
        title="Update throughput: per-update SWEEP vs batched sweep",
    )
    lines = [table, ""]
    for key, value in sorted(ratio.items()):
        lines.append(f"speedup[{key}] = {value}x")
    for key, value in sorted(message_reductions(rows).items()):
        lines.append(f"message reduction[{key}] = {value}x")
    for key, value in sorted(codec_efficiency(rows).items()):
        lines.append(f"codec[{key}] = {value}x")
    lines.append(
        f"floor: saturated/local batched >= {SPEEDUP_TARGET}x"
        f" {BASELINE_UPDATES_PER_SEC} upd/s"
        f" = {SPEEDUP_TARGET * BASELINE_UPDATES_PER_SEC:.0f} upd/s"
    )
    lines.append(
        f"floor: sharded shards=4 >= {SHARD_SPEEDUP_TARGET}x shards=1 on"
        " the saturated multi-view workload (full suite)"
    )
    overhead = durable_overhead(rows)
    if overhead is not None:
        lines.append(
            f"durable overhead = {overhead:.1%} (budget"
            f" {DURABLE_OVERHEAD_TARGET:.0%} of shards=1 throughput)"
        )
    r_overhead = replica_overhead(rows)
    if r_overhead is not None:
        lines.append(
            f"hot-standby overhead = {r_overhead:.1%} (budget"
            f" {REPLICA_OVERHEAD_TARGET:.0%} of the replica-less twin)"
        )
    m_overhead = rebalance_overhead(rows)
    if m_overhead is not None:
        lines.append(
            f"live-migration overhead = {m_overhead:.1%} (budget"
            f" {REBALANCE_OVERHEAD_TARGET:.0%} of the static-plan twin)"
        )
    if codec_efficiency(rows):
        lines.append(
            f"floor: codec v3 on saturated/tcp/sweep >="
            f" {CODEC_SPEEDUP_TARGET}x updates/sec OR"
            f" {CODEC_BYTES_REDUCTION_TARGET}x bytes/update reduction"
            " over the same-run v2 twin"
        )
    return "\n".join(lines)


__all__ = [
    "ALGORITHMS",
    "BASELINE_UPDATES_PER_SEC",
    "CODEC_BYTES_REDUCTION_TARGET",
    "CODEC_SPEEDUP_TARGET",
    "CODEC_VERSIONS",
    "DURABLE_OVERHEAD_TARGET",
    "LOCALITY_MESSAGE_REDUCTION_TARGET",
    "LOCALITY_SPEEDUP_TARGET",
    "MODES",
    "QUICK_SHARD_COUNTS",
    "REBALANCE_MODE",
    "REBALANCE_OVERHEAD_TARGET",
    "REPLICA_OVERHEAD_TARGET",
    "SHARD_COUNTS",
    "SHARD_MODE",
    "SHARD_SPEEDUP_TARGET",
    "SPEEDUP_TARGET",
    "TRANSPORTS",
    "build_report",
    "codec_efficiency",
    "codec_problems",
    "compare_reports",
    "durable_overhead",
    "format_suite",
    "load_report",
    "locality_problems",
    "message_reductions",
    "rebalance_overhead",
    "replica_overhead",
    "run_cell",
    "run_shard_cell",
    "run_suite",
    "speedups",
    "write_report",
]
