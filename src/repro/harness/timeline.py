"""ASCII timeline rendering of a traced run.

Turns a :class:`~repro.simulation.trace.TraceLog` into a lane-per-actor
sequence chart, so the interleaving the paper reasons about -- updates
racing queries, compensation firing, installs landing -- can be *read*:

    t=  1.00 | R2         | local-update   +(3,5)
    t=  6.00 | warehouse  | process        UpdateNotice(src=2, ...)
    t=  6.00 | warehouse  | query->R1      req=17
    t=  7.50 | R1         | local-update   -(2,3)
    t= 11.00 | warehouse  | compensate     src=1 x1
    ...

Used by ``examples/paper_example.py`` and handy in the REPL:
``print(render_timeline(result.trace))``.
"""

from __future__ import annotations

from repro.simulation.trace import TraceLog, TraceRecord


def _actor_order(records: list[TraceRecord]) -> list[str]:
    """Actors in first-appearance order, warehouse last (rightmost lane)."""
    seen: list[str] = []
    for record in records:
        if record.actor not in seen:
            seen.append(record.actor)
    if "warehouse" in seen:
        seen.remove("warehouse")
        seen.append("warehouse")
    return seen


def render_timeline(
    trace: TraceLog,
    kinds: tuple[str, ...] | None = None,
    limit: int | None = None,
) -> str:
    """Render the trace as one line per event with actor lanes.

    ``kinds`` filters to the given event kinds; ``limit`` truncates.
    """
    records = list(trace)
    if kinds is not None:
        records = [r for r in records if r.kind in kinds]
    total = len(records)
    if limit is not None:
        records = records[:limit]
    if not records:
        return "(no trace records)"

    actors = _actor_order(records)
    lane_of = {a: i for i, a in enumerate(actors)}
    actor_width = max(len(a) for a in actors)
    kind_width = max(len(r.kind) for r in records)

    lines = []
    header = "  ".join(a.center(actor_width) for a in actors)
    lines.append(" " * 11 + header)
    for record in records:
        lane = lane_of[record.actor]
        cells = []
        for i, _ in enumerate(actors):
            cells.append(("█" if i == lane else "·").center(actor_width))
        lines.append(
            f"t={record.time:8.2f} "
            + "  ".join(cells)
            + f"  {record.kind:<{kind_width}}  {record.detail}"
        )
    if limit is not None and total > limit:
        lines.append(f"... ({total - limit} more events)")
    return "\n".join(lines)


def summarize_lanes(trace: TraceLog) -> dict[str, dict[str, int]]:
    """Per-actor event-kind counts (quick shape of a run)."""
    out: dict[str, dict[str, int]] = {}
    for record in trace:
        lane = out.setdefault(record.actor, {})
        lane[record.kind] = lane.get(record.kind, 0) + 1
    return out


__all__ = ["render_timeline", "summarize_lanes"]
