"""Multiset (bag) relational engine used by every layer of the reproduction.

The paper maintains tuple multiplicities in the materialized view (the
``(7,8)[2]`` bookkeeping of Figure 5) following the counting algorithm of
Gupta, Mumick and Subramanian (SIGMOD 1993).  This package provides:

* :class:`~repro.relational.schema.Schema` -- ordered, uniquely named
  attributes, optionally marked as key attributes.
* :class:`~repro.relational.relation.Relation` -- a bag of rows with strictly
  positive counts (base relations and materialized views).
* :class:`~repro.relational.delta.Delta` -- a signed bag (inserts carry
  positive counts, deletes negative counts) used for updates and partial
  view-change results.
* :mod:`~repro.relational.predicate` -- selection / join condition trees.
* :mod:`~repro.relational.algebra` -- select, project, equi-join, union,
  difference and scaling over bags and signed bags.
* :class:`~repro.relational.view.ViewDefinition` -- SPJ view
  ``pi_ProjAttr sigma_SelectCond (R1 |><| ... |><| Rn)`` over a chain of
  sources, with full recomputation and incremental helpers.
* :mod:`~repro.relational.incremental` -- the sweep-step algebra shared by
  all maintenance algorithms (extend a partial Delta-V by one relation,
  compensate error terms).
* :mod:`~repro.relational.sqlgen` -- SQL generation so a data source can be
  backed by sqlite3 instead of the in-memory engine.
"""

from repro.relational.algebra import (
    concat_schemas,
    difference,
    join,
    project,
    scale,
    select,
    union,
)
from repro.relational.delta import Delta
from repro.relational.errors import (
    HeterogeneousSchemaError,
    NegativeCountError,
    RelationalError,
    SchemaError,
    UnknownAttributeError,
)
from repro.relational.predicate import (
    And,
    AttrCompare,
    AttrEq,
    Const,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.sqlview import SqlParseError, parse_view
from repro.relational.view import ViewDefinition

__all__ = [
    "And",
    "AttrCompare",
    "AttrEq",
    "Const",
    "Delta",
    "HeterogeneousSchemaError",
    "NegativeCountError",
    "Not",
    "Or",
    "Predicate",
    "Relation",
    "RelationalError",
    "Schema",
    "SchemaError",
    "SqlParseError",
    "TruePredicate",
    "UnknownAttributeError",
    "ViewDefinition",
    "concat_schemas",
    "difference",
    "join",
    "parse_view",
    "project",
    "scale",
    "select",
    "union",
]
