"""Incrementally maintained aggregate views (the paper's Section 2 extension).

The paper restricts the warehouse view to SPJ "for simplicity" and notes
that aggregates are possible.  This module supplies that extension: an
:class:`AggregateView` is a GROUP BY over the maintained SPJ view with
COUNT / SUM / AVG / MIN / MAX aggregates, maintained **incrementally from
the view's own deltas** -- each SWEEP install updates the aggregates in
time proportional to the delta, never rescanning the view.

MIN/MAX are the interesting case: a delete can retract the current
extremum, so each group keeps a multiset of contributing values (value ->
multiplicity), making retraction exact.  Groups whose row count reaches
zero disappear, as in SQL GROUP BY semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.errors import NegativeCountError, SchemaError
from repro.relational.relation import BagBase, Relation
from repro.relational.schema import Schema

SUPPORTED_FUNCS = ("count", "sum", "avg", "min", "max", "count_distinct")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate column: ``func`` over ``attribute`` (None for COUNT)."""

    func: str
    attribute: str | None = None
    name: str | None = None

    def __post_init__(self) -> None:
        if self.func not in SUPPORTED_FUNCS:
            raise ValueError(
                f"unsupported aggregate {self.func!r}; one of {SUPPORTED_FUNCS}"
            )
        if self.func == "count":
            if self.attribute is not None:
                raise ValueError("count takes no attribute")
        elif self.attribute is None:
            raise ValueError(f"{self.func} requires an attribute")

    @property
    def column_name(self) -> str:
        if self.name is not None:
            return self.name
        if self.func == "count":
            return "count"
        return f"{self.func}_{self.attribute}"


class _GroupState:
    """Per-group accumulators: row count, per-spec sums and value multisets."""

    __slots__ = ("rows", "sums", "values")

    def __init__(self, n_specs: int):
        self.rows = 0
        self.sums = [0] * n_specs
        # value -> multiplicity, per spec (only used by min/max)
        self.values: list[dict[object, int]] = [dict() for _ in range(n_specs)]


class AggregateView:
    """A GROUP BY aggregate maintained from view deltas.

    Parameters
    ----------
    base_schema:
        Schema of the underlying (SPJ) view rows.
    group_by:
        Attributes of ``base_schema`` forming the grouping key (may be
        empty for a single global group).
    aggregates:
        The aggregate columns.

    Examples
    --------
    >>> schema = Schema(("region", "price"))
    >>> agg = AggregateView(schema, ("region",),
    ...                     (AggregateSpec("count"), AggregateSpec("sum", "price")))
    """

    def __init__(
        self,
        base_schema: Schema,
        group_by: tuple[str, ...],
        aggregates: tuple[AggregateSpec, ...],
    ):
        if not aggregates:
            raise ValueError("need at least one aggregate")
        self.base_schema = base_schema
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)
        self._group_idx = base_schema.project_indices(self.group_by)
        self._attr_idx: list[int | None] = []
        for spec in self.aggregates:
            if spec.attribute is None:
                self._attr_idx.append(None)
            else:
                self._attr_idx.append(base_schema.index_of(spec.attribute))
        names = list(self.group_by) + [s.column_name for s in self.aggregates]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate output columns: {names!r}")
        self.schema = Schema(tuple(names), key=self.group_by or None)
        self._groups: dict[tuple, _GroupState] = {}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def apply(self, delta: BagBase) -> None:
        """Fold a view delta (signed row counts) into the aggregates."""
        if delta.schema.attributes != self.base_schema.attributes:
            raise SchemaError(
                f"delta schema {list(delta.schema.attributes)!r} does not"
                f" match aggregate base {list(self.base_schema.attributes)!r}"
            )
        for row, count in delta.items():
            key = tuple(row[i] for i in self._group_idx)
            state = self._groups.get(key)
            if state is None:
                state = self._groups[key] = _GroupState(len(self.aggregates))
            state.rows += count
            if state.rows < 0:
                raise NegativeCountError(row, state.rows)
            for s, (spec, idx) in enumerate(zip(self.aggregates, self._attr_idx)):
                if spec.func == "count":
                    continue
                value = row[idx]
                if spec.func in ("sum", "avg"):
                    state.sums[s] += value * count
                if spec.func in ("min", "max", "count_distinct"):
                    bag = state.values[s]
                    new = bag.get(value, 0) + count
                    if new < 0:
                        raise NegativeCountError(row, new)
                    if new == 0:
                        bag.pop(value, None)
                    else:
                        bag[value] = new
            if state.rows == 0:
                del self._groups[key]

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def value_of(self, key: tuple, spec_index: int):
        """Current value of one aggregate column for group ``key``."""
        state = self._groups[tuple(key)]
        spec = self.aggregates[spec_index]
        if spec.func == "count":
            return state.rows
        if spec.func == "sum":
            return state.sums[spec_index]
        if spec.func == "avg":
            return state.sums[spec_index] / state.rows
        values = state.values[spec_index]
        if spec.func == "count_distinct":
            return len(values)
        return min(values) if spec.func == "min" else max(values)

    def as_relation(self) -> Relation:
        """The aggregate contents as a relation (one row per group)."""
        out = Relation(self.schema)
        for key in self._groups:
            row = key + tuple(
                self.value_of(key, s) for s in range(len(self.aggregates))
            )
            out.insert(row)
        return out

    def group_keys(self) -> list[tuple]:
        """Current group keys (sorted for deterministic output)."""
        return sorted(self._groups)

    def __len__(self) -> int:
        return len(self._groups)

    # ------------------------------------------------------------------
    @classmethod
    def over_relation(
        cls,
        relation: Relation,
        group_by: tuple[str, ...],
        aggregates: tuple[AggregateSpec, ...],
    ) -> "AggregateView":
        """Build and initialize from existing view contents."""
        from repro.relational.delta import Delta

        agg = cls(relation.schema, group_by, aggregates)
        agg.apply(Delta.from_relation(relation))
        return agg


def recompute_aggregate(
    relation: Relation,
    group_by: tuple[str, ...],
    aggregates: tuple[AggregateSpec, ...],
) -> Relation:
    """Reference implementation: aggregate ``relation`` from scratch.

    Deliberately independent of :class:`AggregateView` (plain grouping
    loops), so tests can validate incremental maintenance against it.
    """
    group_idx = relation.schema.project_indices(group_by)
    groups: dict[tuple, list[tuple[tuple, int]]] = {}
    for row, count in relation.items():
        key = tuple(row[i] for i in group_idx)
        groups.setdefault(key, []).append((row, count))

    names = list(group_by) + [s.column_name for s in aggregates]
    out = Relation(Schema(tuple(names), key=tuple(group_by) or None))
    for key, rows in sorted(groups.items()):
        cells = []
        for spec in aggregates:
            if spec.func == "count":
                cells.append(sum(c for _, c in rows))
                continue
            idx = relation.schema.index_of(spec.attribute)
            expanded = [r[idx] for r, c in rows for _ in range(c)]
            if spec.func == "sum":
                cells.append(sum(expanded))
            elif spec.func == "avg":
                cells.append(sum(expanded) / len(expanded))
            elif spec.func == "min":
                cells.append(min(expanded))
            elif spec.func == "count_distinct":
                cells.append(len(set(expanded)))
            else:
                cells.append(max(expanded))
        out.insert(key + tuple(cells))
    return out


__all__ = [
    "AggregateSpec",
    "AggregateView",
    "SUPPORTED_FUNCS",
    "recompute_aggregate",
]
