"""Pure bag-algebra operators over :class:`Relation` and :class:`Delta`.

Count discipline (GMS93 counting algorithm, which the paper adopts for its
materialized view):

* ``select`` keeps counts unchanged,
* ``project`` sums the counts of rows collapsing onto one projected row,
* ``join`` multiplies counts -- so a signed delta joined with a relation
  yields a signed delta whose signs compose exactly like the paper's error
  terms,
* ``union``/``difference`` add/subtract counts pointwise.

Every operator is pure: inputs are never mutated and results are fresh
objects.  The result type is :class:`Delta` whenever any operand is signed,
otherwise :class:`Relation`.

Joins with at least one equality conjunct across the operands run as hash
joins; anything else falls back to a nested loop with the compiled residual
predicate.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.relational.delta import Delta
from repro.relational.errors import HeterogeneousSchemaError
from repro.relational.predicate import (
    AttrEq,
    Predicate,
    TruePredicate,
    compile_cached,
    conjunction,
)
from repro.relational.relation import BagBase, Relation
from repro.relational.schema import Schema


def _result_type(*operands: BagBase) -> type[BagBase]:
    """Delta if any operand is signed, else Relation."""
    if any(isinstance(op, Delta) for op in operands):
        return Delta
    return Relation


def concat_schemas(left: Schema, right: Schema) -> Schema:
    """Schema of the concatenation (convenience re-export of Schema.concat)."""
    return left.concat(right)


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------

def select(bag: BagBase, predicate: Predicate) -> BagBase:
    """Rows of ``bag`` satisfying ``predicate``, counts unchanged."""
    test = compile_cached(predicate, bag.schema)
    cls = _result_type(bag)
    return cls._from_validated(
        bag.schema, {row: count for row, count in bag.items() if test(row)}
    )


def project(bag: BagBase, attributes: Sequence[str]) -> BagBase:
    """Project onto ``attributes``; counts of collapsing rows are summed.

    This is the step that turns the wide sweep result (full concatenated
    rows) into view rows with multiplicities, e.g. both ``(1,3,5,6)`` and
    ``(2,3,5,6)`` collapsing to ``(5,6)[2]`` in the paper's example.
    """
    indices = bag.schema.project_indices(attributes)
    out_schema = bag.schema.project(attributes)
    cls = _result_type(bag)
    counts: dict[tuple, int] = {}
    for row, count in bag.items():
        key = tuple(row[i] for i in indices)
        counts[key] = counts.get(key, 0) + count
    # Signed rows collapsing onto one projected row may cancel exactly.
    if cls is Delta:
        counts = {row: c for row, c in counts.items() if c}
    return cls._from_validated(out_schema, counts)


def scale(bag: BagBase, factor: int) -> Delta:
    """Multiply every count by ``factor`` (result is always signed)."""
    out = Delta(bag.schema)
    if factor == 0:
        return out
    for row, count in bag.items():
        out.add(row, count * factor)
    return out


# ---------------------------------------------------------------------------
# Binary set operators
# ---------------------------------------------------------------------------

def _check_same_schema(left: BagBase, right: BagBase) -> None:
    if left.schema.attributes != right.schema.attributes:
        raise HeterogeneousSchemaError(left.schema.attributes, right.schema.attributes)


def union(left: BagBase, right: BagBase) -> BagBase:
    """Pointwise count sum.  Relation + Relation stays a Relation."""
    _check_same_schema(left, right)
    cls = _result_type(left, right)
    counts = left.as_dict()
    for row, count in right.items():
        new = counts.get(row, 0) + count
        if new:
            counts[row] = new
        else:
            counts.pop(row, None)
    return cls._from_validated(left.schema, counts)


def union_in_place(target: Delta, other: BagBase) -> Delta:
    """Pointwise add ``other`` into ``target``; returns ``target``.

    The accumulation form of :func:`union` for loops that fold many bags
    into one signed accumulator (batched sweeps summing telescoping terms).
    ``target`` must be exclusively owned by the caller.
    """
    _check_same_schema(target, other)
    return target.merge_in_place(other)


def difference(left: BagBase, right: BagBase) -> Delta:
    """Pointwise count difference ``left - right`` (always signed).

    This is the compensation operator of SWEEP:
    ``Delta-V = Delta-V - (Delta-Rj |><| TempView)``.
    """
    _check_same_schema(left, right)
    counts = left.as_dict()
    for row, count in right.items():
        new = counts.get(row, 0) - count
        if new:
            counts[row] = new
        else:
            counts.pop(row, None)
    return Delta._from_validated(left.schema, counts)


def difference_in_place(target: Delta, other: BagBase) -> Delta:
    """Pointwise subtract ``other`` from ``target``; returns ``target``.

    The accumulation form of :func:`difference` for compensation loops
    subtracting several error terms from one owned accumulator.
    """
    _check_same_schema(target, other)
    counts = target._counts
    if target._indexes:
        for row, count in other.items():
            target.add(row, -count)
        return target
    for row, count in other.items():
        new = counts.get(row, 0) - count
        if new:
            counts[row] = new
        else:
            counts.pop(row, None)
    return target


# ---------------------------------------------------------------------------
# Join
# ---------------------------------------------------------------------------

def _split_join_condition(
    condition: Predicate,
    left: Schema,
    right: Schema,
) -> tuple[list[tuple[str, str]], Predicate]:
    """Partition ``condition`` into hashable cross equalities and a residual.

    Returns ``(pairs, residual)`` where each pair ``(l_attr, r_attr)`` is an
    equality with one side in each schema, and ``residual`` holds every other
    conjunct (left-only or right-only selections, cross non-equi conditions).
    """
    pairs: list[tuple[str, str]] = []
    residual: list[Predicate] = []
    for conj in condition.conjuncts():
        if isinstance(conj, AttrEq):
            if conj.left in left and conj.right in right:
                pairs.append((conj.left, conj.right))
                continue
            if conj.right in left and conj.left in right:
                pairs.append((conj.right, conj.left))
                continue
        residual.append(conj)
    return pairs, conjunction(residual)


def join(
    left: BagBase,
    right: BagBase,
    condition: Predicate | None = None,
) -> BagBase:
    """Theta-join of two bags; counts multiply.

    ``condition`` may mention attributes of either operand; equality
    conjuncts spanning both sides are executed as a hash join.  ``None``
    (or :class:`TruePredicate`) computes the cross product -- view chains
    always pass explicit equalities.
    """
    out_schema = left.schema.concat(right.schema)
    cls = _result_type(left, right)
    if not left or not right:
        return cls._from_validated(out_schema, {})
    if condition is None:
        condition = TruePredicate()

    pairs, residual = _split_join_condition(condition, left.schema, right.schema)
    residual_test = None
    if not isinstance(residual, TruePredicate):
        residual_test = compile_cached(residual, out_schema)

    # Accumulate into a plain dict: concatenated rows need no arity check,
    # and signed counts may cancel, so zero-filtering happens once at the
    # end rather than on every add.
    counts: dict[tuple, int] = {}

    if pairs:
        l_idx = tuple(left.schema.index_of(a) for a, _ in pairs)
        r_idx = tuple(right.schema.index_of(b) for _, b in pairs)
        # Prebuilt hash indexes (sources index their join columns) let a
        # small operand probe a large one without scanning it.
        r_index = right.get_index(r_idx)
        if r_index is not None and left.distinct_count <= right.distinct_count:
            for lrow, lcount in left.items():
                for rrow in r_index.get(tuple(lrow[i] for i in l_idx), ()):
                    combined = lrow + rrow
                    if residual_test is None or residual_test(combined):
                        counts[combined] = counts.get(combined, 0) + (
                            lcount * right.count(rrow)
                        )
        else:
            l_index = left.get_index(l_idx)
            if l_index is not None and right.distinct_count <= left.distinct_count:
                for rrow, rcount in right.items():
                    for lrow in l_index.get(tuple(rrow[i] for i in r_idx), ()):
                        combined = lrow + rrow
                        if residual_test is None or residual_test(combined):
                            counts[combined] = counts.get(combined, 0) + (
                                left.count(lrow) * rcount
                            )
            # Hash the smaller side to bound memory.
            elif left.distinct_count <= right.distinct_count:
                table: dict[tuple, list[tuple[tuple, int]]] = {}
                for lrow, lcount in left.items():
                    table.setdefault(tuple(lrow[i] for i in l_idx), []).append(
                        (lrow, lcount)
                    )
                for rrow, rcount in right.items():
                    bucket = table.get(tuple(rrow[i] for i in r_idx))
                    if not bucket:
                        continue
                    for lrow, lcount in bucket:
                        combined = lrow + rrow
                        if residual_test is None or residual_test(combined):
                            counts[combined] = counts.get(combined, 0) + (
                                lcount * rcount
                            )
            else:
                table = {}
                for rrow, rcount in right.items():
                    table.setdefault(tuple(rrow[i] for i in r_idx), []).append(
                        (rrow, rcount)
                    )
                for lrow, lcount in left.items():
                    bucket = table.get(tuple(lrow[i] for i in l_idx))
                    if not bucket:
                        continue
                    for rrow, rcount in bucket:
                        combined = lrow + rrow
                        if residual_test is None or residual_test(combined):
                            counts[combined] = counts.get(combined, 0) + (
                                lcount * rcount
                            )
    else:
        # No usable equality: nested-loop theta join.
        for lrow, lcount in left.items():
            for rrow, rcount in right.items():
                combined = lrow + rrow
                if residual_test is None or residual_test(combined):
                    counts[combined] = counts.get(combined, 0) + lcount * rcount

    if cls is Delta:
        counts = {row: c for row, c in counts.items() if c}
    return cls._from_validated(out_schema, counts)


__all__ = [
    "concat_schemas",
    "difference",
    "difference_in_place",
    "join",
    "project",
    "scale",
    "select",
    "union",
    "union_in_place",
]
