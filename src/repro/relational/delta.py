"""Signed bags: updates and partial view-change results.

A :class:`Delta` maps rows to *signed* counts.  A source update ``+(3,5)`` is
a Delta with count ``+1``; a delete ``-(7,8)`` has count ``-1``.  The partial
view change carried through a SWEEP (the paper's ``Delta-V``) is also a
Delta: compensation subtracts error terms, which may transiently produce
negative entries even for an insert-driven sweep.

Joins multiply counts, so the sign algebra composes exactly as in the paper:
compensating the answer from source 1 for the concurrent delete
``Delta-R1 = {-(2,3)}`` against ``TempView = {+(3,5)}`` computes
``Delta-R1 |><| TempView = {(2,3,5)[-1]}`` and the subtraction
``Delta-V - {(2,3,5)[-1]}`` *adds* ``(2,3,5)`` back (Section 5.2).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.relational.relation import BagBase, Relation, Row
from repro.relational.schema import Schema


class Delta(BagBase):
    """A bag with signed counts; zero-count rows are always dropped.

    >>> d = Delta(Schema(("A", "B")))
    >>> d.add((3, 5), +1)
    >>> d.add((7, 8), -1)
    >>> sorted(d.items())
    [((3, 5), 1), ((7, 8), -1)]
    """

    __slots__ = ()
    _allow_negative = True

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def insert(cls, schema: Schema, row: Row, count: int = 1) -> "Delta":
        """A singleton insert delta ``{+row}``."""
        if count < 1:
            raise ValueError(f"insert count must be >= 1, got {count}")
        return cls(schema, {tuple(row): count})

    @classmethod
    def delete(cls, schema: Schema, row: Row, count: int = 1) -> "Delta":
        """A singleton delete delta ``{-row}``."""
        if count < 1:
            raise ValueError(f"delete count must be >= 1, got {count}")
        return cls(schema, {tuple(row): -count})

    @classmethod
    def from_relation(cls, relation: BagBase) -> "Delta":
        """View any bag as a signed bag (copies counts)."""
        return cls._from_validated(relation.schema, relation.as_dict())

    @classmethod
    def empty(cls, schema: Schema) -> "Delta":
        """The empty delta over ``schema``."""
        return cls(schema)

    # ------------------------------------------------------------------
    # Signed-bag arithmetic (in addition to the pure algebra module)
    # ------------------------------------------------------------------
    def negated(self) -> "Delta":
        """A copy with every count negated."""
        return Delta._from_validated(
            self.schema, {row: -c for row, c in self.items()}
        )

    def merged(self, other: "Delta") -> "Delta":
        """Pointwise sum ``self + other`` (schemas must match).

        SWEEP merges multiple interfering updates from the same source into a
        single compensation delta this way (Section 5.1).
        """
        return self.copy().merge_in_place(other)

    def merge_in_place(self, other: "Delta") -> "Delta":
        """Pointwise add ``other`` into this delta; returns ``self``.

        The accumulation primitive behind batched sweeps: coalescing k
        same-source updates or summing k telescoping terms reuses one
        counts dict instead of allocating k intermediates.
        """
        if other.schema.attributes != self.schema.attributes:
            from repro.relational.errors import HeterogeneousSchemaError

            raise HeterogeneousSchemaError(
                self.schema.attributes, other.schema.attributes
            )
        counts = self._counts
        if self._indexes:
            for row, count in other.items():
                self.add(row, count)
        else:
            for row, count in other.items():
                new = counts.get(row, 0) + count
                if new:
                    counts[row] = new
                else:
                    counts.pop(row, None)
        return self

    def copy(self) -> "Delta":
        """An independent copy."""
        return Delta._from_validated(self.schema, dict(self._counts))

    # ------------------------------------------------------------------
    # Decomposition
    # ------------------------------------------------------------------
    def positive_part(self) -> Relation:
        """The inserted rows as a non-negative bag."""
        return Relation._from_validated(
            self.schema, {r: c for r, c in self.items() if c > 0}
        )

    def negative_part(self) -> Relation:
        """The deleted rows, with counts made positive."""
        return Relation._from_validated(
            self.schema, {r: -c for r, c in self.items() if c < 0}
        )

    @property
    def is_insert_only(self) -> bool:
        """True when every count is positive."""
        return all(c > 0 for _, c in self.items())

    @property
    def is_delete_only(self) -> bool:
        """True when every count is negative."""
        return all(c < 0 for _, c in self.items())


def merge_deltas(schema: Schema, deltas: Iterable[Delta]) -> Delta:
    """Sum an iterable of deltas over ``schema`` into one.

    Used when the warehouse coalesces several queued updates from the same
    source into a single compensation term.
    """
    out = Delta(schema)
    for d in deltas:
        for row, count in d.items():
            out.add(row, count)
    return out


def delta_from_rows(
    schema: Schema,
    inserts: Iterable[Row] = (),
    deletes: Iterable[Row] = (),
) -> Delta:
    """Build a delta from explicit insert/delete row lists (test convenience)."""
    out = Delta(schema)
    for row in inserts:
        out.add(tuple(row), +1)
    for row in deletes:
        out.add(tuple(row), -1)
    return out


__all__ = ["Delta", "merge_deltas", "delta_from_rows"]
