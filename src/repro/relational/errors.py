"""Exception hierarchy for the relational engine.

All engine errors derive from :class:`RelationalError` so callers can catch
one base class.  The hierarchy is deliberately fine-grained: algorithm code
distinguishes schema mistakes (a bug in wiring) from count violations (a bug
in maintenance logic), and tests assert on the specific class.
"""

from __future__ import annotations


class RelationalError(Exception):
    """Base class for all relational-engine errors."""


class SchemaError(RelationalError):
    """A schema is malformed (duplicate attributes, empty, bad key set)."""


class UnknownAttributeError(SchemaError):
    """An attribute name was referenced that the schema does not define."""

    def __init__(self, attribute: str, schema_attrs: tuple[str, ...]):
        self.attribute = attribute
        self.schema_attrs = schema_attrs
        super().__init__(
            f"unknown attribute {attribute!r}; schema has {list(schema_attrs)!r}"
        )


class HeterogeneousSchemaError(SchemaError):
    """Two operands of a union/difference have different schemas."""

    def __init__(self, left: tuple[str, ...], right: tuple[str, ...]):
        self.left = left
        self.right = right
        super().__init__(
            f"schema mismatch: {list(left)!r} vs {list(right)!r}"
        )


class NegativeCountError(RelationalError):
    """A non-negative bag (base relation / materialized view) would go negative.

    This signals a maintenance bug: a delete was applied for a tuple that the
    view does not derive, i.e. the algorithm produced an incorrect Delta-V.
    """

    def __init__(self, row: tuple, count: int):
        self.row = row
        self.count = count
        super().__init__(f"row {row!r} would have count {count} < 0")


class ArityError(RelationalError):
    """A row's width does not match its schema."""

    def __init__(self, row: tuple, expected: int):
        self.row = row
        self.expected = expected
        super().__init__(
            f"row {row!r} has arity {len(row)}, schema expects {expected}"
        )
