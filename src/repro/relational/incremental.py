"""The sweep-step algebra: partial view changes and their extension.

A maintenance sweep (paper Figure 2) carries a *partial view change*:
a signed bag whose rows span a contiguous range ``lo..hi`` of the view's
relation chain.  Two operations drive every algorithm in this repository:

* **extend** -- join the partial result with one more relation (``lo-1`` or
  ``hi+1``).  At a data source this is ``ComputeJoin(Delta-V, R)`` from the
  paper's Figure 3; at the warehouse the *same* operation with a queued
  update ``Delta-Rj`` in place of ``Rj`` yields the error term
  ``Delta-Rj |><| TempView`` used for local compensation.
* **compensate** -- subtract such an error term from a received answer.

Keeping the two on one code path is what makes SWEEP's on-line error
correction exact: the error term is computed with precisely the join
conditions the source itself applied.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.algebra import (
    difference,
    difference_in_place,
    join,
    project,
    union_in_place,
)
from repro.relational.delta import Delta
from repro.relational.errors import SchemaError
from repro.relational.relation import BagBase
from repro.relational.view import ViewDefinition


@dataclass(frozen=True)
class PartialView:
    """A signed partial view change covering relations ``lo..hi`` of ``view``.

    ``delta`` rows are in canonical attribute order (the concatenation of the
    schemas of relations ``lo..hi``), regardless of the order in which the
    sweep visited them.
    """

    view: ViewDefinition
    lo: int
    hi: int
    delta: Delta

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def initial(
        cls, view: ViewDefinition, index: int, change: BagBase
    ) -> "PartialView":
        """Seed a sweep with an update ``Delta-Ri`` at relation ``index``."""
        expected = view.schema_of(index)
        if change.schema.attributes != expected.attributes:
            raise SchemaError(
                f"update schema {list(change.schema.attributes)!r} does not match"
                f" relation {view.name_of(index)!r} schema"
                f" {list(expected.attributes)!r}"
            )
        return cls(view, index, index, Delta(expected, change.as_dict()))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def covered(self) -> frozenset[int]:
        """The covered 1-based relation indices."""
        return frozenset(range(self.lo, self.hi + 1))

    @property
    def complete(self) -> bool:
        """True when the sweep spans the whole chain."""
        return self.lo == 1 and self.hi == self.view.n_relations

    def is_adjacent(self, index: int) -> bool:
        """Whether relation ``index`` can extend this partial result."""
        return index in (self.lo - 1, self.hi + 1)

    # ------------------------------------------------------------------
    # The sweep step
    # ------------------------------------------------------------------
    def extend(self, index: int, contents: BagBase) -> "PartialView":
        """Join with ``contents`` standing for relation ``index``.

        ``contents`` is the base relation when evaluating at a source, or a
        queued update delta when computing a compensation error term at the
        warehouse.  ``index`` must be adjacent to the covered range.
        """
        if not self.is_adjacent(index):
            raise SchemaError(
                f"relation {index} is not adjacent to covered range"
                f" {self.lo}..{self.hi}"
            )
        expected = self.view.schema_of(index)
        if contents.schema.attributes != expected.attributes:
            raise SchemaError(
                f"contents schema {list(contents.schema.attributes)!r} does not"
                f" match relation {self.view.name_of(index)!r}"
            )
        cond = self.view.conditions_joining(index, self.covered)
        # Operand order chooses the output column order; putting the new
        # relation on the correct side yields canonical order directly and
        # skips the reordering projection.
        if index < self.lo:
            joined = join(contents, self.delta, cond)
        else:
            joined = join(self.delta, contents, cond)
        new_lo, new_hi = min(self.lo, index), max(self.hi, index)
        canonical = self.view.wide_schema_range(new_lo, new_hi)
        if joined.schema.attributes != canonical.attributes:
            joined = project(joined, canonical.attributes)
        if not isinstance(joined, Delta):
            joined = Delta.from_relation(joined)
        return PartialView(self.view, new_lo, new_hi, joined)

    def compensate(self, error: "PartialView") -> "PartialView":
        """Subtract an error term covering the same range.

        Implements the paper's ``Delta-V = Delta-V - Delta-Rj |><| TempView``.
        """
        if (error.lo, error.hi) != (self.lo, self.hi):
            raise SchemaError(
                f"error term covers {error.lo}..{error.hi}, expected"
                f" {self.lo}..{self.hi}"
            )
        return PartialView(
            self.view, self.lo, self.hi, difference(self.delta, error.delta)
        )

    def add(self, other: "PartialView") -> "PartialView":
        """Pointwise sum with another partial result over the same range.

        Nested SWEEP merges recursively computed view changes this way
        (``Delta-V = Delta-V + ViewChange(...)`` in Figure 6).
        """
        if (other.lo, other.hi) != (self.lo, self.hi):
            raise SchemaError(
                f"cannot add partial views covering {other.lo}..{other.hi} and"
                f" {self.lo}..{self.hi}"
            )
        return PartialView(self.view, self.lo, self.hi, self.delta.merged(other.delta))

    def add_in_place(self, other: "PartialView") -> "PartialView":
        """Accumulating :meth:`add`: folds ``other`` into this partial's delta.

        The :class:`PartialView` wrapper stays frozen but the underlying
        signed bag is mutated, so this is only for partials the caller
        exclusively owns (e.g. the composite accumulator of a batched
        sweep).  Returns ``self`` for chaining.
        """
        if (other.lo, other.hi) != (self.lo, self.hi):
            raise SchemaError(
                f"cannot add partial views covering {other.lo}..{other.hi} and"
                f" {self.lo}..{self.hi}"
            )
        union_in_place(self.delta, other.delta)
        return self

    def compensate_in_place(self, error: "PartialView") -> "PartialView":
        """Accumulating :meth:`compensate`; same ownership caveat as
        :meth:`add_in_place`.  Returns ``self`` for chaining."""
        if (error.lo, error.hi) != (self.lo, self.hi):
            raise SchemaError(
                f"error term covers {error.lo}..{error.hi}, expected"
                f" {self.lo}..{self.hi}"
            )
        difference_in_place(self.delta, error.delta)
        return self

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"PartialView({self.view.name}, {self.lo}..{self.hi},"
            f" {self.delta.distinct_count} rows)"
        )


def compute_join(
    view: ViewDefinition, partial: PartialView, index: int, relation: BagBase
) -> PartialView:
    """The data-source service ``ComputeJoin(Delta-V, R)`` (paper Figure 3).

    Free-function form used by source servers; equivalent to
    ``partial.extend(index, relation)`` with a view identity check.
    """
    if partial.view is not view and partial.view.name != view.name:
        raise SchemaError(
            f"partial view {partial.view.name!r} does not belong to view"
            f" {view.name!r}"
        )
    return partial.extend(index, relation)


__all__ = ["PartialView", "compute_join"]
