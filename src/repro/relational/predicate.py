"""Selection and join condition trees.

Conditions are small immutable expression trees evaluated against a
``(schema, row)`` pair.  The view definition language of the paper is SPJ
with equi-join chains (``R1.B = R2.C AND R2.D = R3.E``) plus an optional
selection; this module supports that plus constant comparisons and boolean
combinators so workloads can express realistic selections.

Predicates are *compiled* against a schema once (attribute names resolved to
row indices) and then evaluated per row, keeping joins and selections cheap
inside the simulator's hot loop.
"""

from __future__ import annotations

import operator
from collections.abc import Callable, Iterator

from repro.relational.schema import Schema

_OPS: dict[str, Callable[[object, object], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Predicate:
    """Abstract base of all condition nodes."""

    __slots__ = ()

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        """Resolve attribute names against ``schema``; return a row test."""
        raise NotImplementedError

    def attributes(self) -> frozenset[str]:
        """All attribute names mentioned by this predicate."""
        raise NotImplementedError

    def conjuncts(self) -> Iterator["Predicate"]:
        """Iterate top-level AND-ed factors (self if not an And)."""
        yield self

    # Convenience combinators -------------------------------------------------
    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


class TruePredicate(Predicate):
    """The always-true condition (used when a view has no selection)."""

    __slots__ = ()

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        return lambda row: True

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "TRUE"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TruePredicate)

    def __hash__(self) -> int:
        return hash("TruePredicate")


class AttrEq(Predicate):
    """Equality between two attributes -- the equi-join condition.

    ``AttrEq("B", "C")`` is the paper's ``R1.B = R2.C``.
    """

    __slots__ = ("left", "right")

    def __init__(self, left: str, right: str):
        self.left = left
        self.right = right

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        li = schema.index_of(self.left)
        ri = schema.index_of(self.right)
        return lambda row: row[li] == row[ri]

    def attributes(self) -> frozenset[str]:
        return frozenset((self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left} == {self.right})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AttrEq)
            and {self.left, self.right} == {other.left, other.right}
        )

    def __hash__(self) -> int:
        return hash(frozenset((self.left, self.right)))


class AttrCompare(Predicate):
    """Comparison of an attribute with a constant, e.g. ``price >= 10``."""

    __slots__ = ("attribute", "op", "value")

    def __init__(self, attribute: str, op: str, value: object):
        if op not in _OPS:
            raise ValueError(f"unsupported operator {op!r}; one of {sorted(_OPS)}")
        self.attribute = attribute
        self.op = op
        self.value = value

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        idx = schema.index_of(self.attribute)
        fn = _OPS[self.op]
        val = self.value
        return lambda row: fn(row[idx], val)

    def attributes(self) -> frozenset[str]:
        return frozenset((self.attribute,))

    def __repr__(self) -> str:
        return f"({self.attribute} {self.op} {self.value!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AttrCompare)
            and (self.attribute, self.op, self.value)
            == (other.attribute, other.op, other.value)
        )

    def __hash__(self) -> int:
        return hash((self.attribute, self.op, self.value))


class Const(Predicate):
    """A constant boolean (useful in generated workloads and tests)."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = bool(value)

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        val = self.value
        return lambda row: val

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))


class And(Predicate):
    """Conjunction of two or more conditions."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Predicate):
        if len(parts) < 2:
            raise ValueError("And requires at least two parts")
        self.parts = tuple(parts)

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        compiled = [p.compile(schema) for p in self.parts]
        return lambda row: all(fn(row) for fn in compiled)

    def attributes(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.attributes()
        return out

    def conjuncts(self) -> Iterator[Predicate]:
        for p in self.parts:
            yield from p.conjuncts()

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(p) for p in self.parts) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash(("And", self.parts))


class Or(Predicate):
    """Disjunction of two or more conditions."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Predicate):
        if len(parts) < 2:
            raise ValueError("Or requires at least two parts")
        self.parts = tuple(parts)

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        compiled = [p.compile(schema) for p in self.parts]
        return lambda row: any(fn(row) for fn in compiled)

    def attributes(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.attributes()
        return out

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(p) for p in self.parts) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash(("Or", self.parts))


class Not(Predicate):
    """Negation of a condition."""

    __slots__ = ("part",)

    def __init__(self, part: Predicate):
        self.part = part

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        inner = self.part.compile(schema)
        return lambda row: not inner(row)

    def attributes(self) -> frozenset[str]:
        return self.part.attributes()

    def __repr__(self) -> str:
        return f"(NOT {self.part!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.part == other.part

    def __hash__(self) -> int:
        return hash(("Not", self.part))


#: Compiled row tests keyed by (predicate, schema).  Both are immutable
#: value types, and a maintenance run evaluates the same handful of join /
#: selection conditions millions of times, so compilation (attribute-name
#: resolution, closure building) is paid once per condition rather than once
#: per operator call.  Bounded defensively; real runs stay tiny.
_COMPILE_CACHE: dict[tuple[Predicate, Schema], Callable[[tuple], bool]] = {}
_COMPILE_CACHE_MAX = 4096
_COMPILE_HITS = 0
_COMPILE_MISSES = 0


def compile_cached(predicate: Predicate, schema: Schema) -> Callable[[tuple], bool]:
    """``predicate.compile(schema)`` memoized on the (predicate, schema) pair."""
    global _COMPILE_HITS, _COMPILE_MISSES
    key = (predicate, schema)
    test = _COMPILE_CACHE.get(key)
    if test is None:
        _COMPILE_MISSES += 1
        test = predicate.compile(schema)
        if len(_COMPILE_CACHE) >= _COMPILE_CACHE_MAX:
            _COMPILE_CACHE.clear()
        _COMPILE_CACHE[key] = test
    else:
        _COMPILE_HITS += 1
    return test


def compile_cache_stats() -> dict[str, int]:
    """Process-lifetime counters of the compile cache.

    The totals are cumulative; harness drivers snapshot them around a
    run and report the difference (see ``RunResult.predicate_cache``).
    """
    return {
        "hits": _COMPILE_HITS,
        "misses": _COMPILE_MISSES,
        "size": len(_COMPILE_CACHE),
        "capacity": _COMPILE_CACHE_MAX,
    }


def conjunction(parts: list[Predicate]) -> Predicate:
    """Build the AND of ``parts``; TRUE when empty, the part itself when one."""
    parts = [p for p in parts if not isinstance(p, TruePredicate)]
    if not parts:
        return TruePredicate()
    if len(parts) == 1:
        return parts[0]
    return And(*parts)


__all__ = [
    "Predicate",
    "TruePredicate",
    "AttrEq",
    "AttrCompare",
    "Const",
    "And",
    "Or",
    "Not",
    "compile_cache_stats",
    "compile_cached",
    "conjunction",
]
