"""Bags of rows with multiplicities -- the storage type of the engine.

:class:`Relation` models a base relation or a materialized view: each row has
a strictly positive integer *count*, the number of distinct derivations of
the row (GMS93 counting).  The paper's Figure 5 example writes this as
``(7,8)[2]``.

The internal representation is a plain dict ``row -> count`` where rows are
Python tuples of hashable values.  Relations are mutated only through
:meth:`insert`, :meth:`delete` and :meth:`apply_delta`; all algebra operators
in :mod:`repro.relational.algebra` are pure and return fresh objects.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.relational.errors import ArityError, NegativeCountError
from repro.relational.schema import Schema

Row = tuple


class BagBase:
    """Shared plumbing for :class:`Relation` and :class:`~repro.relational.delta.Delta`.

    Subclasses differ only in the sign discipline of counts.  The base class
    never enforces a sign; it provides construction, iteration, equality,
    repr and optional **hash indexes** (attribute positions -> key -> rows)
    that :func:`~repro.relational.algebra.join` probes so a small delta can
    join a large relation without scanning it.
    """

    __slots__ = ("schema", "_counts", "_indexes")

    #: Subclasses set this to reject invalid counts at normalization time.
    _allow_negative = True

    def __init__(
        self,
        schema: Schema,
        rows: Mapping[Row, int] | Iterable[Row] | None = None,
    ):
        self.schema = schema
        self._counts: dict[Row, int] = {}
        self._indexes: dict[tuple[int, ...], dict[tuple, set]] = {}
        if rows is None:
            return
        if isinstance(rows, Mapping):
            items: Iterable[tuple[Row, int]] = rows.items()
        else:
            items = ((row, 1) for row in rows)
        for row, count in items:
            self.add(row, count)

    @classmethod
    def _from_validated(cls, schema: Schema, counts: dict[Row, int]):
        """Adopt ``counts`` without per-row checks (internal fast path).

        The caller guarantees what ``add`` would have enforced: tuple rows
        of the right arity, no zero counts, and the sign discipline of
        ``cls``.  The dict is adopted, not copied -- the caller must hand
        over ownership.
        """
        out = cls.__new__(cls)
        out.schema = schema
        out._counts = counts
        out._indexes = {}
        return out

    # ------------------------------------------------------------------
    # Mutation primitives
    # ------------------------------------------------------------------
    def add(self, row: Row, count: int = 1) -> None:
        """Add ``count`` (possibly negative) occurrences of ``row``.

        Rows whose count reaches zero are dropped; a resulting negative count
        raises :class:`NegativeCountError` unless the subclass is signed.
        """
        row = tuple(row)
        if len(row) != len(self.schema):
            raise ArityError(row, len(self.schema))
        new = self._counts.get(row, 0) + count
        if new == 0:
            removed = self._counts.pop(row, None) is not None
            if removed and self._indexes:
                self._index_remove(row)
        elif new < 0 and not self._allow_negative:
            raise NegativeCountError(row, new)
        else:
            fresh = row not in self._counts
            self._counts[row] = new
            if fresh and self._indexes:
                self._index_add(row)

    # ------------------------------------------------------------------
    # Hash indexes
    # ------------------------------------------------------------------
    def create_index(self, attributes: Iterable[str]) -> None:
        """Maintain a hash index on ``attributes`` (idempotent).

        Sources index their join columns so ComputeJoin probes are O(delta)
        instead of O(relation).
        """
        positions = tuple(self.schema.index_of(a) for a in attributes)
        if positions in self._indexes:
            return
        index: dict[tuple, set] = {}
        for row in self._counts:
            index.setdefault(tuple(row[p] for p in positions), set()).add(row)
        self._indexes[positions] = index

    def get_index(self, positions: tuple[int, ...]):
        """The index on these attribute positions, or None."""
        return self._indexes.get(positions)

    def _index_add(self, row: Row) -> None:
        for positions, index in self._indexes.items():
            index.setdefault(tuple(row[p] for p in positions), set()).add(row)

    def _index_remove(self, row: Row) -> None:
        for positions, index in self._indexes.items():
            key = tuple(row[p] for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    def count(self, row: Row) -> int:
        """Multiplicity of ``row`` (0 when absent)."""
        return self._counts.get(tuple(row), 0)

    def items(self) -> Iterator[tuple[Row, int]]:
        """Iterate ``(row, count)`` pairs in insertion order."""
        return iter(self._counts.items())

    def rows(self) -> Iterator[Row]:
        """Iterate distinct rows (ignoring multiplicity)."""
        return iter(self._counts)

    def as_dict(self) -> dict[Row, int]:
        """A defensive copy of the row -> count mapping."""
        return dict(self._counts)

    @property
    def distinct_count(self) -> int:
        """Number of distinct rows."""
        return len(self._counts)

    @property
    def total_count(self) -> int:
        """Sum of all counts (can be negative for signed bags)."""
        return sum(self._counts.values())

    def __len__(self) -> int:
        return len(self._counts)

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._counts

    # ------------------------------------------------------------------
    # Value protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BagBase):
            return NotImplemented
        return self.schema == other.schema and self._counts == other._counts

    def __hash__(self):  # bags are mutable
        raise TypeError(f"{type(self).__name__} objects are unhashable")

    def __repr__(self) -> str:
        shown = sorted(self._counts.items())[:8]
        body = ", ".join(f"{row}[{count}]" for row, count in shown)
        more = "" if len(self._counts) <= 8 else f", ... ({len(self._counts)} rows)"
        return (
            f"{type(self).__name__}"
            f"({list(self.schema.attributes)!r}: {{{body}{more}}})"
        )

    def pretty(self, sort: bool = True) -> str:
        """Multi-line rendering used by examples and experiment reports."""
        header = " | ".join(self.schema.attributes)
        rule = "-" * len(header)
        entries = self._counts.items()
        if sort:
            entries = sorted(entries)
        lines = [header, rule]
        for row, count in entries:
            cells = " | ".join(str(v) for v in row)
            lines.append(
                f"{cells}  [{count:+d}]" if count < 0 else f"{cells}  [{count}]"
            )
        if len(lines) == 2:
            lines.append("(empty)")
        return "\n".join(lines)


class Relation(BagBase):
    """A bag with strictly positive counts (base relation / materialized view).

    >>> r = Relation(Schema(("A", "B")), [(1, 3), (2, 3)])
    >>> r.count((1, 3))
    1
    >>> r.insert((1, 3)); r.count((1, 3))
    2
    """

    __slots__ = ()
    _allow_negative = False

    def insert(self, row: Row, count: int = 1) -> None:
        """Insert ``count`` >= 1 occurrences of ``row``."""
        if count < 1:
            raise ValueError(f"insert count must be >= 1, got {count}")
        self.add(row, count)

    def delete(self, row: Row, count: int = 1) -> None:
        """Delete ``count`` >= 1 occurrences of ``row``.

        Raises :class:`NegativeCountError` if the row is not present with
        sufficient multiplicity -- deleting a non-existent tuple is a
        workload/algorithm bug, not a silent no-op.
        """
        if count < 1:
            raise ValueError(f"delete count must be >= 1, got {count}")
        self.add(row, -count)

    def apply_delta(self, delta: "BagBase") -> None:
        """Apply a signed delta in place (``V = V + Delta-V``).

        The paper installs each Delta-V into the materialized view this way;
        a count driven below zero raises, exposing incorrect maintenance.
        """
        if delta.schema.attributes != self.schema.attributes:
            from repro.relational.errors import HeterogeneousSchemaError

            raise HeterogeneousSchemaError(
                self.schema.attributes, delta.schema.attributes
            )
        # Validate fully before mutating so a failed apply leaves the view
        # untouched (install is atomic, as in the paper's UpdateView process).
        for row, count in delta.items():
            if self._counts.get(row, 0) + count < 0:
                raise NegativeCountError(row, self._counts.get(row, 0) + count)
        for row, count in delta.items():
            self.add(row, count)

    def copy(self) -> "Relation":
        """An independent copy (same schema object, copied counts)."""
        return Relation._from_validated(self.schema, dict(self._counts))


class FrozenRelation(Relation):
    """A read-only relation, typically *sharing* another bag's counts.

    The copy-on-write ``snapshot()`` of a source backend hands these out:
    the snapshot holder sees an immutable point-in-time state without the
    O(relation) copy, and any attempt to mutate it raises instead of
    silently aliasing into backend state.  Build with :meth:`freeze` (or
    ``_from_validated`` for an owned dict); the shared dict must never be
    mutated afterwards by the sharer -- that is the writer's CoW duty.
    """

    __slots__ = ()

    @classmethod
    def freeze(cls, source: BagBase) -> "FrozenRelation":
        """A frozen view over ``source``'s current counts (no copy)."""
        return cls._from_validated(source.schema, source._counts)

    def add(self, row: Row, count: int = 1) -> None:
        raise TypeError("FrozenRelation is read-only; copy() it to mutate")

    def copy(self) -> "Relation":
        """A mutable, independent copy (escape hatch for holders)."""
        return Relation._from_validated(self.schema, dict(self._counts))
