"""Relation schemas: ordered, uniquely named attributes with optional keys.

A :class:`Schema` is an immutable ordered tuple of attribute names.  Within a
view definition, attribute names must be unique *across* all participating
base relations (the paper writes ``R1[A, B], R2[C, D], R3[E, F]``); the
engine relies on that to give concatenated join rows an unambiguous schema.
Callers that want SQL-style qualification simply use names like ``"R1.A"``.

Key attributes are tracked because the Strobe family of algorithms
(ZGMW96) assumes the view projection retains a key of every base relation;
:class:`~repro.relational.view.ViewDefinition` validates that assumption for
those algorithms and the workload generator produces key columns.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.relational.errors import SchemaError, UnknownAttributeError


class Schema:
    """An immutable, ordered list of uniquely named attributes.

    Parameters
    ----------
    attributes:
        Ordered attribute names.  Must be non-empty and free of duplicates.
    key:
        Optional subset of ``attributes`` forming a key of the relation.
        Only consulted by algorithms that need the unique-key assumption
        (Strobe / C-Strobe); SWEEP never uses it.

    Examples
    --------
    >>> s = Schema(("A", "B"), key=("A",))
    >>> s.index_of("B")
    1
    >>> s.project_indices(["B"])
    (1,)
    """

    __slots__ = ("attributes", "key", "_index")

    def __init__(
        self,
        attributes: Sequence[str],
        key: Sequence[str] | None = None,
    ):
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("schema must have at least one attribute")
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attributes in schema: {list(attrs)!r}")
        self.attributes: tuple[str, ...] = attrs
        self._index: dict[str, int] = {a: i for i, a in enumerate(attrs)}
        key_attrs = tuple(key) if key is not None else ()
        for k in key_attrs:
            if k not in self._index:
                raise SchemaError(f"key attribute {k!r} not in schema {list(attrs)!r}")
        if len(set(key_attrs)) != len(key_attrs):
            raise SchemaError(f"duplicate key attributes: {list(key_attrs)!r}")
        self.key: tuple[str, ...] = key_attrs

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def index_of(self, attribute: str) -> int:
        """Return the position of ``attribute``, raising if absent."""
        try:
            return self._index[attribute]
        except KeyError:
            raise UnknownAttributeError(attribute, self.attributes) from None

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._index

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    def project_indices(self, attributes: Iterable[str]) -> tuple[int, ...]:
        """Return the positions of ``attributes`` in order (for projection)."""
        return tuple(self.index_of(a) for a in attributes)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def concat(self, other: "Schema") -> "Schema":
        """Schema of the concatenation of a row of ``self`` with one of ``other``.

        Keys are concatenated too: the combination of a key of each operand is
        a key of the (join) result for the equi-join chains used here.
        """
        overlap = set(self.attributes) & set(other.attributes)
        if overlap:
            raise SchemaError(
                f"cannot concatenate schemas sharing attributes {sorted(overlap)!r}"
            )
        return Schema(self.attributes + other.attributes, key=self.key + other.key)

    def project(self, attributes: Sequence[str]) -> "Schema":
        """Schema after projecting onto ``attributes`` (keys intersected)."""
        self.project_indices(attributes)  # validates names
        kept = tuple(a for a in self.key if a in set(attributes))
        return Schema(tuple(attributes), key=kept)

    def without_key(self) -> "Schema":
        """A copy of this schema with key information dropped."""
        return Schema(self.attributes)

    # ------------------------------------------------------------------
    # Value protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash(self.attributes)

    def __repr__(self) -> str:
        if self.key:
            return f"Schema({list(self.attributes)!r}, key={list(self.key)!r})"
        return f"Schema({list(self.attributes)!r})"
