"""SQL generation for sqlite3-backed data sources.

A sqlite-backed source stores its base relation as a table with one column
per attribute plus a ``_count`` multiplicity column (bag semantics with one
physical row per distinct tuple).  ``ComputeJoin(Delta-V, R)`` uploads the
partial view change into a temp table and evaluates the join *inside
sqlite*, so the reproduction exercises a real SQL engine at the sources as
the paper's architecture intends.

The predicate compiler covers the SPJ fragment used by view chains:
attribute equality, attribute/constant comparison, AND/OR/NOT and constants.
Parameters are always bound (never interpolated) for values.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.relational.predicate import (
    And,
    AttrCompare,
    AttrEq,
    Const,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.relational.schema import Schema

#: Name of the multiplicity column in every generated table.
COUNT_COLUMN = "_count"


def quote_ident(name: str) -> str:
    """Quote an identifier for sqlite (handles dots, spaces, keywords)."""
    return '"' + name.replace('"', '""') + '"'


def create_table_sql(table: str, schema: Schema) -> str:
    """DDL for a bag table: attribute columns + ``_count``, PK on attributes."""
    cols = ", ".join(quote_ident(a) for a in schema.attributes)
    col_defs = ", ".join(f"{quote_ident(a)} NOT NULL" for a in schema.attributes)
    return (
        f"CREATE TABLE {quote_ident(table)} ({col_defs},"
        f" {COUNT_COLUMN} INTEGER NOT NULL, PRIMARY KEY ({cols}))"
    )


def create_temp_table_sql(table: str, schema: Schema) -> str:
    """DDL for a temp table holding a signed partial view change."""
    col_defs = ", ".join(f"{quote_ident(a)}" for a in schema.attributes)
    return (
        f"CREATE TEMP TABLE {quote_ident(table)} ({col_defs},"
        f" {COUNT_COLUMN} INTEGER NOT NULL)"
    )


def drop_table_sql(table: str) -> str:
    """DDL to drop a table if it exists."""
    return f"DROP TABLE IF EXISTS {quote_ident(table)}"


def insert_rows_sql(table: str, schema: Schema) -> str:
    """Parameterized INSERT of ``(attributes..., _count)``."""
    cols = ", ".join(quote_ident(a) for a in schema.attributes)
    params = ", ".join("?" for _ in range(len(schema) + 1))
    return (
        f"INSERT INTO {quote_ident(table)} ({cols}, {COUNT_COLUMN})"
        f" VALUES ({params})"
    )


def upsert_count_sql(table: str, schema: Schema) -> str:
    """Parameterized count upsert: add to ``_count`` on key conflict."""
    cols = ", ".join(quote_ident(a) for a in schema.attributes)
    pk = ", ".join(quote_ident(a) for a in schema.attributes)
    params = ", ".join("?" for _ in range(len(schema) + 1))
    return (
        f"INSERT INTO {quote_ident(table)} ({cols}, {COUNT_COLUMN})"
        f" VALUES ({params})"
        f" ON CONFLICT ({pk}) DO UPDATE SET"
        f" {COUNT_COLUMN} = {COUNT_COLUMN} + excluded.{COUNT_COLUMN}"
    )


def prune_zero_sql(table: str) -> str:
    """Delete rows whose multiplicity dropped to zero (or below)."""
    return f"DELETE FROM {quote_ident(table)} WHERE {COUNT_COLUMN} <= 0"


def select_all_sql(table: str, schema: Schema) -> str:
    """SELECT of all attribute columns plus ``_count``."""
    cols = ", ".join(quote_ident(a) for a in schema.attributes)
    return f"SELECT {cols}, {COUNT_COLUMN} FROM {quote_ident(table)}"


# ---------------------------------------------------------------------------
# Predicate compilation
# ---------------------------------------------------------------------------

class UnsupportedPredicateError(ValueError):
    """The predicate uses a construct the SQL backend cannot express."""


def predicate_to_sql(
    predicate: Predicate,
    qualify: Callable[[str], str],
    params: list[object],
) -> str:
    """Compile ``predicate`` to a SQL boolean expression.

    ``qualify`` maps an attribute name to a fully qualified, quoted column
    reference (e.g. ``dv."B"``).  Constant operands are appended to
    ``params`` and referenced with ``?`` placeholders.
    """
    if isinstance(predicate, TruePredicate):
        return "1"
    if isinstance(predicate, Const):
        return "1" if predicate.value else "0"
    if isinstance(predicate, AttrEq):
        return f"{qualify(predicate.left)} = {qualify(predicate.right)}"
    if isinstance(predicate, AttrCompare):
        params.append(predicate.value)
        op = "<>" if predicate.op == "!=" else predicate.op
        op = "=" if op == "==" else op
        return f"{qualify(predicate.attribute)} {op} ?"
    if isinstance(predicate, And):
        parts = [predicate_to_sql(p, qualify, params) for p in predicate.parts]
        return "(" + " AND ".join(parts) + ")"
    if isinstance(predicate, Or):
        parts = [predicate_to_sql(p, qualify, params) for p in predicate.parts]
        return "(" + " OR ".join(parts) + ")"
    if isinstance(predicate, Not):
        return "(NOT " + predicate_to_sql(predicate.part, qualify, params) + ")"
    raise UnsupportedPredicateError(
        f"cannot compile predicate of type {type(predicate).__name__} to SQL"
    )


def join_partial_sql(
    base_table: str,
    base_schema: Schema,
    partial_table: str,
    partial_attrs: Sequence[str],
    condition: Predicate,
    output_attrs: Sequence[str],
) -> tuple[str, list[object]]:
    """The ComputeJoin query evaluated inside sqlite.

    Joins the uploaded partial view change (``partial_table``) with the base
    relation (``base_table``) under ``condition`` and returns rows in
    ``output_attrs`` order with multiplied counts.

    Returns ``(sql, params)``.
    """
    partial_set = set(partial_attrs)
    base_set = set(base_schema.attributes)

    def qualify(attr: str) -> str:
        if attr in partial_set:
            return f"dv.{quote_ident(attr)}"
        if attr in base_set:
            return f"r.{quote_ident(attr)}"
        raise UnsupportedPredicateError(
            f"attribute {attr!r} belongs to neither join operand"
        )

    params: list[object] = []
    on_clause = predicate_to_sql(condition, qualify, params)
    select_cols = ", ".join(qualify(a) for a in output_attrs)
    sql = (
        f"SELECT {select_cols}, dv.{COUNT_COLUMN} * r.{COUNT_COLUMN}"
        f" FROM {quote_ident(partial_table)} dv"
        f" JOIN {quote_ident(base_table)} r ON {on_clause}"
    )
    return sql, params


__all__ = [
    "COUNT_COLUMN",
    "UnsupportedPredicateError",
    "create_table_sql",
    "create_temp_table_sql",
    "drop_table_sql",
    "insert_rows_sql",
    "join_partial_sql",
    "predicate_to_sql",
    "prune_zero_sql",
    "quote_ident",
    "select_all_sql",
    "upsert_count_sql",
]
