"""Parse SQL view definitions into :class:`ViewDefinition`.

The paper writes its example view as SQL (Section 5.2)::

    SELECT R2.D, R3.F
    WHERE  R1.B = R2.C AND R2.D = R3.E

This module parses that fragment -- ``SELECT`` projection, optional
``FROM`` relation list, ``WHERE`` as a conjunction of simple comparisons
-- against a *catalog* of relation schemas, and produces the equivalent
:class:`~repro.relational.view.ViewDefinition`:

* attribute equalities across two relations become join conditions,
* every other comparison (attribute vs literal, or an equality within one
  relation) becomes part of the selection,
* ``SELECT *`` keeps all attributes.

The supported fragment is deliberately the paper's: conjunctions only
(``AND``), comparison operators ``= != <> < <= > >=``, integer / float /
single-quoted string literals.  Anything else raises
:class:`SqlParseError` with a pointed message.

Example
-------
>>> from repro.relational.schema import Schema
>>> catalog = {"R1": Schema(("A", "B")), "R2": Schema(("C", "D")),
...            "R3": Schema(("E", "F"))}
>>> view = parse_view(
...     "SELECT R2.D, R3.F WHERE R1.B = R2.C AND R2.D = R3.E",
...     catalog, name="V")
>>> view.projection
('D', 'F')
>>> len(view.join_conditions)
2
"""

from __future__ import annotations

import re
from collections.abc import Mapping, Sequence

from repro.relational.predicate import (
    AttrCompare,
    AttrEq,
    Predicate,
    conjunction,
)
from repro.relational.schema import Schema
from repro.relational.view import ViewDefinition


class SqlParseError(ValueError):
    """The SQL text is outside the supported SPJ fragment (or malformed)."""


_TOKEN_RE = re.compile(
    r"""
    \s*(
        (?P<string>'(?:[^']|'')*')      # 'quoted string'
      | (?P<number>\d+\.\d+|\d+)        # 123 or 1.5
      | (?P<op><=|>=|<>|!=|=|<|>)       # comparison operators
      | (?P<punct>[,*()])               # punctuation
      | (?P<word>[A-Za-z_][\w.]*)       # identifiers (possibly dotted)
    )
    """,
    re.VERBOSE,
)

_OP_MAP = {
    "=": "==", "<>": "!=", "!=": "!=",
    "<": "<", "<=": "<=", ">": ">", ">=": ">=",
}


def _tokenize(sql: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(sql):
        if sql[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(sql, pos)
        if match is None or match.start(1) != pos:
            raise SqlParseError(f"unexpected character {sql[pos]!r} at offset {pos}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str], catalog: Mapping[str, Schema]):
        self.tokens = tokens
        self.pos = 0
        self.catalog = catalog
        self.mentioned: list[str] = []  # relations in first-mention order

    # -- token helpers -------------------------------------------------
    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise SqlParseError("unexpected end of query")
        self.pos += 1
        return token

    def expect_keyword(self, word: str) -> None:
        token = self.next()
        if token.upper() != word:
            raise SqlParseError(f"expected {word}, got {token!r}")

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token is not None and token.upper() == word

    # -- attribute resolution -------------------------------------------
    def resolve(self, token: str) -> tuple[str, str]:
        """Resolve a (possibly qualified) identifier to (relation, attr)."""
        if "." in token:
            rel, attr = token.split(".", 1)
            if rel not in self.catalog:
                raise SqlParseError(f"unknown relation {rel!r} in {token!r}")
            if attr not in self.catalog[rel]:
                raise SqlParseError(
                    f"relation {rel!r} has no attribute {attr!r}"
                )
        else:
            owners = [
                rel for rel, schema in self.catalog.items() if token in schema
            ]
            if not owners:
                raise SqlParseError(f"unknown attribute {token!r}")
            if len(owners) > 1:
                raise SqlParseError(
                    f"attribute {token!r} is ambiguous (in {sorted(owners)});"
                    " qualify it"
                )
            rel, attr = owners[0], token
        if rel not in self.mentioned:
            self.mentioned.append(rel)
        return rel, attr

    # -- clauses ---------------------------------------------------------
    def parse_projection(self) -> list[str] | None:
        self.expect_keyword("SELECT")
        if self.peek() == "*":
            self.next()
            return None
        attrs: list[str] = []
        while True:
            token = self.next()
            _, attr = self.resolve(token)
            attrs.append(attr)
            if self.peek() == ",":
                self.next()
                continue
            break
        return attrs

    def parse_from(self) -> list[str] | None:
        if not self.at_keyword("FROM"):
            return None
        self.next()
        relations: list[str] = []
        while True:
            token = self.next()
            if token not in self.catalog:
                raise SqlParseError(f"unknown relation {token!r} in FROM")
            relations.append(token)
            if token not in self.mentioned:
                self.mentioned.append(token)
            if self.peek() == ",":
                self.next()
                continue
            break
        return relations

    def parse_where(self) -> list[tuple]:
        """Returns comparison triples ``(lhs, op, rhs)``; attrs resolved."""
        if self.peek() is None:
            return []
        self.expect_keyword("WHERE")
        comparisons = []
        while True:
            comparisons.append(self.parse_comparison())
            if self.at_keyword("AND"):
                self.next()
                continue
            break
        if self.peek() is not None:
            raise SqlParseError(
                f"unsupported construct at {self.peek()!r} (the supported"
                " fragment is SELECT ... [FROM ...] WHERE <comparison>"
                " AND <comparison> ...)"
            )
        return comparisons

    def parse_comparison(self) -> tuple:
        lhs = self.next()
        if lhs.upper() in ("OR", "NOT") or lhs == "(":
            raise SqlParseError(
                f"{lhs!r} is not supported; only AND-conjunctions of simple"
                " comparisons"
            )
        op = self.next()
        if op not in _OP_MAP:
            raise SqlParseError(f"expected a comparison operator, got {op!r}")
        rhs = self.next()
        return (lhs, _OP_MAP[op], rhs)

    # -- literals ----------------------------------------------------------
    @staticmethod
    def literal_value(token: str):
        if token.startswith("'"):
            return token[1:-1].replace("''", "'")
        if re.fullmatch(r"\d+", token):
            return int(token)
        if re.fullmatch(r"\d+\.\d+", token):
            return float(token)
        return None  # an identifier

    def is_attribute(self, token: str) -> bool:
        return self.literal_value(token) is None


def parse_view(
    sql: str,
    catalog: Mapping[str, Schema],
    name: str = "V",
    relation_order: Sequence[str] | None = None,
) -> ViewDefinition:
    """Parse a SQL SPJ view over ``catalog`` into a :class:`ViewDefinition`.

    Relation order (the sweep chain) is, in priority: ``relation_order``,
    the ``FROM`` clause, or the catalog's insertion order restricted to the
    relations the query references.
    """
    parser = _Parser(_tokenize(sql), catalog)
    projection = parser.parse_projection()
    from_relations = parser.parse_from()
    comparisons = parser.parse_where()

    joins: list[Predicate] = []
    selections: list[Predicate] = []
    for lhs, op, rhs in comparisons:
        lhs_is_attr = parser.is_attribute(lhs)
        rhs_is_attr = parser.is_attribute(rhs)
        if lhs_is_attr and rhs_is_attr:
            l_rel, l_attr = parser.resolve(lhs)
            r_rel, r_attr = parser.resolve(rhs)
            if op != "==":
                raise SqlParseError(
                    f"only equality is supported between attributes"
                    f" ({lhs} {op} {rhs})"
                )
            if l_rel == r_rel:
                selections.append(AttrEq(l_attr, r_attr))
            else:
                joins.append(AttrEq(l_attr, r_attr))
        elif lhs_is_attr or rhs_is_attr:
            attr_token, literal_token = (lhs, rhs) if lhs_is_attr else (rhs, lhs)
            if not lhs_is_attr:
                # flip the operator: 5 < A  ==  A > 5
                flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
                op = flip.get(op, op)
            _, attr = parser.resolve(attr_token)
            selections.append(
                AttrCompare(attr, op, parser.literal_value(literal_token))
            )
        else:
            raise SqlParseError(
                f"comparison of two literals ({lhs} {op} {rhs}) is not useful"
            )

    if relation_order is not None:
        order = list(relation_order)
        unknown = [r for r in order if r not in catalog]
        if unknown:
            raise SqlParseError(f"unknown relations in relation_order: {unknown}")
    elif from_relations is not None:
        order = from_relations
    else:
        # Default: the catalog's insertion order restricted to referenced
        # relations -- the catalog *is* the source chain.
        order = [r for r in catalog if r in set(parser.mentioned)]
    if not order:
        raise SqlParseError("the query references no relations")

    referenced = set(parser.mentioned)
    missing = referenced - set(order)
    if missing:
        raise SqlParseError(
            f"relations {sorted(missing)} are referenced but not in the"
            " relation order"
        )

    return ViewDefinition(
        name=name,
        relation_names=tuple(order),
        schemas=tuple(catalog[r] for r in order),
        join_conditions=tuple(joins),
        selection=conjunction(selections) if selections else None,
        projection=projection,
    )


__all__ = ["SqlParseError", "parse_view"]
