"""SPJ view definitions over a chain of base relations.

The paper's warehouse view is::

    V = pi_ProjAttr sigma_SelectCond (R1 |><| R2 |><| ... |><| Rn)

where each ``Ri`` lives at data source ``i``.  :class:`ViewDefinition`
captures the relation schemas (in chain order), the join conditions, the
optional selection and the optional projection, and knows how to

* fully recompute the view from a snapshot of all base relations (the
  correctness oracle and the naive-recompute baseline use this), and
* determine which join conditions apply when a sweep extends a partial
  result by one more relation (used by :mod:`repro.relational.incremental`).

Relation indices are **1-based** throughout, matching the paper's
``R1 ... Rn`` notation.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.relational.delta import Delta
from repro.relational.errors import SchemaError
from repro.relational.predicate import (
    Predicate,
    TruePredicate,
    conjunction,
)
from repro.relational.relation import BagBase, Relation
from repro.relational.schema import Schema


class ViewDefinition:
    """An SPJ view over ``n`` base relations in chain order.

    Parameters
    ----------
    name:
        Display name of the view (e.g. ``"V"``).
    relation_names:
        Names of the base relations in join order, e.g. ``("R1", "R2", "R3")``.
        Each name identifies the data source that stores the relation.
    schemas:
        One :class:`Schema` per relation, in the same order.  Attribute names
        must be globally unique across all relations.
    join_conditions:
        Predicates (typically :class:`AttrEq`) relating attributes of
        different relations.  Every condition must mention attributes of at
        least two relations.  For the connectivity required by the sweep
        algorithms, conditions normally link adjacent relations in the chain.
    selection:
        Optional selection predicate over the wide (concatenated) schema.
    projection:
        Optional list of attributes retained by the view; ``None`` keeps all.

    Examples
    --------
    The paper's Section 5.2 view::

        ViewDefinition(
            name="V",
            relation_names=("R1", "R2", "R3"),
            schemas=(Schema(("A", "B")), Schema(("C", "D")), Schema(("E", "F"))),
            join_conditions=(AttrEq("B", "C"), AttrEq("D", "E")),
            projection=("D", "F"),
        )
    """

    def __init__(
        self,
        name: str,
        relation_names: Sequence[str],
        schemas: Sequence[Schema],
        join_conditions: Sequence[Predicate] = (),
        selection: Predicate | None = None,
        projection: Sequence[str] | None = None,
    ):
        if len(relation_names) != len(schemas):
            raise SchemaError(
                f"{len(relation_names)} relation names but {len(schemas)} schemas"
            )
        if not schemas:
            raise SchemaError("a view needs at least one base relation")
        if len(set(relation_names)) != len(relation_names):
            raise SchemaError(f"duplicate relation names: {list(relation_names)!r}")

        self.name = name
        self.relation_names = tuple(relation_names)
        self.schemas = tuple(schemas)
        self.join_conditions = tuple(join_conditions)
        self.selection: Predicate = (
            selection if selection is not None else TruePredicate()
        )
        self.projection = tuple(projection) if projection is not None else None

        # Wide schema: concatenation of all base schemas, left to right.
        wide = schemas[0]
        for s in schemas[1:]:
            wide = wide.concat(s)
        self.wide_schema: Schema = wide

        # attribute -> 1-based relation index
        self._attr_owner: dict[str, int] = {}
        for idx, schema in enumerate(self.schemas, start=1):
            for attr in schema.attributes:
                self._attr_owner[attr] = idx

        # Memo for conditions_joining: sweeps ask the same (index, covered)
        # combinations once per step of every update, so cache the plans.
        self._join_plan_cache: dict[tuple[int, frozenset[int]], Predicate] = {}
        self._range_schema_cache: dict[tuple[int, int], Schema] = {}
        # Validate conditions/selection/projection reference known attributes
        # and that each join condition spans at least two relations.
        self._condition_rels: list[frozenset[int]] = []
        for cond in self.join_conditions:
            rels = frozenset(self.relation_index_of_attr(a) for a in cond.attributes())
            if len(rels) < 2:
                raise SchemaError(
                    f"join condition {cond!r} references a single relation"
                )
            self._condition_rels.append(rels)
        for attr in self.selection.attributes():
            self.relation_index_of_attr(attr)
        if self.projection is not None:
            for attr in self.projection:
                self.relation_index_of_attr(attr)
            if not self.projection:
                raise SchemaError("projection must not be empty")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_relations(self) -> int:
        """Number of base relations (the paper's ``n``)."""
        return len(self.schemas)

    def schema_of(self, index: int) -> Schema:
        """Schema of relation ``index`` (1-based)."""
        self._check_index(index)
        return self.schemas[index - 1]

    def name_of(self, index: int) -> str:
        """Relation/source name at ``index`` (1-based)."""
        self._check_index(index)
        return self.relation_names[index - 1]

    def index_of_name(self, name: str) -> int:
        """1-based index of the relation called ``name``."""
        try:
            return self.relation_names.index(name) + 1
        except ValueError:
            raise SchemaError(
                f"unknown relation {name!r}; view has {list(self.relation_names)!r}"
            ) from None

    def relation_index_of_attr(self, attribute: str) -> int:
        """1-based index of the relation owning ``attribute``."""
        try:
            return self._attr_owner[attribute]
        except KeyError:
            raise SchemaError(
                f"attribute {attribute!r} not defined by any relation of view"
                f" {self.name!r}"
            ) from None

    def _check_index(self, index: int) -> None:
        if not 1 <= index <= self.n_relations:
            raise IndexError(
                f"relation index {index} out of range 1..{self.n_relations}"
            )

    # ------------------------------------------------------------------
    # Schemas of partial results
    # ------------------------------------------------------------------
    def wide_schema_range(self, lo: int, hi: int) -> Schema:
        """Concatenated schema of relations ``lo..hi`` inclusive (canonical order).

        Memoized: every sweep step of every update asks for the same ranges.
        """
        self._check_index(lo)
        self._check_index(hi)
        if lo > hi:
            raise IndexError(f"empty range {lo}..{hi}")
        cached = self._range_schema_cache.get((lo, hi))
        if cached is not None:
            return cached
        schema = self.schemas[lo - 1]
        for s in self.schemas[lo:hi]:
            schema = schema.concat(s)
        self._range_schema_cache[(lo, hi)] = schema
        return schema

    @property
    def view_schema(self) -> Schema:
        """Schema of the materialized view (after projection)."""
        if self.projection is None:
            return self.wide_schema
        return self.wide_schema.project(self.projection)

    # ------------------------------------------------------------------
    # Join-condition planning for sweeps
    # ------------------------------------------------------------------
    def conditions_joining(self, new_index: int, covered: frozenset[int]) -> Predicate:
        """Conjunction of join conditions that become applicable when
        relation ``new_index`` joins a partial result covering ``covered``.

        A condition applies exactly when it mentions ``new_index`` and all
        its other relations are already covered; since coverage grows by one
        relation at a time, every condition fires exactly once per sweep.
        Plans are memoized: the same step recurs for every update.
        """
        key = (new_index, covered)
        cached = self._join_plan_cache.get(key)
        if cached is not None:
            return cached
        applicable = [
            cond
            for cond, rels in zip(self.join_conditions, self._condition_rels)
            if new_index in rels and rels <= (covered | {new_index})
        ]
        plan = conjunction(applicable)
        self._join_plan_cache[key] = plan
        return plan

    def validate_chain_connectivity(self) -> None:
        """Raise :class:`SchemaError` unless every adjacent pair is linked.

        Sweep evaluation joins relations in chain order; without a condition
        between each adjacent prefix and the next relation, intermediate
        results are cross products.  Workload generators call this to ensure
        benchmarks never accidentally measure cross-product blowup.
        """
        for j in range(2, self.n_relations + 1):
            covered = frozenset(range(1, j))
            cond = self.conditions_joining(j, covered)
            if isinstance(cond, TruePredicate):
                raise SchemaError(
                    f"view {self.name!r}: no join condition links relation"
                    f" {self.name_of(j)!r} to the prefix; chain is disconnected"
                )

    # ------------------------------------------------------------------
    # Strobe-family key assumption
    # ------------------------------------------------------------------
    def projection_keeps_all_keys(self) -> bool:
        """True iff the projection retains a declared key of every relation.

        Strobe and C-Strobe (ZGMW96) require this; SWEEP does not.
        """
        kept = set(self.projection) if self.projection is not None else set(
            self.wide_schema.attributes
        )
        for schema in self.schemas:
            if not schema.key:
                return False
            if not set(schema.key) <= kept:
                return False
        return True

    def key_indices_in_view(self, index: int) -> tuple[int, ...]:
        """Positions of relation ``index``'s key attributes inside view rows.

        Only meaningful when :meth:`projection_keeps_all_keys` holds.
        """
        schema = self.schema_of(index)
        return self.view_schema.project_indices(schema.key)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_wide(self, states: Mapping[str, BagBase]) -> BagBase:
        """The full join chain over ``states`` (no selection/projection).

        ``states`` maps relation names to their current contents.
        """
        from repro.relational.algebra import join, project

        result: BagBase = states[self.relation_names[0]]
        if result.schema.attributes != self.schemas[0].attributes:
            raise SchemaError(
                f"state for {self.relation_names[0]!r} has wrong schema"
            )
        covered = frozenset((1,))
        for idx in range(2, self.n_relations + 1):
            rel = states[self.name_of(idx)]
            cond = self.conditions_joining(idx, covered)
            result = join(result, rel, cond)
            covered = covered | {idx}
        # The left-to-right join already yields canonical attribute order.
        if result.schema.attributes != self.wide_schema.attributes:
            result = project(result, self.wide_schema.attributes)
        return result

    def finalize(self, wide: BagBase) -> BagBase:
        """Apply selection and projection to a wide (full-width) result."""
        from repro.relational.algebra import project, select

        out = wide
        if not isinstance(self.selection, TruePredicate):
            out = select(out, self.selection)
        if self.projection is not None:
            out = project(out, self.projection)
        return out

    def evaluate(self, states: Mapping[str, BagBase]) -> Relation:
        """Recompute the materialized view from scratch over ``states``."""
        wide = self.evaluate_wide(states)
        result = self.finalize(wide)
        if isinstance(result, Delta):
            result = result.positive_part()
        return result

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        parts = [
            f"ViewDefinition({self.name!r}",
            f"relations={list(self.relation_names)!r}",
        ]
        if self.join_conditions:
            parts.append(f"on={list(self.join_conditions)!r}")
        if not isinstance(self.selection, TruePredicate):
            parts.append(f"where={self.selection!r}")
        if self.projection is not None:
            parts.append(f"project={list(self.projection)!r}")
        return ", ".join(parts) + ")"
