"""Asyncio distributed runtime: the simulator's protocol stack over real I/O.

The simulation kernel and this runtime expose the same contract --
``now``, ``schedule``, ``spawn`` -- so every protocol object in
:mod:`repro.warehouse` and :mod:`repro.sources` runs unchanged on either
host.  The runtime adds what a real deployment needs and a simulator does
not: transports (in-process bounded queues or loopback/remote TCP with
FIFO sessions, retries and backpressure), wall-clock scheduling with a
configurable virtual-time scale, and quiescence detection by polling
instead of an empty event heap.

Entry points:

- :func:`run_distributed` / :func:`quick_distributed` -- one-call runs,
  mirroring :func:`repro.harness.runner.run_experiment`.
- :class:`SourceNode` / :class:`WarehouseNode` -- deployable sites for
  multi-process setups (``repro serve-source`` / ``repro serve-warehouse``).
"""

from repro.runtime.chaos import (
    PROFILES,
    ChaosConfig,
    ChaosLocalChannel,
    ChaosStats,
    ChaosTcpProxy,
    FaultPlan,
)
from repro.runtime.codec import WireCodec
from repro.runtime.distributed import (
    DistributedRunResult,
    quick_distributed,
    run_distributed,
    run_distributed_async,
    serve_source_async,
    serve_warehouse_async,
)
from repro.runtime.errors import (
    QuiescenceTimeout,
    RuntimeHostError,
    TransportError,
    TransportOverflowError,
    TransportRetriesExceeded,
    WireProtocolError,
)
from repro.runtime.kernel import AsyncRuntime
from repro.runtime.nodes import CentralSourceNode, SourceNode, WarehouseNode
from repro.runtime.shard import (
    CLEAN_FAILURE_EXIT,
    FailoverSpec,
    RebalanceCoordinator,
    RebalanceSpec,
    ShardCrashed,
    ShardNode,
    ShardSupervisor,
    ShardVerificationError,
    ShardedRunResult,
    ShardedSourceFront,
    ShardedSourceNode,
    build_sharded_supervisor,
    free_port,
    launch_sharded_processes,
    run_sharded,
    run_sharded_async,
    serve_shard_async,
    serve_sharded_source_async,
)
from repro.runtime.tcp import ChannelListener, TcpChannel, TcpChannelConfig, probe_peer
from repro.runtime.transport import LocalChannel, RuntimeChannel

__all__ = [
    "AsyncRuntime",
    "CLEAN_FAILURE_EXIT",
    "CentralSourceNode",
    "FailoverSpec",
    "RebalanceCoordinator",
    "RebalanceSpec",
    "ChannelListener",
    "ChaosConfig",
    "ChaosLocalChannel",
    "ChaosStats",
    "ChaosTcpProxy",
    "DistributedRunResult",
    "FaultPlan",
    "LocalChannel",
    "PROFILES",
    "QuiescenceTimeout",
    "RuntimeChannel",
    "RuntimeHostError",
    "ShardCrashed",
    "ShardNode",
    "ShardSupervisor",
    "ShardVerificationError",
    "ShardedRunResult",
    "ShardedSourceFront",
    "ShardedSourceNode",
    "SourceNode",
    "TcpChannel",
    "TcpChannelConfig",
    "TransportError",
    "TransportOverflowError",
    "TransportRetriesExceeded",
    "WarehouseNode",
    "WireCodec",
    "WireProtocolError",
    "build_sharded_supervisor",
    "free_port",
    "launch_sharded_processes",
    "probe_peer",
    "quick_distributed",
    "run_distributed",
    "run_distributed_async",
    "run_sharded",
    "run_sharded_async",
    "serve_shard_async",
    "serve_sharded_source_async",
    "serve_source_async",
    "serve_warehouse_async",
]
