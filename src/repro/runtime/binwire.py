"""The binary serialization kernel shared by wire, WAL and checkpoints.

One encoding, three consumers: TCP frames negotiated at codec **v3**
(:mod:`repro.runtime.tcp`), WAL record payloads
(:mod:`repro.durability.wal`) and checkpoint bodies
(:mod:`repro.durability.checkpoint`).  The value model is exactly JSON's
(``None``/bool/int/float/str/list/dict with string keys), so every
payload the JSON path can carry travels unchanged -- the codec layers
above this module do not know or care which serializer framed them.

Document format
---------------
A document is ``MAGIC`` (one byte, ``0xB3``) + ``FORMAT`` (one byte) +
one encoded value.  Compact JSON (``separators=(",", ":")``, the only
form this codebase emits) always begins with one of ``{[`` digits ``"``
``-tfn``, never byte ``0xB3``, so a reader distinguishes the two formats
from the first byte alone -- that sniff is what makes decode
downgrade-safe without any frame-level flag.

Values are type-tagged:

====== ===================================================================
tag    payload
====== ===================================================================
0x00   ``None``
0x01   ``True``
0x02   ``False``
0x03   int: zigzag varint
0x04   float: 8-byte big-endian IEEE double
0x05   str definition: varint UTF-8 byte length + bytes; the string is
       appended to the document's intern table
0x06   str reference: varint index into the intern table
0x07   bytes: varint length + raw bytes
0x08   list: varint element count + elements
0x09   dict: varint pair count + alternating key (str) / value
0x80+  fixint: ``0x80 | z`` encodes the zigzagged value ``z`` (< 0x80)
       in one byte, i.e. every int in ``[-64, 63]`` -- row values,
       counts, sequence numbers and arities are almost always this small
====== ===================================================================

String interning is **per document**: the first occurrence of a string
is a definition, every repeat a one- or two-byte reference.  Keys repeat
relentlessly in the protocol's envelopes (a batched ``mb`` frame carries
``"kind"``/``"seq"``/``"rows"``... once per message), which is where the
bulk of the byte reduction over JSON comes from.

On top of the per-document table sits :data:`STATIC_STRINGS`, a table of
well-known protocol strings that is *part of the format* (HPACK's static
table is the precedent): both sides pre-seed their intern tables with
it, so an envelope key like ``"request_id"`` costs two bytes even on its
first occurrence in a document.  That matters because most wire frames
are small single-message envelopes where every key would otherwise be a
first occurrence.  The table is append-only across format history --
reordering or removing an entry is a format break and requires bumping
``FORMAT``.  Unknown strings degrade gracefully to per-document
definitions, so the table is an optimization, never a correctness
dependency.

This module deliberately imports nothing from :mod:`repro` -- it sits
below the runtime *and* the durability layer, and both reach it lazily
or directly without closing the package import cycle.  Errors raise
:class:`BinwireError` (a ``ValueError``); callers wrap it into their own
protocol error.
"""

from __future__ import annotations

import struct

MAGIC = 0xB3
FORMAT = 1

#: the one-byte prefix a reader sniffs to pick the decoder.
MAGIC_PREFIX = bytes((MAGIC,))

_DOUBLE = struct.Struct(">d")

_TAG_NONE = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_REF = 0x06
_TAG_BYTES = 0x07
_TAG_LIST = 0x08
_TAG_DICT = 0x09
_FIXINT = 0x80

#: Format-level static intern table (indices 0..len-1); per-document
#: definitions continue after it.  APPEND-ONLY: changing existing
#: entries breaks every reader and writer pair -- bump ``FORMAT``.
STATIC_STRINGS = (
    # TCP frame envelopes (repro.runtime.tcp).
    "t", "msg", "mb", "ack", "hello", "welcome",
    "channel", "next", "expect", "codec", "epoch", "frames", "seq", "m",
    # Message envelope and senders (repro.runtime.codec).
    "kind", "sender", "sent_at", "payload",
    "query", "update", "answer", "insert", "warehouse", "central",
    # Payload types and keys (repro.runtime.codec, repro.sources.messages).
    "type", "update_notice", "query_request", "query_answer",
    "multi_query_request", "multi_query_answer", "eca_query", "eca_answer",
    "position_request", "position_answer",
    "snapshot_request", "snapshot_answer",
    "request_id", "source_index", "target_index",
    "partial", "partials", "rows", "f", "w", "lo", "hi",
    "sign", "subs", "terms", "view", "position", "applied_at",
    "txn_id", "txn_total",
    # Durable envelopes (repro.durability.wal / .checkpoint / .encoding).
    "wal", "generation", "format", "crc", "body",
    "views", "pending", "applied_counts", "delivered_marks",
    "installs", "request_watermark", "written_at",
    "stores", "locality", "aux", "snapshot_delta", "snapshot_relation",
    "encoded_row_count",
)
_STATIC_INDEX = {text: index for index, text in enumerate(STATIC_STRINGS)}
assert len(_STATIC_INDEX) == len(STATIC_STRINGS), "duplicate static string"


class BinwireError(ValueError):
    """Malformed document or unencodable value."""


def is_binary(data: bytes | bytearray | memoryview) -> bool:
    """True when ``data`` is a binwire document (vs UTF-8 JSON)."""
    return bytes(data[:1]) == MAGIC_PREFIX


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _append_varint(buf: bytearray, value: int) -> None:
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def _encode(obj, buf: bytearray, interns: dict) -> None:
    # Exact-type dispatch ordered by frequency in protocol traffic; the
    # exact check on int also excludes bool (its own type) for free.
    kind = type(obj)
    if kind is int:
        z = obj << 1 if obj >= 0 else (-obj << 1) - 1  # zigzag
        if z < 0x80:
            buf.append(_FIXINT | z)
            return
        buf.append(_TAG_INT)
        _append_varint(buf, z)
        return
    if kind is str:
        index = interns.get(obj)
        if index is not None:
            buf.append(_TAG_REF)
            _append_varint(buf, index)
            return
        interns[obj] = len(interns)
        raw = obj.encode("utf-8")
        buf.append(_TAG_STR)
        _append_varint(buf, len(raw))
        buf += raw
        return
    if kind is dict:
        buf.append(_TAG_DICT)
        _append_varint(buf, len(obj))
        for key, value in obj.items():
            if type(key) is not str:
                raise BinwireError(
                    f"dict keys must be str, got {type(key).__name__}"
                    " (stringify keys explicitly, as the JSON path does)"
                )
            _encode(key, buf, interns)
            _encode(value, buf, interns)
        return
    if kind is list or kind is tuple:
        buf.append(_TAG_LIST)
        _append_varint(buf, len(obj))
        for item in obj:
            _encode(item, buf, interns)
        return
    if kind is float:
        buf.append(_TAG_FLOAT)
        buf += _DOUBLE.pack(obj)
        return
    if obj is None:
        buf.append(_TAG_NONE)
        return
    if obj is True:
        buf.append(_TAG_TRUE)
        return
    if obj is False:
        buf.append(_TAG_FALSE)
        return
    if kind is bytes or kind is bytearray:
        buf.append(_TAG_BYTES)
        _append_varint(buf, len(obj))
        buf += obj
        return
    # Subclass stragglers (IntEnum, defaultdict...) take the slow path.
    if isinstance(obj, bool):
        buf.append(_TAG_TRUE if obj else _TAG_FALSE)
        return
    if isinstance(obj, int):
        _encode(int(obj), buf, interns)
        return
    if isinstance(obj, float):
        _encode(float(obj), buf, interns)
        return
    if isinstance(obj, str):
        _encode(str(obj), buf, interns)
        return
    if isinstance(obj, dict):
        _encode(dict(obj), buf, interns)
        return
    if isinstance(obj, (list, tuple)):
        _encode(list(obj), buf, interns)
        return
    raise BinwireError(f"cannot encode {type(obj).__name__} values")


def dumps(obj) -> bytes:
    """Serialize one JSON-shaped value to a self-describing document."""
    buf = bytearray((MAGIC, FORMAT))
    _encode(obj, buf, dict(_STATIC_INDEX))
    return bytes(buf)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def _read_varint(data, pos: int) -> tuple[int, int]:
    value = 0
    shift = 0
    try:
        while True:
            byte = data[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value, pos
            shift += 7
    except IndexError:
        raise BinwireError("truncated varint") from None


def _decode(data, pos: int, strings: list):
    try:
        tag = data[pos]
    except IndexError:
        raise BinwireError("truncated document") from None
    pos += 1
    if tag >= _FIXINT:
        z = tag & 0x7F
        return (z >> 1) if not z & 1 else -((z + 1) >> 1), pos
    if tag == _TAG_REF:
        index, pos = _read_varint(data, pos)
        try:
            return strings[index], pos
        except IndexError:
            raise BinwireError(f"string reference {index} out of range") from None
    if tag == _TAG_STR:
        length, pos = _read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise BinwireError("truncated string")
        text = str(data[pos:end], "utf-8")
        strings.append(text)
        return text, pos + length
    if tag == _TAG_DICT:
        count, pos = _read_varint(data, pos)
        obj = {}
        for _ in range(count):
            key, pos = _decode(data, pos, strings)
            value, pos = _decode(data, pos, strings)
            obj[key] = value
        return obj, pos
    if tag == _TAG_LIST:
        count, pos = _read_varint(data, pos)
        items = [None] * count
        for index in range(count):
            items[index], pos = _decode(data, pos, strings)
        return items, pos
    if tag == _TAG_INT:
        z, pos = _read_varint(data, pos)
        return (z >> 1) if not z & 1 else -((z + 1) >> 1), pos
    if tag == _TAG_FLOAT:
        end = pos + 8
        if end > len(data):
            raise BinwireError("truncated float")
        return _DOUBLE.unpack_from(data, pos)[0], end
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_BYTES:
        length, pos = _read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise BinwireError("truncated bytes")
        return bytes(data[pos:end]), end
    raise BinwireError(f"unknown type tag 0x{tag:02x}")


def loads(data: bytes | bytearray | memoryview):
    """Deserialize one document produced by :func:`dumps`."""
    if len(data) < 2 or data[0] != MAGIC:
        raise BinwireError("not a binwire document (bad magic byte)")
    if data[1] != FORMAT:
        raise BinwireError(f"unsupported binwire format {data[1]}")
    value, pos = _decode(data, 2, list(STATIC_STRINGS))
    if pos != len(data):
        raise BinwireError(
            f"{len(data) - pos} trailing byte(s) after the document"
        )
    return value


__all__ = [
    "FORMAT",
    "MAGIC",
    "MAGIC_PREFIX",
    "STATIC_STRINGS",
    "BinwireError",
    "dumps",
    "is_binary",
    "loads",
]
