"""Deterministic fault injection under the runtime's FIFO transports.

SWEEP's correctness argument (Section 4) needs exactly one communication
property: reliable FIFO channels.  The transports provide it -- but a
transport that is only ever exercised on a healthy loopback proves
nothing about the session machinery (sequence numbers, duplicate
suppression, reconnect-and-resume) that *implements* the property.  This
module injects faults **below** the FIFO contract, so the protocol still
sees exactly-once in-order delivery while the delivery path suffers:

* **delay bursts** -- whole runs of consecutive messages held back;
* **duplicate delivery** -- a wire copy re-injected after a lag, which
  the receive filter must suppress;
* **drops** -- a wire attempt lost and retransmitted (for TCP: the
  connection killed mid-frame, forcing reconnect-and-resume);
* **crash-restart blackouts** -- periodic windows during which the link
  is dark (for TCP: dials are accepted and immediately closed, as a
  crashed-and-restarting peer would);
* **source stalls / bursts** -- the *sending side* goes quiet for a
  while and then releases the held block back-to-back: head-of-line
  latency that preserves FIFO but turns a smooth update stream into
  burst arrivals (the arrival pattern batched schedulers and the
  durability WAL see under real source hiccups);
* **reorders within the retry budget** -- a frame attempts the wire out
  of order; the receive filter rejects it by sequence number and the
  in-order retransmit lands within ``retransmit_delay`` (for TCP, where
  a byte stream cannot reorder, the connection is killed instead and the
  session resumes in order).

Every fault decision is a pure function of ``(seed, channel name, event
key)`` -- :class:`FaultPlan` draws each decision from its own
freshly-keyed RNG -- so a fault schedule is reproducible regardless of
how the event loop interleaves tasks.

:data:`PROFILES` names the stock fault mixes the conformance harness
(``python -m repro conformance``) sweeps every algorithm through.
"""

from __future__ import annotations

import asyncio
import random
import struct
from collections import deque
from dataclasses import dataclass, fields

from repro.runtime.errors import TransportOverflowError
from repro.runtime.transport import RuntimeChannel
from repro.simulation.channel import Message
from repro.simulation.metrics import MetricsCollector

_HEADER = struct.Struct(">I")
_LENGTH_MASK = 0x7FFFFFFF


@dataclass(frozen=True)
class ChaosConfig:
    """One named fault mix.  All durations are in *virtual* time units.

    A zero probability (or period) disables that fault; the default
    instance is entirely healthy, so wrapping a channel with it changes
    nothing but accounting.
    """

    name: str = "healthy"
    #: Probability that a whole block of ``delay_burst`` consecutive
    #: messages is delayed (bursty latency, not i.i.d. jitter).
    delay_prob: float = 0.0
    #: Mean of the exponential extra latency applied to a delayed message.
    delay_mean: float = 0.0
    #: Number of consecutive messages sharing one burst decision.
    delay_burst: int = 1
    #: Probability a delivered message is followed by a duplicate wire copy.
    dup_prob: float = 0.0
    #: How long after the original the duplicate lands.
    dup_lag: float = 2.0
    #: Probability one wire attempt is lost (local) / one frame kills the
    #: connection (TCP), forcing a retransmit or reconnect-and-resume.
    drop_prob: float = 0.0
    #: Pause between a lost wire attempt and its retransmission.
    retransmit_delay: float = 1.0
    #: Lost attempts are capped per message so progress is guaranteed.
    max_drops_per_message: int = 3
    #: Period of crash-restart blackout windows (0 disables them).
    crash_period: float = 0.0
    #: How long each blackout keeps the link dark.
    crash_downtime: float = 0.0
    #: Probability a block of ``stall_burst`` messages opens a source
    #: stall: the sender goes quiet, everything queued behind waits too
    #: (head-of-line, FIFO preserved), then the block lands back-to-back.
    stall_prob: float = 0.0
    #: Mean of the exponential stall length.
    stall_mean: float = 0.0
    #: Messages sharing one stall decision (the burst released after it).
    stall_burst: int = 1
    #: Probability a frame attempts the wire out of order.  The receive
    #: filter rejects it and the in-order retransmit follows within
    #: ``retransmit_delay`` -- reorder bounded by the retry budget.
    reorder_prob: float = 0.0

    @property
    def active(self) -> bool:
        """True when any fault can actually fire."""
        return (
            self.delay_prob > 0
            or self.dup_prob > 0
            or self.drop_prob > 0
            or (self.crash_period > 0 and self.crash_downtime > 0)
            or (self.stall_prob > 0 and self.stall_mean > 0)
            or self.reorder_prob > 0
        )


#: Stock fault mixes, tuned so a conformance run at ``time_scale=0.002``
#: sees faults comparable to its update inter-arrival gap (i.e. sweeps
#: routinely race with both updates and injected faults).
PROFILES: dict[str, ChaosConfig] = {
    "healthy": ChaosConfig(),
    "delay": ChaosConfig(
        name="delay", delay_prob=0.35, delay_mean=8.0, delay_burst=3
    ),
    "dup": ChaosConfig(name="dup", dup_prob=0.35, dup_lag=3.0),
    "drop": ChaosConfig(name="drop", drop_prob=0.3, retransmit_delay=1.5),
    "crash": ChaosConfig(
        name="crash",
        drop_prob=0.12,
        retransmit_delay=1.0,
        crash_period=40.0,
        crash_downtime=6.0,
    ),
    "hostile": ChaosConfig(
        name="hostile",
        delay_prob=0.25,
        delay_mean=5.0,
        delay_burst=2,
        dup_prob=0.2,
        dup_lag=2.0,
        drop_prob=0.15,
        retransmit_delay=1.0,
        crash_period=60.0,
        crash_downtime=5.0,
    ),
    # Source-side profiles: faults originate at the sending site rather
    # than on the wire.
    "source-stall": ChaosConfig(
        name="source-stall", stall_prob=0.2, stall_mean=10.0, stall_burst=2
    ),
    "source-burst": ChaosConfig(
        name="source-burst", stall_prob=0.45, stall_mean=4.0, stall_burst=5
    ),
    "source-reorder": ChaosConfig(
        name="source-reorder", reorder_prob=0.3, retransmit_delay=1.0
    ),
    # What a crashing-and-recovering peer looks like from the outside:
    # long dark windows plus stalls while it replays its durable state.
    # (Actual kill-and-recover of a *shard* is driven by the durability
    # harness -- see repro.harness.recovery -- which pairs this profile
    # with a CrashPlan.)
    "crash-restart": ChaosConfig(
        name="crash-restart",
        drop_prob=0.1,
        retransmit_delay=1.0,
        crash_period=30.0,
        crash_downtime=8.0,
        stall_prob=0.15,
        stall_mean=5.0,
        stall_burst=2,
    ),
}


def profile(name_or_config: "str | ChaosConfig | None") -> ChaosConfig | None:
    """Resolve a profile name (or pass a config/None through)."""
    if name_or_config is None or isinstance(name_or_config, ChaosConfig):
        return name_or_config
    try:
        return PROFILES[name_or_config]
    except KeyError:
        raise KeyError(
            f"unknown chaos profile {name_or_config!r};"
            f" available: {sorted(PROFILES)}"
        ) from None


@dataclass
class ChaosStats:
    """What the fault layer actually did during one run (all channels)."""

    delays_injected: int = 0
    dups_injected: int = 0
    dups_suppressed: int = 0
    drops_injected: int = 0
    connections_killed: int = 0
    blackouts_hit: int = 0
    stalls_injected: int = 0
    reorders_injected: int = 0
    #: out-of-order wire attempts the receive filter rejected.
    reorders_suppressed: int = 0

    @property
    def faults_injected(self) -> int:
        return (
            self.delays_injected
            + self.dups_injected
            + self.drops_injected
            + self.connections_killed
            + self.blackouts_hit
            + self.stalls_injected
            + self.reorders_injected
        )

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultPlan:
    """Deterministic fault decisions for one channel.

    Each query draws from a RNG keyed by ``(seed, scope, decision, event
    key)``; no RNG state is shared between decisions, so the schedule is
    independent of task interleaving and identical across reruns.
    """

    def __init__(self, config: ChaosConfig, seed: int, scope: str):
        self.config = config
        self.seed = seed
        self.scope = scope

    def _rng(self, *key: object) -> random.Random:
        return random.Random(f"{self.seed}:{self.scope}:" + ":".join(map(str, key)))

    # ------------------------------------------------------------------
    def delay(self, key: int) -> float:
        """Extra latency for event ``key`` (0.0 when not in a delayed burst)."""
        cfg = self.config
        if cfg.delay_prob <= 0 or cfg.delay_mean <= 0:
            return 0.0
        block = (key - 1) // max(1, cfg.delay_burst)
        if self._rng("burst", block).random() >= cfg.delay_prob:
            return 0.0
        return self._rng("delay", key).expovariate(1.0 / cfg.delay_mean)

    def duplicated(self, key: int) -> bool:
        """Whether event ``key``'s wire frame gets a duplicate copy."""
        cfg = self.config
        return cfg.dup_prob > 0 and self._rng("dup", key).random() < cfg.dup_prob

    def drop_attempts(self, key: int) -> int:
        """Failed wire attempts before event ``key`` goes through."""
        cfg = self.config
        if cfg.drop_prob <= 0:
            return 0
        lost = 0
        while (
            lost < cfg.max_drops_per_message
            and self._rng("drop", key, lost).random() < cfg.drop_prob
        ):
            lost += 1
        return lost

    def killed(self, key: int) -> bool:
        """TCP only: whether forwarding event ``key`` kills the connection."""
        cfg = self.config
        return cfg.drop_prob > 0 and self._rng("kill", key).random() < cfg.drop_prob

    def stall(self, key: int) -> float:
        """Source-stall length opened by event ``key`` (0.0 for most).

        Decisions are per block of ``stall_burst`` events, and only the
        block head pays the sleep -- the rest of the block rides its wake
        and lands as a burst.
        """
        cfg = self.config
        if cfg.stall_prob <= 0 or cfg.stall_mean <= 0:
            return 0.0
        burst = max(1, cfg.stall_burst)
        block = (key - 1) // burst
        if key != block * burst + 1:
            return 0.0
        if self._rng("stall-block", block).random() >= cfg.stall_prob:
            return 0.0
        return self._rng("stall", block).expovariate(1.0 / cfg.stall_mean)

    def reordered(self, key: int) -> bool:
        """Whether event ``key`` provokes an out-of-order wire attempt."""
        cfg = self.config
        return (
            cfg.reorder_prob > 0
            and self._rng("reorder", key).random() < cfg.reorder_prob
        )

    def blackout_remaining(self, now: float) -> float:
        """Virtual time left in the blackout covering ``now`` (0 if none).

        Windows open at ``k * crash_period`` for ``k >= 1`` and last
        ``crash_downtime`` -- a crashed peer that restarts on a cadence.
        """
        cfg = self.config
        if cfg.crash_period <= 0 or cfg.crash_downtime <= 0 or now < cfg.crash_period:
            return 0.0
        phase = now % cfg.crash_period
        if phase < cfg.crash_downtime:
            return cfg.crash_downtime - phase
        return 0.0


class ChaosLocalChannel(RuntimeChannel):
    """A :class:`LocalChannel` twin whose wire misbehaves on schedule.

    The channel keeps its own miniature session layer -- send-side
    sequence numbers, a receive-side expected-sequence filter -- exactly
    the machinery :class:`~repro.runtime.tcp.TcpChannel` uses, so drops
    retransmit and duplicates are suppressed while the destination
    mailbox still observes exactly-once FIFO delivery.
    """

    def __init__(
        self,
        runtime,
        name: str,
        destination,
        metrics: MetricsCollector | None = None,
        max_queue: int = 1024,
        config: ChaosConfig | None = None,
        seed: int = 0,
        stats: ChaosStats | None = None,
    ):
        super().__init__(runtime, name, metrics, max_queue)
        self.destination = destination
        self.config = config if config is not None else ChaosConfig()
        self.plan = FaultPlan(self.config, seed, name)
        self.stats = stats if stats is not None else ChaosStats()
        self._pending: deque[tuple[int, Message]] = deque()
        self._next_seq = 1
        self._expect = 1
        self._undelivered = 0
        self._wake = asyncio.Event()
        self._task = runtime.create_task(self._deliver_loop(), f"chaos:{name}")

    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        if self._undelivered >= self.max_queue:
            raise TransportOverflowError(
                f"channel {self.name!r}: bounded send queue full"
                f" ({self.max_queue} messages); pace the producer with drain()"
            )
        self._account(message)
        self._pending.append((self._next_seq, message))
        self._next_seq += 1
        self._undelivered += 1
        self._wake.set()

    @property
    def idle(self) -> bool:
        return self._undelivered == 0

    @property
    def queued(self) -> int:
        return self._undelivered

    # ------------------------------------------------------------------
    async def _deliver_loop(self) -> None:
        while True:
            if not self._pending:
                self._wake.clear()
                if not self._pending:
                    await self._wake.wait()
                continue
            seq, message = self._pending[0]
            # Crash-restart blackout: the link is dark, nothing moves.
            remaining = self.plan.blackout_remaining(self.runtime.now)
            if remaining > 0:
                self.stats.blackouts_hit += 1
                await self.runtime.sleep(remaining)
            # Source stall: the sender goes quiet; everything queued
            # behind this message waits too (head-of-line, FIFO kept),
            # then the held block lands back-to-back.
            stall = self.plan.stall(seq)
            if stall > 0:
                self.stats.stalls_injected += 1
                await self.runtime.sleep(stall)
            # Lost wire attempts: the paper's reliable channel is built
            # from retransmission, so a drop costs time, not messages.
            for _ in range(self.plan.drop_attempts(seq)):
                self.stats.drops_injected += 1
                await self.runtime.sleep(self.config.retransmit_delay)
            delay = self.plan.delay(seq)
            if delay > 0:
                self.stats.delays_injected += 1
                await self.runtime.sleep(delay)
            if self.plan.reordered(seq) and len(self._pending) > 1:
                # Out-of-order wire attempt: the frame *behind* this one
                # tries to jump the queue.  The receive filter rejects it
                # by sequence number, and its in-order (re)transmission
                # happens on its own turn, within the retry budget.
                self.stats.reorders_injected += 1
                next_seq, next_message = self._pending[1]
                self._wire_deliver(next_seq, next_message)
                await self.runtime.sleep(self.config.retransmit_delay)
            self._wire_deliver(seq, message)
            if self.plan.duplicated(seq):
                # The duplicate lands *after* later traffic may have gone
                # through -- the receive filter must reject it by seq.
                self.stats.dups_injected += 1
                self.runtime.schedule(
                    self.config.dup_lag,
                    lambda s=seq, m=message: self._wire_deliver(s, m),
                )
            self._pending.popleft()
            self._undelivered -= 1

    def _wire_deliver(self, seq: int, message: Message) -> None:
        """The receive filter: deliver in-sequence frames exactly once."""
        if seq != self._expect:
            if seq > self._expect:
                self.stats.reorders_suppressed += 1
            else:
                self.stats.dups_suppressed += 1
            return
        message.delivered_at = self.runtime.now
        self.destination.put(message)
        self._expect += 1


class ChaosTcpProxy:
    """A frame-aware TCP proxy that misbehaves between two real sockets.

    Sits between a :class:`~repro.runtime.tcp.TcpChannel` and its
    :class:`~repro.runtime.tcp.ChannelListener`.  The client->server
    direction is forwarded frame by frame (4-byte length prefix kept
    verbatim, bodies never decoded) so individual frames can be delayed,
    duplicated, or turned into a mid-stream connection kill; the
    server->client direction (welcomes and acks) passes through
    untouched.  The first frame of every connection -- the hello -- is
    never faulted: a duplicated or dropped handshake is a *different*
    failure mode than the session resume under test.

    During a blackout window new dials are accepted and immediately
    closed and live connections are torn down, which is what dialing a
    crashed-and-restarting peer looks like from the outside.
    """

    def __init__(
        self,
        runtime,
        name: str,
        upstream: tuple[str, int],
        config: ChaosConfig,
        seed: int = 0,
        stats: ChaosStats | None = None,
        listen_host: str = "127.0.0.1",
    ):
        self.runtime = runtime
        self.name = name
        self.upstream = upstream
        self.config = config
        self.plan = FaultPlan(config, seed, f"proxy:{name}")
        self.stats = stats if stats is not None else ChaosStats()
        self.listen_host = listen_host
        self._server: asyncio.AbstractServer | None = None
        self._port = 0
        self._conn_count = 0
        self._live: set[asyncio.StreamWriter] = set()
        self._reaper: asyncio.Task | None = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.listen_host, 0
        )
        self._port = self._server.sockets[0].getsockname()[1]
        if self.config.crash_period > 0 and self.config.crash_downtime > 0:
            self._reaper = asyncio.ensure_future(self._crash_reaper())

    @property
    def address(self) -> tuple[str, int]:
        return (self.listen_host, self._port)

    async def aclose(self) -> None:
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except (asyncio.CancelledError, Exception):
                pass
            self._reaper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._live):
            writer.close()

    # ------------------------------------------------------------------
    async def _crash_reaper(self) -> None:
        """Kill every live connection when a blackout window opens."""
        in_blackout = False
        while True:
            dark = self.plan.blackout_remaining(self.runtime.now) > 0
            if dark and not in_blackout:
                self.stats.blackouts_hit += 1
                for writer in list(self._live):
                    writer.close()
            in_blackout = dark
            await asyncio.sleep(0.005)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._handle_inner(reader, writer)
        except asyncio.CancelledError:
            pass  # loop shutdown mid-connection: exit quietly

    async def _handle_inner(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self.plan.blackout_remaining(self.runtime.now) > 0:
            # The peer is "down": accept and slam the door; the dialing
            # channel backs off and retries until the restart.
            writer.close()
            return
        conn = self._conn_count
        self._conn_count += 1
        try:
            up_reader, up_writer = await asyncio.open_connection(*self.upstream)
        except OSError:
            writer.close()
            return
        self._live.update((writer, up_writer))
        # First pump to stop wins: a kill on the client->server side must
        # tear down the server->client side too, or the dialing channel
        # never learns its connection died.
        pumps = {
            asyncio.ensure_future(self._pump_frames(reader, up_writer, conn)),
            asyncio.ensure_future(self._pump_raw(up_reader, writer)),
        }
        try:
            await asyncio.wait(pumps, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for task in pumps:
                task.cancel()
            for task in pumps:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
            self._live.discard(writer)
            self._live.discard(up_writer)
            for w in (writer, up_writer):
                w.close()
                try:
                    await w.wait_closed()
                except (OSError, asyncio.CancelledError):
                    pass

    async def _pump_frames(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        conn: int,
    ) -> None:
        """Forward client->server frames, injecting scheduled faults."""
        frame_idx = 0
        while True:
            header = await reader.readexactly(_HEADER.size)
            (prefix,) = _HEADER.unpack(header)
            body = await reader.readexactly(prefix & _LENGTH_MASK)
            frame_idx += 1
            key = conn * 1_000_003 + frame_idx
            if frame_idx > 1:  # never fault the hello handshake
                if self.plan.killed(key):
                    # Drop the frame *and* the connection: the sender's
                    # unacked window resends it after the reconnect.
                    self.stats.connections_killed += 1
                    return
                if self.plan.reordered(key):
                    # A byte stream cannot reorder; the closest
                    # observable effect is this frame not arriving in
                    # order -- kill the connection and let the session
                    # resume, which re-sends everything in order.
                    self.stats.reorders_injected += 1
                    return
                stall = self.plan.stall(key)
                if stall > 0:
                    # Head-of-line: the whole stream behind this frame
                    # waits with it, exactly like a stalled source.
                    self.stats.stalls_injected += 1
                    await self.runtime.sleep(stall)
                delay = self.plan.delay(key)
                if delay > 0:
                    self.stats.delays_injected += 1
                    await self.runtime.sleep(delay)
                if self.plan.duplicated(key):
                    self.stats.dups_injected += 1
                    writer.write(header + body)
            writer.write(header + body)
            await writer.drain()

    async def _pump_raw(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            data = await reader.read(4096)
            if not data:
                return
            writer.write(data)
            await writer.drain()

    def __repr__(self) -> str:
        return (
            f"ChaosTcpProxy({self.name!r}, {self.listen_host}:{self._port}"
            f" -> {self.upstream[0]}:{self.upstream[1]},"
            f" profile={self.config.name})"
        )


__all__ = [
    "ChaosConfig",
    "ChaosLocalChannel",
    "ChaosStats",
    "ChaosTcpProxy",
    "FaultPlan",
    "PROFILES",
    "profile",
]
