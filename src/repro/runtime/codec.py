"""JSON wire codec for the protocol payloads.

Both endpoints of a channel share the same :class:`~repro.relational.view.
ViewDefinition` (in deployment it is derived from the same seeded workload
configuration), so rows travel bare: the receiver reattaches the schema
from the view and the ``(lo, hi)`` range or source index carried alongside.
Rows are tuples of JSON scalars; counts are signed integers.

The codec is deliberately symmetric with :func:`repro.simulation.metrics.
estimate_size`: a decoded message reports the same payload row count the
simulator would have accounted, which keeps distributed metrics comparable
with simulator metrics.

Codec versions
--------------
Three codec versions exist, negotiated per channel during the TCP
handshake (see :mod:`repro.runtime.tcp`) and selectable via
``WireCodec(view, version=...)``:

* **v1** (default): ``[[row values], count]`` per row -- verbose but
  self-describing.
* **v2**: one flat array ``{"f": [v1, v2, ..., count, v1, v2, ...]}`` of
  ``arity + 1`` entries per row.  The receiver re-slices it using the
  schema both endpoints already share; for the small tuples this protocol
  ships, dropping the per-row array nesting roughly halves the JSON byte
  volume and the encode/parse work.
* **v3**: the v2 *object layout* serialized through the binary kernel
  (:mod:`repro.runtime.binwire`) instead of JSON -- type-tagged scalars,
  per-frame string interning, varint counts, and the same batched
  ``arity + 1`` flat row blocks.  v3 changes how a *frame* is serialized,
  not the message objects inside it, so this module's encode path for
  ``version >= 2`` covers it unchanged; the transport picks the frame
  serializer (see ``write_frame``/``read_frame`` in
  :mod:`repro.runtime.tcp`).

Decoding is version-agnostic -- v1/v2 shapes are distinguishable (list
vs. object) and binwire frames are distinguishable from JSON by their
first byte, so a decoder accepts any version regardless of its configured
version.  Only *encoding* follows the negotiated version, which is what
makes the handshake downgrade-safe.
"""

from __future__ import annotations

from typing import Any

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.view import ViewDefinition
from repro.runtime.errors import WireProtocolError
from repro.simulation.channel import Message
from repro.sources.messages import (
    EcaAnswer,
    EcaQuery,
    EcaQueryTerm,
    MultiQueryAnswer,
    MultiQueryRequest,
    PositionAnswer,
    PositionRequest,
    QueryAnswer,
    QueryRequest,
    SnapshotAnswer,
    SnapshotRequest,
    UpdateNotice,
)


#: Highest codec version this runtime implements (and will accept in a
#: handshake).
CODEC_VERSION_MAX = 3

#: Version a channel *advertises* by default.  v3 is implemented but held
#: at opt-in (``--codec-version 3``) until the bench gate keeps it honest;
#: decode accepts all versions regardless.
CODEC_VERSION_DEFAULT = 2


def _encode_rows(bag, version: int = 1):
    if version >= 2:
        flat: list = []
        for row, count in bag.items():
            flat.extend(row)
            flat.append(count)
        return {"f": flat}
    return [[list(row), count] for row, count in bag.items()]


def _decode_counts(rows, arity: int) -> dict[tuple, int]:
    """Row counts from either encoding (v1 list / v2 flat object)."""
    if isinstance(rows, dict):
        flat = rows["f"]
        stride = arity + 1
        if len(flat) % stride:
            raise WireProtocolError(
                f"flat row array of {len(flat)} entries is not a multiple of"
                f" arity+1 ({stride})"
            )
        return {
            tuple(flat[i : i + arity]): int(flat[i + arity])
            for i in range(0, len(flat), stride)
        }
    return {tuple(row): int(count) for row, count in rows}


class WireCodec:
    """Encode/decode :class:`Message` envelopes for one view's channels.

    ``version`` selects the row encoding used by ``encode_*`` (decoding
    always accepts every version); transports override it per call with
    the version negotiated for their channel.
    """

    def __init__(
        self,
        view: ViewDefinition,
        version: int = 1,
        extra_views: tuple[ViewDefinition, ...] = (),
    ):
        if not 1 <= version <= CODEC_VERSION_MAX:
            raise ValueError(
                f"codec version must be 1..{CODEC_VERSION_MAX}, got {version}"
            )
        self.view = view
        self.version = version
        # Multi-view channels (sharded warehouse) carry partials of several
        # same-chain views; each partial is tagged with its view name so
        # the receiver rebinds it to the right definition (the selection
        # predicate lives on the view, and ComputeJoin evaluates it).
        self.views: dict[str, ViewDefinition] = {view.name: view}
        for extra in extra_views:
            self.views[extra.name] = extra

    # ------------------------------------------------------------------
    # Envelope
    # ------------------------------------------------------------------
    def encode_message(self, message: Message, version: int | None = None) -> dict:
        """A JSON-safe dict for one channel envelope."""
        return {
            "kind": message.kind,
            "sender": message.sender,
            "sent_at": message.sent_at,
            "payload": self.encode_payload(message.payload, version),
        }

    def decode_message(self, obj: dict) -> Message:
        try:
            return Message(
                kind=obj["kind"],
                sender=obj["sender"],
                payload=self.decode_payload(obj["payload"]),
                sent_at=float(obj.get("sent_at", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WireProtocolError(f"malformed envelope: {exc}") from exc

    # ------------------------------------------------------------------
    # Payloads
    # ------------------------------------------------------------------
    @staticmethod
    def _epoch_field(payload: Any) -> dict:
        """Incarnation tag for query/answer payloads; omitted when 0 so
        pre-durability wire frames are byte-identical."""
        epoch = getattr(payload, "epoch", 0)
        return {"epoch": epoch} if epoch else {}

    def encode_payload(self, payload: Any, version: int | None = None) -> dict:
        v = self.version if version is None else version
        if isinstance(payload, UpdateNotice):
            return {
                "type": "update_notice",
                "source_index": payload.source_index,
                "seq": payload.seq,
                "applied_at": payload.applied_at,
                "txn_id": payload.txn_id,
                "txn_total": payload.txn_total,
                "rows": _encode_rows(payload.delta, v),
            }
        if isinstance(payload, QueryRequest):
            return {
                "type": "query_request",
                "request_id": payload.request_id,
                "target_index": payload.target_index,
                "partial": self._encode_partial(payload.partial, v),
                **self._epoch_field(payload),
            }
        if isinstance(payload, QueryAnswer):
            return {
                "type": "query_answer",
                "request_id": payload.request_id,
                "partial": self._encode_partial(payload.partial, v),
                **self._epoch_field(payload),
            }
        if isinstance(payload, MultiQueryRequest):
            return {
                "type": "multi_query_request",
                "request_id": payload.request_id,
                "target_index": payload.target_index,
                "partials": [self._encode_partial(p, v) for p in payload.partials],
                **self._epoch_field(payload),
            }
        if isinstance(payload, MultiQueryAnswer):
            return {
                "type": "multi_query_answer",
                "request_id": payload.request_id,
                "partials": [self._encode_partial(p, v) for p in payload.partials],
                **self._epoch_field(payload),
            }
        if isinstance(payload, EcaQuery):
            return {
                "type": "eca_query",
                "request_id": payload.request_id,
                "terms": [
                    {
                        "sign": term.sign,
                        "subs": {
                            str(index): _encode_rows(delta, v)
                            for index, delta in term.substitutions.items()
                        },
                    }
                    for term in payload.terms
                ],
            }
        if isinstance(payload, EcaAnswer):
            return {
                "type": "eca_answer",
                "request_id": payload.request_id,
                "rows": _encode_rows(payload.delta, v),
            }
        if isinstance(payload, PositionRequest):
            return {
                "type": "position_request",
                "request_id": payload.request_id,
                **self._epoch_field(payload),
            }
        if isinstance(payload, PositionAnswer):
            return {
                "type": "position_answer",
                "request_id": payload.request_id,
                "source_index": payload.source_index,
                "position": payload.position,
                **self._epoch_field(payload),
            }
        if isinstance(payload, SnapshotRequest):
            return {
                "type": "snapshot_request",
                "request_id": payload.request_id,
                **self._epoch_field(payload),
            }
        if isinstance(payload, SnapshotAnswer):
            # Delta-encoded answers carry pre-encoded v2 flat rows; pass
            # them through (decoding is version-agnostic, so this is safe
            # even on a v1-negotiated channel).
            return {
                "type": "snapshot_answer",
                "request_id": payload.request_id,
                "source_index": payload.source_index,
                "rows": (
                    payload.rows
                    if payload.relation is None
                    else _encode_rows(payload.relation, v)
                ),
                **self._epoch_field(payload),
            }
        raise WireProtocolError(
            f"no wire encoding for payload type {type(payload).__name__}"
        )

    def decode_payload(self, obj: dict) -> Any:
        kind = obj.get("type")
        if kind == "update_notice":
            index = int(obj["source_index"])
            return UpdateNotice(
                source_index=index,
                seq=int(obj["seq"]),
                delta=self._decode_delta(self.view.schema_of(index), obj["rows"]),
                applied_at=float(obj["applied_at"]),
                txn_id=obj.get("txn_id"),
                txn_total=int(obj.get("txn_total", 0)),
            )
        if kind == "query_request":
            return QueryRequest(
                request_id=int(obj["request_id"]),
                partial=self._decode_partial(obj["partial"]),
                target_index=int(obj["target_index"]),
                epoch=int(obj.get("epoch", 0)),
            )
        if kind == "query_answer":
            return QueryAnswer(
                request_id=int(obj["request_id"]),
                partial=self._decode_partial(obj["partial"]),
                epoch=int(obj.get("epoch", 0)),
            )
        if kind == "multi_query_request":
            return MultiQueryRequest(
                request_id=int(obj["request_id"]),
                partials=[self._decode_partial(p) for p in obj["partials"]],
                target_index=int(obj["target_index"]),
                epoch=int(obj.get("epoch", 0)),
            )
        if kind == "multi_query_answer":
            return MultiQueryAnswer(
                request_id=int(obj["request_id"]),
                partials=[self._decode_partial(p) for p in obj["partials"]],
                epoch=int(obj.get("epoch", 0)),
            )
        if kind == "eca_query":
            return EcaQuery(
                request_id=int(obj["request_id"]),
                terms=[
                    EcaQueryTerm(
                        substitutions={
                            int(index): self._decode_delta(
                                self.view.schema_of(int(index)), rows
                            )
                            for index, rows in term["subs"].items()
                        },
                        sign=int(term["sign"]),
                    )
                    for term in obj["terms"]
                ],
            )
        if kind == "eca_answer":
            return EcaAnswer(
                request_id=int(obj["request_id"]),
                delta=self._decode_delta(self.view.wide_schema, obj["rows"]),
            )
        if kind == "position_request":
            return PositionRequest(
                request_id=int(obj["request_id"]),
                epoch=int(obj.get("epoch", 0)),
            )
        if kind == "position_answer":
            return PositionAnswer(
                request_id=int(obj["request_id"]),
                source_index=int(obj["source_index"]),
                position=int(obj["position"]),
                epoch=int(obj.get("epoch", 0)),
            )
        if kind == "snapshot_request":
            return SnapshotRequest(
                request_id=int(obj["request_id"]),
                epoch=int(obj.get("epoch", 0)),
            )
        if kind == "snapshot_answer":
            index = int(obj["source_index"])
            schema = self.view.schema_of(index)
            return SnapshotAnswer(
                request_id=int(obj["request_id"]),
                source_index=index,
                relation=Relation(
                    schema, _decode_counts(obj["rows"], len(schema))
                ),
                epoch=int(obj.get("epoch", 0)),
            )
        raise WireProtocolError(f"unknown payload type {kind!r}")

    # ------------------------------------------------------------------
    def _encode_partial(self, partial: PartialView, version: int) -> dict:
        obj = {
            "lo": partial.lo,
            "hi": partial.hi,
            "rows": _encode_rows(partial.delta, version),
        }
        # Tag partials of non-primary views; untagged frames keep the
        # pre-family wire shape, so single-view channels are unchanged.
        if partial.view.name != self.view.name:
            obj["view"] = partial.view.name
        return obj

    def _decode_partial(self, obj: dict) -> PartialView:
        lo, hi = int(obj["lo"]), int(obj["hi"])
        name = obj.get("view")
        if name is None:
            view = self.view
        else:
            view = self.views.get(name)
            if view is None:
                raise WireProtocolError(
                    f"partial references unknown view {name!r}"
                    f" (known: {sorted(self.views)})"
                )
        schema = view.wide_schema_range(lo, hi)
        return PartialView(view, lo, hi, self._decode_delta(schema, obj["rows"]))

    @staticmethod
    def _decode_delta(schema: Schema, rows) -> Delta:
        return Delta(schema, _decode_counts(rows, len(schema)))


__all__ = ["CODEC_VERSION_DEFAULT", "CODEC_VERSION_MAX", "WireCodec"]
