"""Single-call distributed runs and the serve-* entry points.

:func:`run_distributed` is the runtime twin of
:func:`repro.harness.runner.run_experiment`: the same
:class:`~repro.harness.config.ExperimentConfig` produces the same seeded
workload, but the sites are hosted on an :class:`AsyncRuntime` and talk
through real transports -- loopback TCP sessions (``transport="tcp"``) or
in-process bounded queues (``transport="local"``).  Latency-model knobs are
ignored: the network *is* the latency.  Everything else -- metrics, trace,
consistency oracle, report rendering -- is the same machinery, so a
distributed run and a simulator run are directly comparable.

Quiescence detection replaces the simulator's empty event heap: the run is
over when every scheduled update was applied and delivered, every process
is parked on a mailbox, and no transport has frames in flight -- stable
across two consecutive polls.
"""

from __future__ import annotations

import asyncio
import time as _time
from dataclasses import dataclass

from repro.consistency.levels import ConsistencyLevel
from repro.consistency.oracle import RunRecorder
from repro.harness.config import ExperimentConfig
from repro.harness.results import RunResult
from repro.harness.runner import (
    algorithm_kwargs,
    build_workload,
    record_predicate_cache_delta,
)
from repro.relational.predicate import compile_cache_stats
from repro.warehouse.locality import build_locality
from repro.runtime.chaos import (
    ChaosConfig,
    ChaosLocalChannel,
    ChaosStats,
    ChaosTcpProxy,
    profile,
)
from repro.runtime.kernel import AsyncRuntime
from repro.runtime.nodes import CentralSourceNode, SourceNode, WarehouseNode
from repro.runtime.tcp import TcpChannelConfig, probe_peer
from repro.runtime.transport import LocalChannel
from repro.simulation.mailbox import Mailbox
from repro.simulation.metrics import MetricsCollector
from repro.simulation.rng import RngRegistry
from repro.simulation.trace import TraceLog
from repro.sources.central import CentralSource
from repro.sources.memory import MemoryBackend
from repro.sources.server import DataSourceServer
from repro.sources.sqlite import SqliteBackend
from repro.sources.updater import ScheduledUpdater
from repro.warehouse.registry import algorithm_info


@dataclass
class DistributedRunResult(RunResult):
    """A :class:`RunResult` produced by the asyncio runtime."""

    transport: str = "tcp"
    time_scale: float = 0.01
    chaos_profile: str | None = None
    chaos_stats: ChaosStats | None = None

    def report(self) -> str:
        lines = (
            f"transport        : {self.transport}"
            f" (time scale {self.time_scale} s/unit)\n"
        )
        if self.chaos_profile is not None and self.chaos_stats is not None:
            lines += (
                f"chaos profile    : {self.chaos_profile}"
                f" ({self.chaos_stats.faults_injected} faults injected)\n"
            )
        return lines + super().report()


def _make_backend(config: ExperimentConfig, view, index: int, initial):
    if config.backend == "sqlite":
        return SqliteBackend(view, index, initial)
    return MemoryBackend(view, index, initial)


class _System:
    """Everything one distributed run wires together."""

    def __init__(self) -> None:
        self.updaters: list[ScheduledUpdater] = []
        self.source_nodes: list = []
        self.warehouse_node: WarehouseNode | None = None
        self.warehouse = None
        self.channels: list[LocalChannel] = []
        self.backends: list = []
        self.mailboxes: list[Mailbox] = []
        self.proxies: list[ChaosTcpProxy] = []
        self.chaos_stats: ChaosStats | None = None

    def quiescent(self) -> bool:
        if not all(updater.done for updater in self.updaters):
            return False
        if self.warehouse is not None and self.warehouse.pending_work():
            return False
        if self.warehouse_node is not None:
            if not self.warehouse_node.quiescent():
                return False
            if not all(node.quiescent() for node in self.source_nodes):
                return False
        if not all(channel.idle for channel in self.channels):
            return False
        return all(len(box) == 0 for box in self.mailboxes)

    async def aclose(self) -> None:
        if self.warehouse_node is not None:
            await self.warehouse_node.aclose()
        for node in self.source_nodes:
            await node.aclose()
        for proxy in self.proxies:
            await proxy.aclose()
        for backend in self.backends:
            backend.close()


async def _wire_tcp(
    runtime: AsyncRuntime,
    config: ExperimentConfig,
    workload,
    recorder: RunRecorder,
    metrics: MetricsCollector,
    trace: TraceLog | None,
    host: str,
    tcp_config: TcpChannelConfig | None,
    chaos: ChaosConfig | None = None,
    source_tcp_config: TcpChannelConfig | None = None,
) -> _System:
    view = workload.view
    info = algorithm_info(config.algorithm)
    system = _System()
    # Mixed-fleet knob: sources may run a different transport config than
    # the warehouse (e.g. a v1-only source against a v3 warehouse -- the
    # handshake then negotiates each pair down independently).
    if source_tcp_config is None:
        source_tcp_config = tcp_config
    if chaos is not None and chaos.active:
        system.chaos_stats = ChaosStats()

    async def _front(link: str, address: tuple[str, int]) -> tuple[str, int]:
        """Interpose a chaos proxy on one link (or pass through)."""
        if system.chaos_stats is None:
            return address
        proxy = ChaosTcpProxy(
            runtime,
            link,
            address,
            chaos,
            seed=config.seed,
            stats=system.chaos_stats,
            listen_host=host,
        )
        await proxy.start()
        system.proxies.append(proxy)
        return proxy.address

    # The warehouse listener must exist before sources dial it; sources'
    # listeners must exist before the warehouse dials them.  TcpChannel
    # dials lazily with retry, so either order works -- starting all
    # listeners before constructing the warehouse merely avoids pointless
    # reconnect cycles.
    if info.architecture == "centralized":
        # The warehouse needs the central node's listener address and the
        # central node needs the warehouse's: break the cycle by bringing
        # the central node up against a placeholder address and patching
        # its (lazily dialed, not yet used) outbound channel afterwards.
        placeholder = ("127.0.0.1", 1)
        central_node = CentralSourceNode(
            runtime,
            view,
            initial=workload.initial_states,
            warehouse_address=placeholder,
            query_service_time=config.query_service_time,
            metrics=metrics,
            trace=trace,
            listen_host=host,
            tcp_config=source_tcp_config,
        )
        await central_node.start()
        warehouse_node = WarehouseNode(
            runtime,
            view,
            config.algorithm,
            {0: await _front("wh->central", central_node.address)},
            initial_view=view.evaluate(workload.initial_states),
            recorder=recorder,
            metrics=metrics,
            trace=trace,
            listen_host=host,
            tcp_config=tcp_config,
            algorithm_kwargs=algorithm_kwargs(config),
            locality=build_locality(config, [view], workload.initial_states),
        )
        await warehouse_node.start()
        # Patch the central node's outbound channel now that the
        # warehouse address is known (it has not dialed yet: no frames
        # were sent before the updaters start).
        central_node.to_warehouse.host, central_node.to_warehouse.port = (
            await _front("central->wh", warehouse_node.address)
        )
        central = central_node.source
        central.add_update_listener(recorder.on_source_update)
        for index in range(1, view.n_relations + 1):
            recorder.register_source(
                index,
                view.name_of(index),
                workload.initial_states[view.name_of(index)],
            )
        system.source_nodes.append(central_node)
        system.updaters = [
            ScheduledUpdater(
                runtime,
                f"R{index}",
                (lambda delta, i=index: central.local_update(i, delta)),
                schedule,
            )
            for index, schedule in sorted(workload.schedules.items())
        ]
        system.mailboxes = [warehouse_node.inbox, central.query_inbox]
        system.warehouse_node = warehouse_node
        system.warehouse = warehouse_node.warehouse
        return system

    # Distributed architecture: one node per source.
    servers: dict[int, DataSourceServer] = {}
    placeholder = ("127.0.0.1", 1)
    for index in range(1, view.n_relations + 1):
        name = view.name_of(index)
        initial = workload.initial_states[name]
        backend = _make_backend(config, view, index, initial)
        system.backends.append(backend)
        node = SourceNode(
            runtime,
            view,
            index,
            backend,
            warehouse_address=placeholder,
            query_service_time=config.query_service_time,
            metrics=metrics,
            trace=trace,
            listen_host=host,
            tcp_config=source_tcp_config,
        )
        await node.start()
        node.server.add_update_listener(recorder.on_source_update)
        recorder.register_source(index, name, initial)
        servers[index] = node.server
        system.source_nodes.append(node)
        system.mailboxes.append(node.server.query_inbox)

    warehouse_node = WarehouseNode(
        runtime,
        view,
        config.algorithm,
        {
            index: await _front(f"wh->{node.name}", node.address)
            for index, node in zip(servers, system.source_nodes)
        },
        initial_view=view.evaluate(workload.initial_states),
        recorder=recorder,
        metrics=metrics,
        trace=trace,
        listen_host=host,
        tcp_config=tcp_config,
        algorithm_kwargs=algorithm_kwargs(config),
        locality=build_locality(config, [view], workload.initial_states),
    )
    await warehouse_node.start()
    for node in system.source_nodes:
        node.to_warehouse.host, node.to_warehouse.port = await _front(
            f"{node.name}->wh", warehouse_node.address
        )
    system.mailboxes.append(warehouse_node.inbox)
    system.warehouse_node = warehouse_node
    system.warehouse = warehouse_node.warehouse
    system.updaters = [
        ScheduledUpdater(
            runtime, view.name_of(index), servers[index].local_update, schedule
        )
        for index, schedule in sorted(workload.schedules.items())
    ]
    return system


def _wire_local(
    runtime: AsyncRuntime,
    config: ExperimentConfig,
    workload,
    recorder: RunRecorder,
    metrics: MetricsCollector,
    trace: TraceLog | None,
    chaos: ChaosConfig | None = None,
) -> _System:
    view = workload.view
    info = algorithm_info(config.algorithm)
    system = _System()
    if chaos is not None and chaos.active:
        system.chaos_stats = ChaosStats()

    def _channel(link: str, destination) -> LocalChannel:
        if system.chaos_stats is None:
            return LocalChannel(runtime, link, destination, metrics)
        return ChaosLocalChannel(
            runtime,
            link,
            destination,
            metrics,
            config=chaos,
            seed=config.seed,
            stats=system.chaos_stats,
        )

    inbox = Mailbox(runtime, "warehouse-inbox")
    system.mailboxes.append(inbox)

    if info.architecture == "centralized":
        to_wh = _channel("central->wh", inbox)
        system.channels.append(to_wh)
        central = CentralSource(
            runtime,
            view,
            to_wh,
            initial=workload.initial_states,
            query_service_time=config.query_service_time,
            trace=trace,
        )
        central.add_update_listener(recorder.on_source_update)
        for index in range(1, view.n_relations + 1):
            recorder.register_source(
                index,
                view.name_of(index),
                workload.initial_states[view.name_of(index)],
            )
        down = _channel("wh->central", central.query_inbox)
        system.channels.append(down)
        query_channels = {0: down}
        system.mailboxes.append(central.query_inbox)
        system.updaters = [
            ScheduledUpdater(
                runtime,
                f"R{index}",
                (lambda delta, i=index: central.local_update(i, delta)),
                schedule,
            )
            for index, schedule in sorted(workload.schedules.items())
        ]
    else:
        query_channels = {}
        servers: dict[int, DataSourceServer] = {}
        for index in range(1, view.n_relations + 1):
            name = view.name_of(index)
            initial = workload.initial_states[name]
            backend = _make_backend(config, view, index, initial)
            system.backends.append(backend)
            to_wh = _channel(f"{name}->wh", inbox)
            system.channels.append(to_wh)
            server = DataSourceServer(
                runtime,
                name,
                index,
                backend,
                to_wh,
                query_service_time=config.query_service_time,
                trace=trace,
            )
            server.add_update_listener(recorder.on_source_update)
            recorder.register_source(index, name, initial)
            down = _channel(f"wh->{name}", server.query_inbox)
            system.channels.append(down)
            query_channels[index] = down
            servers[index] = server
            system.mailboxes.append(server.query_inbox)
        system.updaters = [
            ScheduledUpdater(
                runtime, view.name_of(index), servers[index].local_update, schedule
            )
            for index, schedule in sorted(workload.schedules.items())
        ]

    system.warehouse = info.cls(
        runtime,
        view,
        query_channels,
        initial_view=view.evaluate(workload.initial_states),
        recorder=recorder,
        metrics=metrics,
        trace=trace,
        inbox=inbox,
        locality=build_locality(config, [view], workload.initial_states),
        **algorithm_kwargs(config),
    )
    return system


async def run_distributed_async(
    config: ExperimentConfig,
    transport: str = "tcp",
    time_scale: float = 0.01,
    host: str = "127.0.0.1",
    timeout: float = 60.0,
    tcp_config: TcpChannelConfig | None = None,
    chaos: "ChaosConfig | str | None" = None,
    source_tcp_config: TcpChannelConfig | None = None,
) -> DistributedRunResult:
    """Run one distributed experiment to quiescence on the current loop.

    ``chaos`` injects deterministic transport faults: a profile name from
    :data:`repro.runtime.chaos.PROFILES` or an explicit
    :class:`~repro.runtime.chaos.ChaosConfig`.  Faults live *below* the
    FIFO contract (delays, duplicates, drops with retransmission,
    crash-restart blackouts), so protocol code still sees exactly-once
    in-order delivery -- the run should end in the same state as a
    healthy one, just later.

    ``source_tcp_config`` (TCP transport only) gives the source nodes a
    different transport config than the warehouse -- the mixed-fleet
    case, e.g. a warehouse advertising codec v3 against sources that
    only speak v1; each channel pair negotiates down independently.
    Defaults to ``tcp_config`` (a homogeneous fleet).
    """
    if transport not in ("tcp", "local"):
        raise ValueError(f"unknown transport {transport!r}")
    chaos = profile(chaos)
    predicate_stats_before = compile_cache_stats()
    rngs = RngRegistry(config.seed)
    workload = build_workload(config, rngs)
    view = workload.view
    info = algorithm_info(config.algorithm)

    runtime = AsyncRuntime(time_scale=time_scale)
    metrics = MetricsCollector()
    trace = TraceLog(enabled=config.trace)
    recorder = RunRecorder(view)
    trace_arg = trace if config.trace else None

    if transport == "tcp":
        system = await _wire_tcp(
            runtime,
            config,
            workload,
            recorder,
            metrics,
            trace_arg,
            host,
            tcp_config,
            chaos,
            source_tcp_config=source_tcp_config,
        )
    else:
        system = _wire_local(
            runtime, config, workload, recorder, metrics, trace_arg, chaos
        )

    started = _time.perf_counter()
    try:
        total = workload.total_updates

        def finished() -> bool:
            return (
                recorder.updates_delivered >= total
                and runtime.settled()
                and system.quiescent()
            )

        await runtime.wait_until(finished, timeout=timeout)
        wall = _time.perf_counter() - started
        record_predicate_cache_delta(metrics, predicate_stats_before)

        result = DistributedRunResult(
            config=config,
            info=info,
            final_view=system.warehouse.current_view(),
            sim_time=runtime.now,
            wall_seconds=wall,
            metrics=metrics,
            recorder=recorder,
            warehouse=system.warehouse,
            trace=trace if config.trace else None,
            transport=transport,
            time_scale=time_scale,
            chaos_profile=chaos.name if chaos is not None else None,
            chaos_stats=system.chaos_stats,
        )
        if config.check_consistency:
            for level in (
                ConsistencyLevel.CONVERGENCE,
                ConsistencyLevel.WEAK,
                ConsistencyLevel.STRONG,
                ConsistencyLevel.COMPLETE,
            ):
                result.consistency[level] = recorder.check(
                    level, max_vectors=config.max_check_vectors
                )
            result.classified_level = recorder.classify(
                max_vectors=config.max_check_vectors
            )
        return result
    finally:
        await system.aclose()
        await runtime.aclose()


def run_distributed(
    config: ExperimentConfig,
    transport: str = "tcp",
    time_scale: float = 0.01,
    host: str = "127.0.0.1",
    timeout: float = 60.0,
    tcp_config: TcpChannelConfig | None = None,
    chaos: "ChaosConfig | str | None" = None,
    source_tcp_config: TcpChannelConfig | None = None,
) -> DistributedRunResult:
    """Blocking wrapper: run one distributed experiment in a fresh loop."""
    return asyncio.run(
        run_distributed_async(
            config,
            transport=transport,
            time_scale=time_scale,
            host=host,
            timeout=timeout,
            tcp_config=tcp_config,
            chaos=chaos,
            source_tcp_config=source_tcp_config,
        )
    )


def quick_distributed(
    algorithm: str = "sweep",
    n_sources: int = 3,
    n_updates: int = 20,
    seed: int = 0,
    transport: str = "tcp",
    time_scale: float = 0.01,
    **overrides,
) -> DistributedRunResult:
    """Distributed twin of :func:`repro.quick_run` (one-call entry point)."""
    timeout = overrides.pop("timeout", 60.0)
    config = ExperimentConfig(
        algorithm=algorithm,
        n_sources=n_sources,
        n_updates=n_updates,
        seed=seed,
        **overrides,
    )
    return run_distributed(
        config, transport=transport, time_scale=time_scale, timeout=timeout
    )


# ---------------------------------------------------------------------------
# Multi-process entry points (repro serve-warehouse / serve-source)
# ---------------------------------------------------------------------------

async def serve_warehouse_async(
    config: ExperimentConfig,
    source_addresses: dict[int, tuple[str, int]],
    listen_host: str = "127.0.0.1",
    listen_port: int = 0,
    time_scale: float = 0.01,
    expect_updates: int | None = None,
    timeout: float = 3600.0,
    tcp_config: TcpChannelConfig | None = None,
    probe: bool = True,
    durable_dir: str | None = None,
    checkpoint_policy=None,
    fsync_batch: int = 8,
) -> DistributedRunResult:
    """Host the warehouse site of a multi-process deployment.

    Every participating process derives the identical view and initial
    state from ``config`` (same seed, same generator streams).  When
    ``expect_updates`` is given the call returns a result after that many
    updates were delivered and the site went quiescent; otherwise it
    serves until cancelled.

    With ``probe=True`` every source address is connectivity-checked up
    front (with the channel retry budget), so a mistyped or dead peer
    surfaces as :class:`~repro.runtime.errors.TransportRetriesExceeded`
    instead of the site waiting forever for updates that cannot arrive.

    ``durable_dir`` makes the site crash-restartable: it checkpoints and
    WAL-logs there, and a process restarted on the same directory
    recovers and picks the protocol up where the durable state left it
    (see :mod:`repro.durability`).
    """
    rngs = RngRegistry(config.seed)
    workload = build_workload(config, rngs)
    view = workload.view
    info = algorithm_info(config.algorithm)
    runtime = AsyncRuntime(time_scale=time_scale)
    metrics = MetricsCollector()
    trace = TraceLog(enabled=config.trace)
    recorder = RunRecorder(view)
    for index in range(1, view.n_relations + 1):
        recorder.register_source(
            index, view.name_of(index), workload.initial_states[view.name_of(index)]
        )
    node = WarehouseNode(
        runtime,
        view,
        config.algorithm,
        source_addresses,
        initial_view=view.evaluate(workload.initial_states),
        recorder=recorder,
        metrics=metrics,
        trace=trace if config.trace else None,
        listen_host=listen_host,
        listen_port=listen_port,
        tcp_config=tcp_config,
        algorithm_kwargs=algorithm_kwargs(config),
        locality=build_locality(config, [view], workload.initial_states),
        durable_dir=durable_dir,
        checkpoint_policy=checkpoint_policy,
        fsync_batch=fsync_batch,
    )
    await node.start()
    print(
        f"warehouse[{config.algorithm}] listening on"
        f" {node.address[0]}:{node.address[1]}"
    )
    recovered = node.recovered_state
    if recovered is not None:
        print(
            f"warehouse recovered generation {recovered.generation}:"
            f" {recovered.installs} installs, {len(recovered.pending)}"
            f" pending update(s) replayed"
        )
        if expect_updates is not None:
            # This incarnation only sees what the durable state has not
            # yet installed: the replayed pending plus the remainder.
            expect_updates += len(recovered.pending) - recovered.delivered_total
    started = _time.perf_counter()
    try:
        if probe:
            for index, (phost, pport) in sorted(source_addresses.items()):
                what = "central source" if index == 0 else f"source R{index}"
                await probe_peer(phost, pport, tcp_config, what=what)
        if expect_updates is None:
            while True:  # serve until cancelled (Ctrl-C)
                runtime.check()
                await asyncio.sleep(0.2)
        await runtime.wait_until(
            lambda: recorder.updates_delivered >= expect_updates
            and runtime.settled()
            and node.quiescent(),
            timeout=timeout,
        )
        result = DistributedRunResult(
            config=config,
            info=info,
            final_view=node.warehouse.current_view(),
            sim_time=runtime.now,
            wall_seconds=_time.perf_counter() - started,
            metrics=metrics,
            recorder=recorder,
            warehouse=node.warehouse,
            trace=trace if config.trace else None,
            transport="tcp",
            time_scale=time_scale,
        )
        # Source histories live in other processes; only warehouse-local
        # consistency accounting is possible here.
        return result
    finally:
        await node.aclose()
        await runtime.aclose()


async def serve_source_async(
    config: ExperimentConfig,
    index: int,
    warehouse_address: tuple[str, int],
    listen_host: str = "127.0.0.1",
    listen_port: int = 0,
    time_scale: float = 0.01,
    drive: bool = True,
    exit_when_done: bool = True,
    linger: float = 3.0,
    timeout: float = 3600.0,
    tcp_config: TcpChannelConfig | None = None,
    probe: bool = True,
) -> None:
    """Host one data-source site of a multi-process deployment.

    With ``drive=True`` the source replays its share of the seeded update
    schedule (the same schedule a simulator run with this config would
    apply); ``exit_when_done`` returns once the schedule drained, every
    outbound frame was acknowledged, and no query has arrived for
    ``linger`` wall seconds.  The linger window matters because *other*
    sources' updates sweep through this site too: the local schedule
    draining does not mean the warehouse is done asking questions.

    With ``probe=True`` the warehouse address is connectivity-checked
    before any update is replayed, so an unreachable warehouse fails the
    process (:class:`~repro.runtime.errors.TransportRetriesExceeded`,
    non-zero exit from the CLI) instead of silently dropping the run.
    """
    rngs = RngRegistry(config.seed)
    workload = build_workload(config, rngs)
    view = workload.view
    runtime = AsyncRuntime(time_scale=time_scale)
    backend = _make_backend(
        config, view, index, workload.initial_states[view.name_of(index)]
    )
    node = SourceNode(
        runtime,
        view,
        index,
        backend,
        warehouse_address=warehouse_address,
        query_service_time=config.query_service_time,
        listen_host=listen_host,
        listen_port=listen_port,
        tcp_config=tcp_config,
    )
    await node.start()
    print(f"source[{node.name}] listening on {node.address[0]}:{node.address[1]}")
    try:
        if probe:
            await probe_peer(
                warehouse_address[0],
                warehouse_address[1],
                tcp_config,
                what="warehouse",
            )
        updater = None
        if drive and index in workload.schedules:
            updater = ScheduledUpdater(
                runtime, node.name, node.server.local_update, workload.schedules[index]
            )
        if updater is not None and exit_when_done:
            drained_at: list[float] = []

            def _finished() -> bool:
                if not (updater.done and node.quiescent()):
                    drained_at.clear()
                    return False
                now = _time.monotonic()
                if not drained_at:
                    drained_at.append(now)
                last = max(node.listener.last_frame_wall, drained_at[0])
                return now - last >= linger

            await runtime.wait_until(_finished, timeout=timeout)
        else:
            while True:  # serve until cancelled (Ctrl-C)
                runtime.check()
                await asyncio.sleep(0.2)
    finally:
        await node.aclose()
        backend.close()
        await runtime.aclose()


__all__ = [
    "DistributedRunResult",
    "quick_distributed",
    "run_distributed",
    "run_distributed_async",
    "serve_source_async",
    "serve_warehouse_async",
]
