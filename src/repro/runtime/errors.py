"""Errors raised by the asyncio runtime and its transports."""

from __future__ import annotations


class RuntimeHostError(Exception):
    """Base class for every distributed-runtime failure."""


class TransportError(RuntimeHostError):
    """A transport could not carry a message."""


class TransportOverflowError(TransportError):
    """A bounded send queue is full (backpressure signal).

    Producers that can pace themselves should ``await channel.flush()``
    (or :meth:`drain`) instead of racing into this error; protocol code
    never hits it because sweep traffic is bounded by the protocol itself.
    """


class TransportRetriesExceeded(TransportError):
    """A TCP channel exhausted its bounded connect/reconnect budget."""


class WireProtocolError(TransportError):
    """A malformed or out-of-contract frame arrived on a TCP session."""


class QuiescenceTimeout(RuntimeHostError):
    """A distributed run did not reach quiescence within its deadline."""


__all__ = [
    "QuiescenceTimeout",
    "RuntimeHostError",
    "TransportError",
    "TransportOverflowError",
    "TransportRetriesExceeded",
    "WireProtocolError",
]
