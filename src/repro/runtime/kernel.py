"""AsyncRuntime: the simulation kernel interface over a real event loop.

The protocol stack never talks to the :class:`~repro.simulation.kernel.
Simulator` class itself -- only to a four-method contract: ``now``,
``schedule``, ``schedule_at`` and ``spawn``.  :class:`AsyncRuntime`
implements that same contract on top of asyncio's wall clock, so the
*unchanged* generator processes (:class:`~repro.simulation.process.Process`),
mailboxes (:class:`~repro.simulation.mailbox.Mailbox`) and every warehouse
algorithm run over real time and real transports with zero forks.

Time is kept in the simulator's *virtual units*: ``time_scale`` is the
number of wall seconds one virtual unit takes, so a workload generated for
the simulator (commit times, service times) replays at a configurable real
speed and the metrics (install delay, staleness) remain in the same units
as simulator runs.
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable, Coroutine, Generator

from repro.runtime.errors import QuiescenceTimeout
from repro.simulation.process import Process


class AsyncRuntime:
    """Drop-in kernel for the protocol stack, backed by an asyncio loop.

    Must be constructed inside a running event loop (transports and
    processes are loop-bound).  ``time_scale`` converts virtual time units
    to wall seconds (``0.01`` replays a simulator workload at 100 units/s).
    """

    def __init__(self, time_scale: float = 1.0):
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self.time_scale = float(time_scale)
        self._loop = asyncio.get_running_loop()
        self._t0 = self._loop.time()
        self._processes: list[Process] = []
        self._tasks: list[asyncio.Task] = []
        self._failures: list[BaseException] = []
        self._failed = asyncio.Event()
        self._events_executed = 0
        self._closed = False

    # ------------------------------------------------------------------
    # The kernel contract (duck-type of Simulator)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Wall time elapsed since construction, in virtual units."""
        return (self._loop.time() - self._t0) / self.time_scale

    @property
    def events_executed(self) -> int:
        """Scheduled callbacks fired so far (parity with the simulator)."""
        return self._events_executed

    def schedule(self, delay: float, callback: Callable[[], None]):
        """Run ``callback`` after ``delay`` virtual units of wall time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        if delay == 0:
            # call_soon skips the timer heap -- zero-delay wakeups dominate
            # the hot path (process starts, mailbox handoffs).
            return self._loop.call_soon(self._guarded, callback)
        return self._loop.call_later(
            delay * self.time_scale, self._guarded, callback
        )

    def schedule_at(self, time: float, callback: Callable[[], None]):
        """Run ``callback`` at absolute virtual ``time`` (clamped to now)."""
        return self.schedule(max(0.0, time - self.now), callback)

    def spawn(self, name: str, generator: Generator) -> Process:
        """Host an unchanged simulation process on the event loop."""
        process = Process(self, name, generator)
        self._processes.append(process)
        self.schedule(0.0, process.start)
        return process

    @property
    def processes(self) -> tuple[Process, ...]:
        """Every process ever spawned on this runtime."""
        return tuple(self._processes)

    # ------------------------------------------------------------------
    # Async-native extensions
    # ------------------------------------------------------------------
    def create_task(self, coro: Coroutine, name: str = "") -> asyncio.Task:
        """Spawn an async task whose failure fails the whole runtime."""
        task = self._loop.create_task(coro, name=name)
        task.add_done_callback(self._on_task_done)
        self._tasks.append(task)
        return task

    async def sleep(self, duration: float) -> None:
        """Sleep ``duration`` virtual units of wall time."""
        await asyncio.sleep(duration * self.time_scale)

    def record_failure(self, exc: BaseException) -> None:
        """Register a fatal error; ``wait_until``/``check`` re-raise it."""
        self._failures.append(exc)
        self._failed.set()

    def check(self) -> None:
        """Raise the first recorded failure, if any."""
        if self._failures:
            raise self._failures[0]

    async def wait_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 30.0,
        poll: float = 0.005,
        stable_polls: int = 2,
    ) -> None:
        """Poll ``predicate`` until it holds ``stable_polls`` times in a row.

        ``timeout`` and ``poll`` are **wall seconds** (deadlines guard real
        hangs, not virtual schedules).  The first failure recorded by any
        process or transport is re-raised immediately.
        """
        deadline = self._loop.time() + timeout
        consecutive = 0
        while True:
            self.check()
            if predicate():
                consecutive += 1
                if consecutive >= stable_polls:
                    return
            else:
                consecutive = 0
            if self._loop.time() >= deadline:
                raise QuiescenceTimeout(
                    f"predicate not stable after {timeout}s"
                    f" ({len(self.blocked_processes())} blocked processes)"
                )
            await asyncio.sleep(poll)

    def blocked_processes(self) -> list[Process]:
        """Processes currently waiting on a mailbox (diagnostics)."""
        return [p for p in self._processes if p.is_blocked]

    def settled(self) -> bool:
        """True when every process has either finished or awaits a mailbox.

        A process mid-``Delay`` (e.g. a pending scheduled update or a
        source still inside its service time) keeps the runtime unsettled.
        """
        return all(p.finished or p.is_blocked for p in self._processes)

    async def aclose(self) -> None:
        """Cancel every runtime-owned task (idempotent)."""
        self._closed = True
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()

    # ------------------------------------------------------------------
    def _guarded(self, callback: Callable[[], None]) -> None:
        self._events_executed += 1
        try:
            callback()
        except BaseException as exc:  # noqa: BLE001 - re-raised via check()
            self.record_failure(exc)

    def _on_task_done(self, task: asyncio.Task) -> None:
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            self.record_failure(exc)

    def __repr__(self) -> str:
        return (
            f"AsyncRuntime(now={self.now:.3f}, scale={self.time_scale},"
            f" processes={len(self._processes)}, tasks={len(self._tasks)})"
        )


__all__ = ["AsyncRuntime"]
