"""Deployable sites: one warehouse node, one node per data source.

A node owns exactly what one OS process would own in a real deployment:
its protocol objects (the unchanged :class:`DataSourceServer` /
warehouse algorithm), an inbound :class:`ChannelListener` and its outbound
:class:`TcpChannel` sessions.  ``repro serve-source`` and
``repro serve-warehouse`` host one node per process;
``repro run-distributed`` (and the quickstart example) host all nodes on
one event loop but still talk TCP through the loopback interface -- same
code path, same frames.

Channel naming mirrors the simulator: ``"R2->wh"`` carries source 2's
update notices *and* query answers (sharing one FIFO session is the
linchpin of SWEEP's local compensation), ``"wh->R2"`` carries the
warehouse's queries.  The centralized (ECA) architecture uses
``"central->wh"`` / ``"wh->central"``.
"""

from __future__ import annotations

from repro.consistency.oracle import RunRecorder
from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition
from repro.runtime.codec import CODEC_VERSION_MAX, WireCodec
from repro.runtime.kernel import AsyncRuntime
from repro.runtime.tcp import ChannelListener, TcpChannel, TcpChannelConfig
from repro.simulation.mailbox import Mailbox
from repro.simulation.metrics import MetricsCollector
from repro.simulation.trace import TraceLog
from repro.sources.base import SourceBackend
from repro.sources.central import CentralSource
from repro.sources.server import DataSourceServer
from repro.warehouse.registry import algorithm_info


def _listener_codec_cap(tcp_config: TcpChannelConfig | None) -> int:
    """The codec version a node's listener welcomes.

    A node configured with ``--codec-version`` speaks at most that
    version in *both* directions -- outbound channels advertise it,
    and the inbound listener caps its welcome with it.  An unconfigured
    node accepts whatever the peer can speak.
    """
    return CODEC_VERSION_MAX if tcp_config is None else tcp_config.codec_version


class SourceNode:
    """One data-source site: backend + Figure 3 server over TCP."""

    def __init__(
        self,
        runtime: AsyncRuntime,
        view: ViewDefinition,
        index: int,
        backend: SourceBackend,
        warehouse_address: tuple[str, int],
        query_service_time: float = 0.0,
        metrics: MetricsCollector | None = None,
        trace: TraceLog | None = None,
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
        tcp_config: TcpChannelConfig | None = None,
    ):
        self.runtime = runtime
        self.view = view
        self.index = index
        self.name = view.name_of(index)
        self.codec = WireCodec(view)
        self.to_warehouse = TcpChannel(
            runtime,
            f"{self.name}->wh",
            warehouse_address[0],
            warehouse_address[1],
            self.codec,
            metrics,
            tcp_config,
        )
        self.server = DataSourceServer(
            runtime,
            self.name,
            index,
            backend,
            self.to_warehouse,
            query_service_time=query_service_time,
            trace=trace,
        )
        self.listener = ChannelListener(
            runtime,
            listen_host,
            listen_port,
            codec_version_max=_listener_codec_cap(tcp_config),
        )
        self.listener.register(f"wh->{self.name}", self.server.query_inbox, self.codec)

    async def start(self) -> None:
        await self.listener.start()

    @property
    def address(self) -> tuple[str, int]:
        """Where the warehouse should dial this source's query channel."""
        return self.listener.address

    def quiescent(self) -> bool:
        """No outbound frames in flight, no queries waiting locally."""
        return self.to_warehouse.idle and len(self.server.query_inbox) == 0

    async def aclose(self) -> None:
        await self.to_warehouse.aclose()
        await self.listener.aclose()

    def __repr__(self) -> str:
        return f"SourceNode({self.name!r}, listen={self.listener.port})"


class CentralSourceNode:
    """The single-site source of the centralized (ECA) architecture."""

    def __init__(
        self,
        runtime: AsyncRuntime,
        view: ViewDefinition,
        initial: dict[str, Relation],
        warehouse_address: tuple[str, int],
        query_service_time: float = 0.0,
        metrics: MetricsCollector | None = None,
        trace: TraceLog | None = None,
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
        tcp_config: TcpChannelConfig | None = None,
    ):
        self.runtime = runtime
        self.view = view
        self.name = "central"
        self.codec = WireCodec(view)
        self.to_warehouse = TcpChannel(
            runtime,
            "central->wh",
            warehouse_address[0],
            warehouse_address[1],
            self.codec,
            metrics,
            tcp_config,
        )
        self.source = CentralSource(
            runtime,
            view,
            self.to_warehouse,
            initial=initial,
            query_service_time=query_service_time,
            trace=trace,
        )
        self.listener = ChannelListener(
            runtime,
            listen_host,
            listen_port,
            codec_version_max=_listener_codec_cap(tcp_config),
        )
        self.listener.register("wh->central", self.source.query_inbox, self.codec)

    async def start(self) -> None:
        await self.listener.start()

    @property
    def address(self) -> tuple[str, int]:
        return self.listener.address

    def quiescent(self) -> bool:
        return self.to_warehouse.idle and len(self.source.query_inbox) == 0

    async def aclose(self) -> None:
        await self.to_warehouse.aclose()
        await self.listener.aclose()


class WarehouseNode:
    """The warehouse site: hosts any registered maintenance algorithm.

    ``source_addresses`` maps 1-based source indices to ``(host, port)``
    of each :class:`SourceNode` listener -- or ``{0: address}`` for the
    centralized architecture, matching the simulator harness's convention
    of keying the central query channel as index 0.

    With ``durable_dir`` the node checkpoints the view and WAL-logs every
    delivered update there (log-before-ack: the listener only acks a
    frame once the :class:`LoggingMailbox` has appended it), and a node
    restarted on the same directory recovers and resumes mid-protocol --
    see :mod:`repro.durability`.  Only queue-driven algorithms support
    this; the recovery layer rejects the rest loudly.
    """

    def __init__(
        self,
        runtime: AsyncRuntime,
        view: ViewDefinition,
        algorithm: str,
        source_addresses: dict[int, tuple[str, int]],
        initial_view: Relation | None = None,
        recorder: RunRecorder | None = None,
        metrics: MetricsCollector | None = None,
        trace: TraceLog | None = None,
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
        tcp_config: TcpChannelConfig | None = None,
        algorithm_kwargs: dict | None = None,
        locality=None,
        durable_dir: str | None = None,
        checkpoint_policy: "CheckpointPolicy | None" = None,
        crash_plan: "CrashPlan | None" = None,
        fsync_batch: int = 8,
    ):
        from repro.durability.manager import LoggingMailbox
        from repro.durability.recovery import load_state

        self.runtime = runtime
        self.view = view
        self.info = algorithm_info(algorithm)
        self.codec = WireCodec(view)
        state = None
        if durable_dir is not None:
            state = load_state(durable_dir, [view])
            self.inbox = LoggingMailbox(runtime, "warehouse-inbox")
        else:
            self.inbox = Mailbox(runtime, "warehouse-inbox")
        # A recovered node announces a higher session epoch so the
        # sources' listeners reset their FIFO expectations to its hellos.
        epoch = state.generation + 1 if state is not None else 0
        self.listener = ChannelListener(
            runtime,
            listen_host,
            listen_port,
            adopt_next=state is not None,
            codec_version_max=_listener_codec_cap(tcp_config),
        )
        if self.info.architecture == "centralized":
            inbound = ["central->wh"]
        else:
            inbound = [
                f"{view.name_of(index)}->wh"
                for index in range(1, view.n_relations + 1)
            ]
        for channel_name in inbound:
            self.listener.register(channel_name, self.inbox, self.codec)
        self.query_channels = {
            index: TcpChannel(
                runtime,
                self._query_channel_name(index),
                host,
                port,
                self.codec,
                metrics,
                tcp_config,
                epoch=epoch,
            )
            for index, (host, port) in sorted(source_addresses.items())
        }
        self.warehouse = self.info.cls(
            runtime,
            view,
            self.query_channels,
            initial_view=initial_view,
            recorder=recorder,
            metrics=metrics,
            trace=trace,
            inbox=self.inbox,
            locality=locality,
            **(algorithm_kwargs or {}),
        )
        self.durability = None
        self.recovered_state = state
        if durable_dir is not None:
            from repro.durability.errors import RecoveryError
            from repro.durability.manager import DurabilityManager
            from repro.durability.recovery import resume_warehouse
            from repro.warehouse.base import QueueDrivenWarehouse

            if not isinstance(self.warehouse, QueueDrivenWarehouse):
                raise RecoveryError(
                    f"algorithm {self.info.name!r} is not queue-driven and"
                    " cannot run with --durable-dir"
                )
            if state is not None:
                resume_warehouse(self.warehouse, state)
            self.durability = DurabilityManager(
                durable_dir,
                policy=checkpoint_policy,
                fsync_batch=fsync_batch,
                crash_plan=crash_plan,
            )
            self.durability.attach(self.warehouse, state)

    def _query_channel_name(self, index: int) -> str:
        if index == 0:
            return "wh->central"
        return f"wh->{self.view.name_of(index)}"

    async def start(self) -> None:
        await self.listener.start()

    @property
    def address(self) -> tuple[str, int]:
        """Where sources should dial their update/answer channel."""
        return self.listener.address

    def quiescent(self) -> bool:
        """Inbox drained, no queued updates mid-algorithm, channels idle."""
        if len(self.inbox) != 0:
            return False
        if self.warehouse.pending_work():
            return False
        return all(channel.idle for channel in self.query_channels.values())

    async def aclose(self) -> None:
        if self.durability is not None:
            self.durability.close()
        for channel in self.query_channels.values():
            await channel.aclose()
        await self.listener.aclose()

    def __repr__(self) -> str:
        return (
            f"WarehouseNode({self.info.name!r}, listen={self.listener.port},"
            f" sources={sorted(self.query_channels)})"
        )


__all__ = ["CentralSourceNode", "SourceNode", "WarehouseNode"]
