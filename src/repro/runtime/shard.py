"""Sharded warehouse runtime: per-view maintenance fanned across shards.

A sharded run partitions the maintained view family across ``n_shards``
warehouse shards (see :mod:`repro.warehouse.sharding`).  Each shard is an
ordinary multi-view warehouse -- the unchanged SWEEP or batched-sweep
scheduler over its subset of the views -- so it inherits the single
warehouse's per-view consistency guarantee wholesale.  The only new
moving part is the **router** at each source:

* one :class:`ShardedSourceFront` per source applies each local update
  to the backend exactly once, then fans the update notice out over
  *per-shard FIFO channels* to exactly the shards whose views reference
  that source;
* each (source, shard) pair has its own query channel and its own
  ProcessQuery loop at the source, and the per-shard update/answer
  channel is shared FIFO -- so *within one shard* the paper's Section 4
  argument (updates applied before a query's evaluation are delivered
  before its answer) holds verbatim, and SWEEP's local compensation
  stays exact.

There is deliberately **no cross-shard coordination**: views are
independent maintenance problems, and the consistency oracle verifies
each one shard-by-shard.

Why it is faster
----------------
The source-side cost of a sweep step grows with the number of partial
view changes in the request (one per view that needs the step): a single
warehouse maintaining ``m`` views pays ``m`` joins per step, serially.
Sharding splits the family ``m/N`` views per shard, and the per-shard
ProcessQuery loops service different shards' steps concurrently -- so the
latency-bound pipeline of each shard overlaps the others', dividing the
wall-clock per update by up to ``N`` without touching the protocol.

Entry points
------------
:func:`run_sharded` hosts every shard and source on one event loop over
either transport (``local`` bounded queues or loopback TCP), optionally
under a chaos profile.  :func:`serve_shard_async` hosts one shard as its
own OS process (``repro serve-shard``), and :class:`ShardSupervisor`
launches and babysits a full multi-process deployment, killing the fleet
and surfacing the culprit when any member crashes.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import socket
import subprocess
import sys
import time as _time
from dataclasses import dataclass

from repro.consistency.levels import ConsistencyLevel
from repro.consistency.oracle import RunRecorder
from repro.durability.encoding import encode_bag
from repro.durability.manager import (
    CheckpointPolicy,
    CrashPlan,
    DurabilityManager,
    LoggingMailbox,
)
from repro.durability.recovery import (
    RecoveredState,
    attach_durability,
    load_state,
    resume_warehouse,
)
from repro.harness.config import ExperimentConfig
from repro.harness.runner import build_workload, record_predicate_cache_delta
from repro.relational.delta import Delta
from repro.relational.predicate import compile_cache_stats
from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition
from repro.runtime.chaos import (
    ChaosConfig,
    ChaosLocalChannel,
    ChaosStats,
    ChaosTcpProxy,
    profile,
)
from repro.runtime.codec import WireCodec
from repro.runtime.errors import RuntimeHostError, TransportRetriesExceeded
from repro.runtime.kernel import AsyncRuntime
from repro.runtime.nodes import _listener_codec_cap
from repro.runtime.tcp import (
    ChannelListener,
    TcpChannel,
    TcpChannelConfig,
    probe_peer,
)
from repro.runtime.transport import LocalChannel
from repro.simulation.channel import Message
from repro.simulation.errors import ProcessKilled
from repro.simulation.mailbox import Mailbox
from repro.simulation.metrics import MetricsCollector
from repro.simulation.process import Delay
from repro.simulation.rng import RngRegistry
from repro.simulation.trace import TraceLog
from repro.sources.memory import MemoryBackend
from repro.sources.messages import (
    MultiQueryAnswer,
    MultiQueryRequest,
    PositionAnswer,
    PositionRequest,
    QueryAnswer,
    SnapshotAnswer,
    SnapshotRequest,
    UpdateNotice,
    make_rebalance_fence,
)
from repro.sources.sqlite import SqliteBackend
from repro.sources.updater import ScheduledUpdater
from repro.warehouse.locality import build_locality
from repro.warehouse.migration import (
    GapComplete,
    GapFrame,
    HandoffState,
    MigratingMultiViewBatchedSweepWarehouse,
    MigratingMultiViewSweepWarehouse,
    MigrationMemberState,
)
from repro.warehouse.multiview import (
    MultiViewBatchedSweepWarehouse,
    MultiViewSweepWarehouse,
)
from repro.warehouse.sharding import (
    RebalancePlan,
    ShardMember,
    ShardPlan,
    assign_replicas,
    partition_views,
    view_family,
)
from repro.workloads.scenarios import Workload

#: Claimed per-view consistency of each sharded scheduler.
CLAIMED_LEVELS = {
    "sweep": ConsistencyLevel.COMPLETE,
    "batched-sweep": ConsistencyLevel.STRONG,
}


class ShardCrashed(RuntimeHostError):
    """A member of a multi-process sharded deployment exited non-zero."""


class ShardVerificationError(RuntimeHostError):
    """A shard's views failed their claimed consistency level."""


def _make_backend(config: ExperimentConfig, view, index: int, initial):
    if config.backend == "sqlite":
        return SqliteBackend(view, index, initial)
    return MemoryBackend(view, index, initial)


def _member_label(key) -> str:
    """Channel-name fragment for a routing key (shard int or member)."""
    if isinstance(key, ShardMember):
        return key.label
    return f"sh{key}"


def _as_member(key) -> ShardMember:
    if isinstance(key, ShardMember):
        return key
    return ShardMember(shard=int(key))


# ---------------------------------------------------------------------------
# Failover: deterministic primary kills and hot-standby promotion
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FailoverSpec:
    """Kill shard ``shard``'s primary at a deterministic protocol point.

    Exactly one of the ``after_*`` thresholds should be set; the kill
    switch fires inside the primary's own process frame the moment that
    count is reached, so the kill lands *mid-protocol* (mid-batch when
    counting installs, mid-compensation when counting deliveries,
    mid-query right after a query left for a source) rather than at a
    tidy quiescent boundary.

    ``unfenced_replay`` is the mutation hook for the oracle tests: a
    correct promotion inherits the standby's own FIFO position and lets
    the incarnation-epoch fence drop whatever was in flight to the dead
    primary; the mutated promotion instead replays the primary's last
    delivered frame into the standby -- the duplicate a fence-skipping
    takeover of the dead primary's channel would deliver -- and the
    consistency oracle must fail the run.
    """

    shard: int
    after_deliveries: int | None = None
    after_installs: int | None = None
    after_queries: int | None = None
    unfenced_replay: bool = False

    def __post_init__(self) -> None:
        thresholds = [
            t
            for t in (
                self.after_deliveries,
                self.after_installs,
                self.after_queries,
            )
            if t is not None
        ]
        if len(thresholds) != 1:
            raise ValueError(
                "set exactly one of after_deliveries/after_installs/"
                f"after_queries, got {self!r}"
            )
        if thresholds[0] < 1:
            raise ValueError(f"kill threshold must be >= 1, got {self!r}")


class _KillSwitch:
    """Wraps a warehouse's protocol hooks to fire a :class:`FailoverSpec`.

    The wrapped methods run inside the victim's generator frames, so
    raising :class:`ProcessKilled` there unwinds exactly one process of
    the victim mid-step -- the kernel treats it as a clean termination
    and every other site keeps running.
    """

    def __init__(self, spec: FailoverSpec, warehouse, on_fire):
        self.spec = spec
        self.warehouse = warehouse
        self.on_fire = on_fire
        self.fired = False
        self.last_notice = None
        self._deliveries = 0
        self._installs = 0
        self._queries = 0
        self._arm()

    def _arm(self) -> None:
        wh, spec = self.warehouse, self.spec
        orig_note = wh.note_delivery

        def note_delivery(notice):
            orig_note(notice)
            self.last_notice = notice
            self._deliveries += 1
            if (
                spec.after_deliveries is not None
                and self._deliveries >= spec.after_deliveries
            ):
                self._fire()

        wh.note_delivery = note_delivery
        orig_install = wh._after_install

        def _after_install(note):
            orig_install(note)
            self._installs += 1
            if (
                spec.after_installs is not None
                and self._installs >= spec.after_installs
            ):
                self._fire()

        wh._after_install = _after_install
        orig_query = wh.send_query

        def send_query(index, payload):
            orig_query(index, payload)
            self._queries += 1
            if (
                spec.after_queries is not None
                and self._queries >= spec.after_queries
            ):
                self._fire()

        wh.send_query = send_query

    def _fire(self) -> None:
        if self.fired:
            return
        self.fired = True
        self.on_fire(self)
        raise ProcessKilled(
            f"failover kill switch: shard {self.spec.shard} primary"
        )


# ---------------------------------------------------------------------------
# Rebalancing: live view migration between shards
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RebalanceSpec:
    """Migrate ``view`` to shard ``to_shard`` at a deterministic point.

    Exactly one of the ``after_*`` thresholds must be set; the trigger
    fires inside the donor primary's own process frame the moment that
    count is reached, so the seal request lands *mid-protocol* (mid-batch
    when counting installs, mid-compensation when counting deliveries)
    rather than at a tidy quiescent boundary -- exactly the points the
    drain/handoff/re-route protocol has to survive.

    ``skip_straggler_forwarding`` is the mutation hook for the oracle
    tests: the donor seals and hands off but never forwards the gap
    ``(P_i, B_i]``, sending the completion signal immediately -- the
    migrated view then silently misses the straggler window and both the
    consistency oracle and the baseline byte-comparison must catch it.
    """

    view: str
    to_shard: int
    after_deliveries: int | None = None
    after_installs: int | None = None
    skip_straggler_forwarding: bool = False

    def __post_init__(self) -> None:
        thresholds = [
            t
            for t in (self.after_deliveries, self.after_installs)
            if t is not None
        ]
        if len(thresholds) != 1:
            raise ValueError(
                "set exactly one of after_deliveries/after_installs,"
                f" got {self!r}"
            )
        if thresholds[0] < 1:
            raise ValueError(f"rebalance threshold must be >= 1, got {self!r}")


class _RebalanceTrigger:
    """Wraps the donor primary's protocol hooks to fire a rebalance.

    The non-lethal sibling of :class:`_KillSwitch`: same deterministic
    counting inside the victim's own generator frames, but instead of
    raising it asks the coordinator to start the migration and lets the
    current unit of work finish -- the donor seals at its next
    unit-of-work boundary (see ``ViewMigrationMixin._before_unit``).
    """

    def __init__(self, spec: RebalanceSpec, warehouse, coordinator):
        self.spec = spec
        self.warehouse = warehouse
        self.coordinator = coordinator
        self.fired = False
        self._deliveries = 0
        self._installs = 0
        self._arm()

    def _arm(self) -> None:
        wh, spec = self.warehouse, self.spec
        orig_note = wh.note_delivery

        def note_delivery(notice):
            orig_note(notice)
            self._deliveries += 1
            if (
                spec.after_deliveries is not None
                and self._deliveries >= spec.after_deliveries
            ):
                self._fire()

        wh.note_delivery = note_delivery
        orig_install = wh._after_install

        def _after_install(note):
            orig_install(note)
            self._installs += 1
            if (
                spec.after_installs is not None
                and self._installs >= spec.after_installs
            ):
                self._fire()

        wh._after_install = _after_install

    def _fire(self) -> None:
        if self.fired:
            return
        self.fired = True
        self.coordinator.fire()


class RebalanceCoordinator:
    """Control plane of one live migration (fencing epoch 1).

    Pairs donor and recipient members positionally (primary with
    primary, standby ``k`` with standby ``k``), posts one fence per
    source down the *real* per-(source, member) update channels of every
    participating member, and injects the in-process control frames --
    handoff, gap stragglers, gap-complete -- into the paired recipient
    member's inbox.  Fences are the only protocol frames that ride the
    wire (they are ordinary empty :class:`UpdateNotice` frames, so the
    binwire codec carries them unchanged over TCP); the handoff blob and
    gap frames are coordinator deliveries even under the tcp transport,
    modelling the operator-driven control plane of a real rebalance.
    """

    def __init__(
        self,
        rebalance: RebalancePlan,
        runtime,
        chain: ViewDefinition,
        fronts: dict[int, "ShardedSourceFront"],
        member_recorders: dict[ShardMember, dict[str, RunRecorder]],
        epoch: int = 1,
    ):
        self.rebalance = rebalance
        self.runtime = runtime
        self.chain = chain
        self.fronts = fronts
        self.member_recorders = member_recorders
        self.epoch = epoch
        self.fired = False
        #: source index -> boundary seq ``B_i`` captured at fire time.
        self.boundaries: dict[int, int] = {}
        self._donor_states: dict[ShardMember, MigrationMemberState] = {}
        self._pair: dict[ShardMember, ShardMember] = {}
        self._recipient_inboxes: dict[ShardMember, Mailbox] = {}

    def register_pair(
        self,
        donor: ShardMember,
        recipient: ShardMember,
        donor_state: MigrationMemberState,
        recipient_inbox: Mailbox,
    ) -> None:
        self._donor_states[donor] = donor_state
        self._pair[donor] = recipient
        self._recipient_inboxes[recipient] = recipient_inbox

    @property
    def members(self) -> list[ShardMember]:
        return [*self._donor_states, *self._recipient_inboxes]

    def fire(self) -> None:
        """Request the seal on every donor member and post the fences.

        The boundary ``B_i`` is each source's committed position *now*;
        channel FIFO pins the fence between update ``B_i`` and
        ``B_i + 1`` on every participating member's stream, so all
        members agree on the pre/post-boundary split even though each
        has its own channel.
        """
        if self.fired:
            return
        self.fired = True
        for state in self._donor_states.values():
            state.seal_requested = True
        for index in sorted(self.fronts):
            front = self.fronts[index]
            boundary = front.update_seq
            self.boundaries[index] = boundary
            fence = make_rebalance_fence(
                index,
                boundary,
                Delta.empty(self.chain.schema_of(index)),
                self.epoch,
                applied_at=self.runtime.now,
            )
            for member in self.members:
                # Fresh frame per member, mirroring local_update's fanout.
                front.update_channels[member].send(
                    Message(
                        kind="update",
                        sender=front.name,
                        payload=dataclasses.replace(fence),
                    )
                )

    # -- callbacks from the donor-side warehouse mixin -----------------
    def handoff(self, donor: ShardMember, state: HandoffState) -> None:
        recipient = self._pair[donor]
        # The view's recorder follows the view: history keeps accruing on
        # the same object, and the result collector reads it from the
        # recipient member's set.
        self.member_recorders[donor].pop(state.view, None)
        if state.recorder is not None:
            self.member_recorders[recipient][state.view] = state.recorder
        self._inject(recipient, state)

    def forward_gap(self, donor: ShardMember, notice: UpdateNotice) -> None:
        self._inject(self._pair[donor], GapFrame(self.epoch, notice))

    def gap_complete(self, donor: ShardMember) -> None:
        self._inject(self._pair[donor], GapComplete(self.epoch))

    def _inject(self, recipient: ShardMember, payload) -> None:
        self._recipient_inboxes[recipient].put(
            Message(
                kind="rebalance",
                sender="rebalance-coordinator",
                payload=payload,
            )
        )


# ---------------------------------------------------------------------------
# The source-side router
# ---------------------------------------------------------------------------

class ShardedSourceFront:
    """One data source serving several warehouse shards.

    Owns the single authoritative backend.  ``local_update`` applies the
    delta exactly once and fans a fresh copy of the notice to every
    shard's update channel (per-shard delivery stamping must not be
    shared).  Each shard gets its own query inbox and its own ProcessQuery
    loop, so sweep steps of different shards are serviced concurrently;
    within one shard, updates and answers share that shard's FIFO channel
    -- the linchpin of SWEEP's local compensation, preserved per shard.

    ``query_service_time`` models the per-join evaluation cost: a
    MultiQueryRequest carrying ``k`` partial view changes takes
    ``k * query_service_time`` virtual units, which is the quantity
    sharding actually divides (fewer views per shard means fewer joins
    per step means shorter steps).
    """

    def __init__(
        self,
        runtime,
        view: ViewDefinition,
        index: int,
        backend,
        update_channels: dict[int, object],
        query_service_time: float = 0.0,
        trace: TraceLog | None = None,
    ):
        self.sim = runtime
        self.view = view
        self.index = index
        self.name = view.name_of(index)
        self.backend = backend
        self.update_channels = dict(update_channels)
        self.query_service_time = query_service_time
        self.trace = trace
        self.update_seq = 0
        self._listeners: list = []
        # Keys are shard ints in a replica-less run and ShardMembers in a
        # replicated one; either way each key gets its own FIFO channel
        # pair, so the per-(source, key) ordering argument is unchanged.
        self.query_inboxes: dict = {}
        for key in sorted(self.update_channels):
            self.query_inboxes[key] = Mailbox(
                runtime, f"{self.name}-{_member_label(key)}-queries"
            )
        for key in sorted(self.update_channels):
            runtime.spawn(
                f"{self.name}-{_member_label(key)}-ProcessQuery",
                self._process_queries(key),
            )

    # ------------------------------------------------------------------
    def local_update(self, delta, txn_id: str | None = None, txn_total: int = 0):
        """Commit one update and route it to every subscribed shard."""
        self.backend.apply(delta)
        self.update_seq += 1
        notice = UpdateNotice(
            source_index=self.index,
            seq=self.update_seq,
            delta=delta,
            applied_at=self.sim.now,
            txn_id=txn_id,
            txn_total=txn_total,
        )
        for listener in self._listeners:
            listener(notice)
        if self.trace:
            self.trace.record(self.sim.now, self.name, "local-update", notice)
        for key in sorted(self.update_channels):
            # Fresh notice per member: each warehouse stamps its own
            # delivery order; the (immutable) delta is shared by reference.
            self.update_channels[key].send(
                Message(
                    kind="update",
                    sender=self.name,
                    payload=dataclasses.replace(
                        notice, delivery_seq=None, delivered_at=0.0
                    ),
                )
            )
        return notice

    def add_update_listener(self, listener) -> None:
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    def _process_queries(self, key):
        """ProcessQuery loop for one member (mirrors DataSourceServer)."""
        inbox = self.query_inboxes[key]
        channel = self.update_channels[key]
        while True:
            msg = yield inbox.get()
            request = msg.payload
            if isinstance(request, PositionRequest):
                # Recovery probe: current seq only, no join, no delay.
                answer = PositionAnswer(
                    request_id=request.request_id,
                    source_index=self.index,
                    position=self.update_seq,
                    epoch=request.epoch,
                )
            elif isinstance(request, SnapshotRequest):
                if self.query_service_time > 0:
                    yield Delay(self.query_service_time)
                # Delta-encoded: codec-v2 flat rows, the checkpoint
                # encoder's format (see repro.durability.encoding).
                answer = SnapshotAnswer(
                    request_id=request.request_id,
                    source_index=self.index,
                    rows=encode_bag(self.backend.snapshot()),
                    epoch=request.epoch,
                )
            elif isinstance(request, MultiQueryRequest):
                if self.query_service_time > 0:
                    yield Delay(
                        self.query_service_time * max(1, len(request.partials))
                    )
                answer = MultiQueryAnswer(
                    request_id=request.request_id,
                    partials=[
                        self.backend.compute_join(p) for p in request.partials
                    ],
                    epoch=request.epoch,
                )
            else:
                if self.query_service_time > 0:
                    yield Delay(self.query_service_time)
                answer = QueryAnswer(
                    request_id=request.request_id,
                    partial=self.backend.compute_join(request.partial),
                    epoch=request.epoch,
                )
            channel.send(
                Message(kind="answer", sender=self.name, payload=answer)
            )

    def drop_member(self, key) -> None:
        """Stop serving a dead member: no more updates, queries sealed.

        Its ProcessQuery loop stays blocked on the sealed inbox forever,
        which the kernel counts as settled; queued queries are discarded
        (answers to a dead member would be dropped at its end anyway).
        """
        self.update_channels.pop(key, None)
        inbox = self.query_inboxes.get(key)
        if inbox is not None:
            inbox.seal()

    def quiescent(self) -> bool:
        return all(len(box) == 0 for box in self.query_inboxes.values())

    def __repr__(self) -> str:
        return (
            f"ShardedSourceFront({self.name!r},"
            f" members={[_member_label(k) for k in sorted(self.update_channels)]})"
        )


# ---------------------------------------------------------------------------
# Deployable sites (TCP)
# ---------------------------------------------------------------------------

def _family_codec(views: list[ViewDefinition]) -> WireCodec:
    return WireCodec(views[0], extra_views=tuple(views[1:]))


def build_shard_warehouse(
    runtime,
    views: list[ViewDefinition],
    query_channels: dict,
    initial_states: dict[str, Relation],
    recorders: dict[str, RunRecorder] | None,
    config: ExperimentConfig,
    inbox: Mailbox,
    metrics: MetricsCollector,
    trace: TraceLog | None,
    migratable: bool = False,
):
    """One shard's warehouse over its assigned views (SWEEP or batched).

    ``migratable`` selects the migration-capable subclasses (see
    :mod:`repro.warehouse.migration`) so a live rebalance can seal,
    donate, or adopt a view; they are behaviourally identical until the
    coordinator attaches a migration state.
    """
    primary = views[0]
    recorders = recorders or {}
    common = dict(
        locality=build_locality(config, views, initial_states),
        initial_view=primary.evaluate(initial_states),
        recorder=recorders.get(primary.name),
        metrics=metrics,
        trace=trace,
        inbox=inbox,
        extra_views=views[1:],
        initial_states=initial_states,
        extra_recorders={
            v.name: recorders[v.name] for v in views[1:] if v.name in recorders
        },
    )
    if config.algorithm == "batched-sweep":
        cls = (
            MigratingMultiViewBatchedSweepWarehouse
            if migratable
            else MultiViewBatchedSweepWarehouse
        )
        return cls(
            runtime,
            primary,
            query_channels,
            max_batch=config.batch_max,
            adaptive=config.batch_adaptive,
            **common,
        )
    if config.algorithm == "sweep":
        cls = (
            MigratingMultiViewSweepWarehouse
            if migratable
            else MultiViewSweepWarehouse
        )
        return cls(runtime, primary, query_channels, **common)
    raise ValueError(
        f"sharded runtime supports sweep/batched-sweep, not {config.algorithm!r}"
    )


class ShardNode:
    """One warehouse shard as a deployable site (listener + query channels).

    With ``durable_dir`` the shard checkpoints its views and logs every
    delivered update (see :mod:`repro.durability`); a restart with the
    same directory recovers the durable state and resynchronizes both
    transport directions: the listener adopts the senders' sequence
    position (``adopt_next``), and the query channels announce a fresh
    ``epoch`` so source listeners accept their restarted numbering.
    """

    def __init__(
        self,
        runtime: AsyncRuntime,
        shard_id: int,
        views: list[ViewDefinition],
        source_addresses: dict[int, tuple[str, int]],
        initial_states: dict[str, Relation],
        config: ExperimentConfig,
        recorders: dict[str, RunRecorder] | None = None,
        metrics: MetricsCollector | None = None,
        trace: TraceLog | None = None,
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
        tcp_config: TcpChannelConfig | None = None,
        durable_dir: str | None = None,
        checkpoint_policy: CheckpointPolicy | None = None,
        crash_plan: CrashPlan | None = None,
        fsync_batch: int = 8,
        member: ShardMember | None = None,
        migratable: bool = False,
        codec_views: list[ViewDefinition] | None = None,
    ):
        if not views:
            raise ValueError(f"shard {shard_id} has no views to host")
        self.runtime = runtime
        self.shard_id = shard_id
        #: Replica identity: channel names derive from the member label,
        #: so a standby (``sh0r1``) owns its own FIFO sessions alongside
        #: the primary's (``sh0``) rather than colliding with them.
        self.member = member if member is not None else ShardMember(shard_id)
        label = self.member.label
        self.views = list(views)
        # A migratable shard may adopt a view it does not host at launch,
        # so its wire codec must span the whole family (``codec_views``),
        # not just the hosted subset.
        self.codec = _family_codec(
            list(codec_views) if codec_views else self.views
        )
        primary = self.views[0]
        self.durability: DurabilityManager | None = None
        self.recovered_state: RecoveredState | None = None
        state: RecoveredState | None = None
        if durable_dir is not None:
            state = load_state(durable_dir, self.views)
            self.inbox: Mailbox = LoggingMailbox(runtime, f"{label}-inbox")
        else:
            self.inbox = Mailbox(runtime, f"{label}-inbox")
        epoch = state.generation + 1 if state is not None else 0
        self.listener = ChannelListener(
            runtime,
            listen_host,
            listen_port,
            adopt_next=state is not None,
            codec_version_max=_listener_codec_cap(tcp_config),
        )
        for index in range(1, primary.n_relations + 1):
            self.listener.register(
                f"{primary.name_of(index)}->{label}", self.inbox, self.codec
            )
        metrics = metrics if metrics is not None else MetricsCollector()
        self.query_channels = {
            index: TcpChannel(
                runtime,
                f"{label}->{primary.name_of(index)}",
                host,
                port,
                self.codec,
                metrics,
                tcp_config,
                epoch=epoch,
            )
            for index, (host, port) in sorted(source_addresses.items())
        }
        self.warehouse = build_shard_warehouse(
            runtime,
            self.views,
            self.query_channels,
            initial_states,
            recorders,
            config,
            self.inbox,
            metrics,
            trace,
            migratable=migratable,
        )
        if durable_dir is not None:
            if state is not None:
                resume_warehouse(self.warehouse, state)
            self.durability = DurabilityManager(
                durable_dir,
                policy=checkpoint_policy,
                fsync_batch=fsync_batch,
                crash_plan=crash_plan,
            )
            self.durability.attach(self.warehouse, state)
            self.recovered_state = state

    async def start(self) -> None:
        await self.listener.start()

    @property
    def address(self) -> tuple[str, int]:
        """Where sources should dial this shard's update/answer channel."""
        return self.listener.address

    def quiescent(self) -> bool:
        if len(self.inbox) != 0:
            return False
        if self.warehouse.pending_work():
            return False
        return all(channel.idle for channel in self.query_channels.values())

    async def aclose(self) -> None:
        if self.durability is not None:
            self.durability.close()
        for channel in self.query_channels.values():
            await channel.aclose()
        await self.listener.aclose()

    def __repr__(self) -> str:
        return (
            f"ShardNode({self.shard_id}, views={[v.name for v in self.views]},"
            f" listen={self.listener.port})"
        )


class ShardedSourceNode:
    """One data-source site serving several shards over TCP."""

    def __init__(
        self,
        runtime: AsyncRuntime,
        views: list[ViewDefinition],
        index: int,
        backend,
        shard_addresses: dict[int, tuple[str, int]],
        query_service_time: float = 0.0,
        metrics: MetricsCollector | None = None,
        trace: TraceLog | None = None,
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
        tcp_config: TcpChannelConfig | None = None,
    ):
        self.runtime = runtime
        self.index = index
        primary = views[0]
        self.name = primary.name_of(index)
        self.codec = _family_codec(list(views))
        self.update_channels = {
            key: TcpChannel(
                runtime,
                f"{self.name}->{_member_label(key)}",
                host,
                port,
                self.codec,
                metrics,
                tcp_config,
            )
            for key, (host, port) in sorted(shard_addresses.items())
        }
        self.front = ShardedSourceFront(
            runtime,
            primary,
            index,
            backend,
            self.update_channels,
            query_service_time=query_service_time,
            trace=trace,
        )
        self.listener = ChannelListener(
            runtime,
            listen_host,
            listen_port,
            codec_version_max=_listener_codec_cap(tcp_config),
        )
        for key in sorted(shard_addresses):
            self.listener.register(
                f"{_member_label(key)}->{self.name}",
                self.front.query_inboxes[key],
                self.codec,
            )

    async def start(self) -> None:
        await self.listener.start()

    @property
    def address(self) -> tuple[str, int]:
        return self.listener.address

    def quiescent(self) -> bool:
        return (
            all(ch.idle for ch in self.update_channels.values())
            and self.front.quiescent()
        )

    async def drop_member(self, key) -> None:
        """Stop routing to a member known dead before any frame was sent."""
        channel = self.update_channels.pop(key, None)
        self.front.drop_member(key)
        if channel is not None:
            await channel.aclose()

    def tolerate_dead_members(self) -> None:
        """Arm every update channel with hot-standby dead-peer tolerance.

        A channel that exhausts its retry budget mid-run checks whether
        the member's replica group still has a live channel: if so the
        member is marked dead (frames dropped, its query inbox sealed)
        and the fleet keeps going; a shard whose *last* member died
        propagates :class:`TransportRetriesExceeded` as before.
        """
        for key, channel in self.update_channels.items():
            if not isinstance(channel, TcpChannel):
                continue
            channel.on_give_up = self._give_up_handler(key)

    def _give_up_handler(self, key):
        member = _as_member(key)

        def _handler(error) -> bool:
            survivors = [
                k
                for k, ch in self.update_channels.items()
                if k != key
                and _as_member(k).shard == member.shard
                and not getattr(ch, "dead", False)
            ]
            if not survivors:
                return False
            print(
                f"source[{self.name}] member {member.label} unreachable,"
                f" surviving member(s)"
                f" {[_member_label(k) for k in survivors]} carry shard"
                f" {member.shard}: {error}",
                flush=True,
            )
            self.front.query_inboxes[key].seal()
            return True

        return _handler

    async def aclose(self) -> None:
        for channel in self.update_channels.values():
            await channel.aclose()
        await self.listener.aclose()

    def __repr__(self) -> str:
        return (
            f"ShardedSourceNode({self.name!r},"
            f" members={[_member_label(k) for k in sorted(self.update_channels)]})"
        )


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass
class ShardedRunResult:
    """Per-view outcomes of one sharded run (or one shard's serve mode)."""

    config: ExperimentConfig
    n_shards: int
    transport: str
    time_scale: float
    plan: ShardPlan
    final_views: dict[str, Relation]
    levels: dict[str, ConsistencyLevel]
    recorders: dict[str, RunRecorder]
    metrics: MetricsCollector
    updates_total: int
    deliveries_total: int
    wall_seconds: float
    chaos_profile: str | None = None
    chaos_stats: ChaosStats | None = None
    #: shard id -> updates replayed from durable state (recovered runs).
    recovered_pending: dict[int, int] | None = None
    #: hot standbys per shard (0 = no replication).
    replicas: int = 0
    #: shard id -> label of the member promoted after its primary died.
    promotions: dict[int, str] | None = None
    #: structured protocol counters of a mid-run view migration (None
    #: when no rebalance was requested); ``plan`` then holds the
    #: POST-migration assignment.
    rebalance_stats: dict | None = None

    @property
    def installs(self) -> int:
        """Install *transactions* summed over shards (NOT source updates:
        an update fanned out to k shards is installed k times here)."""
        return self.metrics.counters.get("installs", 0)

    @property
    def installs_by_view(self) -> dict[str, int]:
        """Install count per maintained view, from its own recorder."""
        return {
            name: len(self.recorders[name].snapshots)
            for name in sorted(self.final_views)
        }

    @property
    def installs_by_shard(self) -> dict[int, int]:
        """Install counts folded onto the hosting shard."""
        out: dict[int, int] = {}
        for name, count in self.installs_by_view.items():
            shard = self.plan.shard_of(name)
            out[shard] = out.get(shard, 0) + count
        return dict(sorted(out.items()))

    @property
    def updates_per_sec(self) -> float:
        """Unique source updates per wall second (not per-shard deliveries)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.updates_total / self.wall_seconds

    def min_level(self) -> ConsistencyLevel:
        """Weakest per-view verdict (NONE when verification was skipped)."""
        if not self.levels:
            return ConsistencyLevel.NONE
        return min(self.levels.values())

    def verified_at(self, level: ConsistencyLevel) -> bool:
        """Every view reached at least ``level``."""
        return bool(self.levels) and all(
            achieved >= level for achieved in self.levels.values()
        )

    def report(self) -> str:
        lines = [
            f"sharded run      : {self.n_shards} shard(s),"
            f" {self.replicas} standby(s) each,"
            f" {len(self.plan.views)} view(s), {self.transport} transport"
            f" (time scale {self.time_scale} s/unit)",
            f"plan             : {self.plan.describe()}",
        ]
        if self.promotions:
            lines.append(
                "promotions       : "
                + ", ".join(
                    f"shard {shard} -> {label}"
                    for shard, label in sorted(self.promotions.items())
                )
            )
        if self.rebalance_stats:
            rs = self.rebalance_stats
            lines.append(
                f"rebalance        : {rs['view']!r} shard {rs['from_shard']}"
                f" -> {rs['to_shard']},"
                f" gap fwd={rs['gap_forwarded']} pen={rs['pen_retained']}"
                f" catchup={rs['catchup_installs']} dup={rs['dup_dropped']}"
                f" {'complete' if rs['completed'] else 'INCOMPLETE'}"
            )
        if self.chaos_profile is not None and self.chaos_stats is not None:
            lines.append(
                f"chaos profile    : {self.chaos_profile}"
                f" ({self.chaos_stats.faults_injected} faults injected)"
            )
        lines.append(
            f"updates          : {self.updates_total} unique,"
            f" {self.deliveries_total} shard deliveries,"
            f" {self.installs} install txns"
        )
        by_shard = self.installs_by_shard
        lines.append(
            "view installs    : "
            + ", ".join(f"sh{shard}={count}" for shard, count in by_shard.items())
        )
        lines.append(
            f"throughput       : {self.updates_per_sec:.1f} distinct updates/s"
            f" over {self.wall_seconds:.3f}s"
        )
        counters = self.metrics.counters
        if self.config.locality != "off":
            lines.append(
                f"locality         : mode={self.config.locality}"
                f" aux_hits={counters.get('locality_aux_hits', 0)}"
                f" cache_hits={counters.get('locality_cache_hits', 0)}"
                f" dedup_saved={counters.get('locality_dedup_saved', 0)}"
            )
        for name in sorted(self.final_views):
            level = self.levels.get(name)
            shown = level.name.lower() if level is not None else "unchecked"
            lines.append(
                f"view {name:<12}: {self.final_views[name].distinct_count}"
                f" rows, shard {self.plan.shard_of(name)}, {shown}"
            )
        return "\n".join(lines)


def seed_history_from_workload(
    recorders: dict[str, RunRecorder], workload: Workload
) -> None:
    """Reconstruct every source's update history from the shared schedule.

    A serve-mode shard never observes remote sources' commits directly,
    but the schedule is a pure function of the shared config -- so the
    history the oracle needs (dense per-source sequence of deltas) can be
    derived locally, exactly as the source process will replay it.
    """
    for index, schedule in sorted(workload.schedules.items()):
        ordered = sorted(schedule, key=lambda u: u.time)
        for seq, update in enumerate(ordered, start=1):
            notice = UpdateNotice(
                source_index=index,
                seq=seq,
                delta=update.delta,
                applied_at=update.time,
                txn_id=update.txn_id,
                txn_total=update.txn_total,
            )
            for recorder in recorders.values():
                recorder.history.on_source_update(notice)


# ---------------------------------------------------------------------------
# Single-call sharded runs (local or loopback TCP, one event loop)
# ---------------------------------------------------------------------------

def _sharded_views(
    config: ExperimentConfig, workload: Workload
) -> list[ViewDefinition]:
    return view_family(workload.view, max(1, config.n_views))


async def run_sharded_async(
    config: ExperimentConfig,
    n_shards: int = 2,
    transport: str = "local",
    time_scale: float = 0.01,
    host: str = "127.0.0.1",
    timeout: float = 120.0,
    tcp_config: TcpChannelConfig | None = None,
    chaos: "ChaosConfig | str | None" = None,
    views: list[ViewDefinition] | None = None,
    strategy: str = "hash",
    durable_dir: str | None = None,
    checkpoint_policy: CheckpointPolicy | None = None,
    fsync_batch: int = 8,
    crash_plans: "dict[int, CrashPlan] | None" = None,
    replicas: int = 0,
    failover: FailoverSpec | None = None,
    rebalance: RebalanceSpec | None = None,
) -> ShardedRunResult:
    """Run one sharded experiment to quiescence on the current loop.

    The view family defaults to ``view_family(workload.view,
    config.n_views)``; pass ``views`` to override.  ``strategy`` picks the
    partitioning rule (``hash`` / ``round-robin``), and ``chaos`` injects
    deterministic transport faults below the FIFO contract, exactly as in
    :func:`repro.runtime.distributed.run_distributed_async`.

    ``durable_dir`` turns on the durability subsystem: each shard
    checkpoints and WAL-logs under ``<durable_dir>/shard<id>``, and a
    rerun over the same directory recovers every shard from its durable
    state (sources replay their seeded schedules; redeliveries are
    fenced).  ``crash_plans`` (shard id -> :class:`CrashPlan`) injects a
    deterministic :class:`~repro.durability.errors.SimulatedCrash`, which
    this call re-raises -- the crash-restart harness's phase one.

    ``replicas`` pairs every active shard with that many hot standbys:
    full warehouse members subscribing to duplicates of the same
    per-(source, member) FIFO channels, installing in lockstep, mute on
    the answer path (only the authoritative member's views and verdicts
    appear on the result).  ``failover`` additionally kills the chosen
    shard's primary at a deterministic protocol point and promotes its
    first standby -- the in-process half of the failover-equivalence
    harness (:mod:`repro.harness.failover`).

    ``rebalance`` migrates one non-primary view to another active shard
    *mid-run*: the donor seals and drains at the chosen protocol point,
    hands off the view's checkpoint-encoded state, and the fencing epoch
    re-routes the per-(source, member) streams with the donor forwarding
    the straggler window (see :mod:`repro.warehouse.migration`).  The
    run's ``rebalance_stats`` carries the structured protocol counters.
    Rebalancing a durable deployment is not supported.
    """
    if transport not in ("tcp", "local"):
        raise ValueError(f"unknown transport {transport!r}")
    if failover is not None and replicas < 1:
        raise ValueError(
            "failover needs at least one hot standby (replicas >= 1)"
        )
    if rebalance is not None and (
        durable_dir is not None or crash_plans
    ):
        raise ValueError(
            "rebalance cannot be combined with durability: a mid-migration"
            " checkpoint would split one view's authority across two WALs"
        )
    chaos = profile(chaos)
    predicate_stats_before = compile_cache_stats()
    rngs = RngRegistry(config.seed)
    workload = build_workload(config, rngs)
    family = views if views is not None else _sharded_views(config, workload)
    plan = partition_views(family, n_shards, strategy=strategy)
    reb_plan: RebalancePlan | None = None
    if rebalance is not None:
        reb_plan = RebalancePlan(plan, rebalance.view, rebalance.to_shard)
    migratable = reb_plan is not None
    rplan = assign_replicas(plan, replicas)
    members = rplan.members
    member_fanout_by_name = rplan.member_fanout()
    primary_chain = family[0]
    n = primary_chain.n_relations
    fanout = {
        index: member_fanout_by_name.get(primary_chain.name_of(index), ())
        for index in range(1, n + 1)
    }
    if failover is not None and failover.shard not in rplan.members_by_shard:
        raise ValueError(
            f"failover shard {failover.shard} hosts no views under"
            f" [{plan.describe()}]"
        )

    runtime = AsyncRuntime(time_scale=time_scale)
    metrics = MetricsCollector()
    trace = TraceLog(enabled=config.trace)
    trace_arg = trace if config.trace else None
    # One recorder set per member: primary and standby each classify
    # against their own delivery order, and only the authoritative
    # member's verdicts end up on the result.
    member_recorders: dict[ShardMember, dict[str, RunRecorder]] = {}
    for member in members:
        recs = {v.name: RunRecorder(v) for v in plan.views_for(member.shard)}
        for recorder in recs.values():
            for index in range(1, n + 1):
                recorder.register_source(
                    index,
                    primary_chain.name_of(index),
                    workload.initial_states[primary_chain.name_of(index)],
                )
        member_recorders[member] = recs
    all_recorders = [
        recorder
        for recs in member_recorders.values()
        for recorder in recs.values()
    ]

    chaos_stats = ChaosStats() if (chaos is not None and chaos.active) else None
    backends: list = []
    channels: list = []
    mailboxes: list[Mailbox] = []
    proxies: list[ChaosTcpProxy] = []
    warehouses: dict[ShardMember, object] = {}
    member_nodes: dict[ShardMember, ShardNode] = {}
    source_nodes: list[ShardedSourceNode] = []
    fronts: dict[int, ShardedSourceFront] = {}
    managers: list[DurabilityManager] = []
    recovered_states: dict[ShardMember, RecoveredState] = {}
    member_inboxes: dict[ShardMember, Mailbox] = {}
    dead: set[ShardMember] = set()
    promotions: dict[int, str] = {}
    crash_plans = crash_plans or {}

    def _member_dir(member: ShardMember) -> str | None:
        if durable_dir is None:
            return None
        suffix = (
            f"shard{member.shard}"
            if member.is_primary
            else f"shard{member.shard}r{member.replica}"
        )
        return os.path.join(durable_dir, suffix)
    shard_primaries = {
        shard: plan.views_for(shard)[0].name for shard in plan.active_shards
    }

    async def _front_address(link: str, address: tuple[str, int]):
        if chaos_stats is None:
            return address
        proxy = ChaosTcpProxy(
            runtime,
            link,
            address,
            chaos,
            seed=config.seed,
            stats=chaos_stats,
            listen_host=host,
        )
        await proxy.start()
        proxies.append(proxy)
        return proxy.address

    def _local_channel(link: str, destination):
        if chaos_stats is None:
            channel = LocalChannel(runtime, link, destination, metrics)
        else:
            channel = ChaosLocalChannel(
                runtime,
                link,
                destination,
                metrics,
                config=chaos,
                seed=config.seed,
                stats=chaos_stats,
            )
        channels.append(channel)
        return channel

    if transport == "local":
        for member in members:
            member_inboxes[member] = (
                LoggingMailbox(runtime, f"{member.label}-inbox")
                if durable_dir is not None
                else Mailbox(runtime, f"{member.label}-inbox")
            )
        mailboxes.extend(member_inboxes.values())
        for index in range(1, n + 1):
            name = primary_chain.name_of(index)
            backend = _make_backend(
                config, primary_chain, index, workload.initial_states[name]
            )
            backends.append(backend)
            update_channels = {
                member: _local_channel(
                    f"{name}->{member.label}", member_inboxes[member]
                )
                for member in fanout[index]
            }
            front = ShardedSourceFront(
                runtime,
                primary_chain,
                index,
                backend,
                update_channels,
                query_service_time=config.query_service_time,
                trace=trace_arg,
            )
            front.add_update_listener(
                lambda notice: [
                    r.history.on_source_update(notice) for r in all_recorders
                ]
            )
            fronts[index] = front
            mailboxes.extend(front.query_inboxes.values())
        for member in members:
            shard_views = plan.views_for(member.shard)
            query_channels = {
                index: _local_channel(
                    f"{member.label}->{primary_chain.name_of(index)}",
                    fronts[index].query_inboxes[member],
                )
                for index in range(1, n + 1)
            }
            warehouses[member] = build_shard_warehouse(
                runtime,
                shard_views,
                query_channels,
                workload.initial_states,
                member_recorders[member],
                config,
                member_inboxes[member],
                metrics,
                trace_arg,
                migratable=migratable,
            )
            if durable_dir is not None:
                manager, state = attach_durability(
                    warehouses[member],
                    _member_dir(member),
                    policy=checkpoint_policy,
                    fsync_batch=fsync_batch,
                    crash_plan=(
                        crash_plans.get(member.shard)
                        if member.is_primary
                        else None
                    ),
                )
                managers.append(manager)
                if state is not None:
                    recovered_states[member] = state
    else:
        placeholder = ("127.0.0.1", 1)
        for index in range(1, n + 1):
            name = primary_chain.name_of(index)
            backend = _make_backend(
                config, primary_chain, index, workload.initial_states[name]
            )
            backends.append(backend)
            node = ShardedSourceNode(
                runtime,
                family,
                index,
                backend,
                {member: placeholder for member in fanout[index]},
                query_service_time=config.query_service_time,
                metrics=metrics,
                trace=trace_arg,
                listen_host=host,
                tcp_config=tcp_config,
            )
            await node.start()
            node.front.add_update_listener(
                lambda notice: [
                    r.history.on_source_update(notice) for r in all_recorders
                ]
            )
            source_nodes.append(node)
            fronts[index] = node.front
            mailboxes.extend(node.front.query_inboxes.values())
        for member in members:
            shard_views = plan.views_for(member.shard)
            node = ShardNode(
                runtime,
                member.shard,
                shard_views,
                {
                    index: await _front_address(
                        f"{member.label}->{source.name}", source.address
                    )
                    for index, source in zip(range(1, n + 1), source_nodes)
                },
                workload.initial_states,
                config,
                recorders=member_recorders[member],
                metrics=metrics,
                trace=trace_arg,
                listen_host=host,
                tcp_config=tcp_config,
                durable_dir=_member_dir(member),
                checkpoint_policy=checkpoint_policy,
                fsync_batch=fsync_batch,
                crash_plan=(
                    crash_plans.get(member.shard)
                    if member.is_primary
                    else None
                ),
                member=member,
                migratable=migratable,
                codec_views=family if migratable else None,
            )
            await node.start()
            member_nodes[member] = node
            warehouses[member] = node.warehouse
            member_inboxes[member] = node.inbox
            mailboxes.append(node.inbox)
            if node.recovered_state is not None:
                recovered_states[member] = node.recovered_state
        for source in source_nodes:
            for member, channel in source.update_channels.items():
                channel.host, channel.port = await _front_address(
                    f"{source.name}->{member.label}",
                    member_nodes[member].address,
                )

    # Attach migration states and arm the rebalance trigger on the donor
    # primary.  Standby members migrate in lockstep with their primaries:
    # donor standby k seals and donates to recipient standby k over their
    # own channel pair, so a later failover on either shard still finds a
    # standby whose view set matches its primary's.
    rebalance_trigger: _RebalanceTrigger | None = None
    coordinator: RebalanceCoordinator | None = None
    if reb_plan is not None:
        vdef = next(v for v in family if v.name == reb_plan.view)
        coordinator = RebalanceCoordinator(
            reb_plan, runtime, primary_chain, fronts, member_recorders
        )
        donor_members = rplan.members_by_shard[reb_plan.from_shard]
        recipient_members = rplan.members_by_shard[reb_plan.to_shard]
        mutated = rebalance.skip_straggler_forwarding
        for donor_m, recipient_m in zip(donor_members, recipient_members):
            donor_state = MigrationMemberState(
                role="donor",
                view_def=vdef,
                epoch=coordinator.epoch,
                coordinator=coordinator,
                member=donor_m,
                n_sources=n,
                skip_forwarding=mutated,
            )
            recipient_state = MigrationMemberState(
                role="recipient",
                view_def=vdef,
                epoch=coordinator.epoch,
                coordinator=coordinator,
                member=recipient_m,
                n_sources=n,
                skip_forwarding=mutated,
                relaxed=mutated,
            )
            warehouses[donor_m].attach_migration(donor_state)
            warehouses[recipient_m].attach_migration(recipient_state)
            coordinator.register_pair(
                donor_m,
                recipient_m,
                donor_state,
                member_inboxes[recipient_m],
            )
        rebalance_trigger = _RebalanceTrigger(
            rebalance,
            warehouses[rplan.primary_of(reb_plan.from_shard)],
            coordinator,
        )

    # Arm the deterministic kill switch on the victim shard's primary.
    kill_switch: _KillSwitch | None = None
    if failover is not None:
        victim = rplan.primary_of(failover.shard)
        standby = rplan.standbys_of(failover.shard)[0]

        def _on_fire(switch, victim=victim, standby=standby):
            # The primary is gone: seal its inbox (models the process
            # disappearing while peers keep sending) and hand authority
            # to the standby, which is already at the same FIFO position
            # on its own channels.
            dead.add(victim)
            member_inboxes[victim].seal()
            promotions[failover.shard] = standby.label
            if failover.unfenced_replay and switch.last_notice is not None:
                # Mutation hook: a fence-skipping takeover of the dead
                # primary's channel replays its last delivered frame
                # into the standby -- a duplicate the epoch fence would
                # have dropped.  The oracle must fail this run.
                member_inboxes[standby].put(
                    Message(
                        kind="update",
                        sender=f"unfenced-replay-{victim.label}",
                        payload=dataclasses.replace(
                            switch.last_notice,
                            delivery_seq=None,
                            delivered_at=0.0,
                        ),
                    )
                )

        kill_switch = _KillSwitch(failover, warehouses[victim], _on_fire)

    updaters = [
        ScheduledUpdater(
            runtime,
            primary_chain.name_of(index),
            fronts[index].local_update,
            schedule,
        )
        for index, schedule in sorted(workload.schedules.items())
    ]
    member_expected = {
        member: sum(
            len(workload.schedules.get(index, ()))
            for index in range(1, n + 1)
            if member in fanout[index]
        )
        for member in members
    }
    # A recovered member's recorder counts only this incarnation's
    # deliveries: the replayed checkpoint/WAL pending plus whatever the
    # durable marks have not fenced off as redeliveries.
    for member, state in recovered_states.items():
        member_expected[member] += len(state.pending) - state.delivered_total

    started = _time.perf_counter()
    try:
        def finished() -> bool:
            if not all(updater.done for updater in updaters):
                return False
            for member in members:
                if member in dead:
                    continue
                rec = member_recorders[member][shard_primaries[member.shard]]
                if rec.updates_delivered < member_expected[member]:
                    return False
            if not runtime.settled():
                return False
            if any(
                wh.pending_work()
                for member, wh in warehouses.items()
                if member not in dead
            ):
                return False
            if transport == "local":
                if not all(channel.idle for channel in channels):
                    return False
            else:
                if not all(
                    node.quiescent()
                    for member, node in member_nodes.items()
                    if member not in dead
                ):
                    return False
                if not all(node.quiescent() for node in source_nodes):
                    return False
            return all(len(box) == 0 for box in mailboxes)

        await runtime.wait_until(finished, timeout=timeout)
        wall = _time.perf_counter() - started
        record_predicate_cache_delta(metrics, predicate_stats_before)
        if kill_switch is not None and not kill_switch.fired:
            raise RuntimeHostError(
                f"failover kill switch never fired ({failover!r}):"
                " thresholds exceed the workload's protocol events"
            )
        if rebalance_trigger is not None and not rebalance_trigger.fired:
            raise RuntimeHostError(
                f"rebalance trigger never fired ({rebalance!r}):"
                " thresholds exceed the workload's protocol events"
            )
        if coordinator is not None:
            for recipient_m in coordinator._recipient_inboxes:
                if recipient_m in dead:
                    continue
                member_stats = warehouses[recipient_m].migration_stats()
                if not member_stats["catchup_done"]:
                    raise RuntimeHostError(
                        f"rebalance incomplete: member {recipient_m.label}"
                        f" settled before catch-up ({member_stats!r})"
                    )

        # Authority per shard: the primary, or -- after a failover --
        # the first surviving standby.  Only the authoritative member's
        # views, verdicts, and recorders appear on the result (the
        # standby is mute on the answer path until promoted).
        def _authority(shard: int) -> ShardMember:
            for candidate in rplan.members_by_shard[shard]:
                if candidate not in dead:
                    return candidate
            raise RuntimeHostError(f"shard {shard}: no surviving member")

        # Views (and their recorders) are read from the member that hosts
        # them at the END of the run: the launch plan unless a rebalance
        # moved one.  The migrated view's recorder owns its own spliced
        # delivery order (donor prefix + catch-up + steady state), so it
        # is excluded from the primary-order copy below.
        effective_plan = (
            reb_plan.result_plan() if reb_plan is not None else plan
        )
        migrated = reb_plan.view if reb_plan is not None else None
        recorders: dict[str, RunRecorder] = {}
        final_views: dict[str, Relation] = {}
        for shard in effective_plan.active_shards:
            member = _authority(shard)
            recs = member_recorders[member]
            # Extra views share their shard primary's delivery order.
            primary_deliveries = recs[shard_primaries[shard]].deliveries
            for view in effective_plan.views_for(shard):
                if view.name in (shard_primaries[shard], migrated):
                    continue
                recs[view.name].deliveries = list(primary_deliveries)
            recorders.update(recs)
            for view in effective_plan.views_for(shard):
                final_views[view.name] = warehouses[member].view_contents(
                    view.name
                )
        levels: dict[str, ConsistencyLevel] = {}
        if config.check_consistency:
            levels = {
                name: recorders[name].classify(
                    max_vectors=config.max_check_vectors
                )
                for name in final_views
            }
        rebalance_stats = None
        if coordinator is not None:
            per_member = {
                key.label: warehouses[key].migration_stats()
                for key in coordinator.members
                if key not in dead
            }
            totals = {
                counter: sum(m.get(counter, 0) for m in per_member.values())
                for counter in (
                    "gap_forwarded",
                    "gap_skipped",
                    "pen_retained",
                    "dup_dropped",
                    "catchup_installs",
                    "aux_adopted",
                    "aux_adopt_skipped",
                )
            }
            donor_primary = rplan.primary_of(reb_plan.from_shard)
            seal_position = (
                warehouses[donor_primary].migration_stats()["seal_position"]
                if donor_primary not in dead
                else {}
            )
            rebalance_stats = {
                "view": reb_plan.view,
                "from_shard": reb_plan.from_shard,
                "to_shard": reb_plan.to_shard,
                "epoch": coordinator.epoch,
                "fired": rebalance_trigger.fired,
                "boundaries": dict(coordinator.boundaries),
                "seal_position": seal_position,
                "completed": all(
                    m["catchup_done"]
                    for m in per_member.values()
                    if m["role"] == "recipient"
                ),
                **totals,
                "members": per_member,
            }
        return ShardedRunResult(
            config=config,
            n_shards=n_shards,
            transport=transport,
            time_scale=time_scale,
            plan=effective_plan,
            final_views=final_views,
            levels=levels,
            recorders=recorders,
            metrics=metrics,
            updates_total=workload.total_updates,
            deliveries_total=sum(
                recorders[shard_primaries[shard]].updates_delivered
                for shard in plan.active_shards
            ),
            wall_seconds=wall,
            chaos_profile=chaos.name if chaos is not None else None,
            chaos_stats=chaos_stats,
            recovered_pending=(
                {
                    member.shard: len(state.pending)
                    for member, state in recovered_states.items()
                    if member.is_primary
                }
                if recovered_states
                else None
            ),
            replicas=replicas,
            promotions=promotions or None,
            rebalance_stats=rebalance_stats,
        )
    finally:
        for manager in managers:
            manager.close()
        for node in member_nodes.values():
            await node.aclose()
        for node in source_nodes:
            await node.aclose()
        for proxy in proxies:
            await proxy.aclose()
        for backend in backends:
            backend.close()
        await runtime.aclose()


def run_sharded(
    config: ExperimentConfig,
    n_shards: int = 2,
    transport: str = "local",
    time_scale: float = 0.01,
    host: str = "127.0.0.1",
    timeout: float = 120.0,
    tcp_config: TcpChannelConfig | None = None,
    chaos: "ChaosConfig | str | None" = None,
    views: list[ViewDefinition] | None = None,
    strategy: str = "hash",
    durable_dir: str | None = None,
    checkpoint_policy: CheckpointPolicy | None = None,
    fsync_batch: int = 8,
    crash_plans: "dict[int, CrashPlan] | None" = None,
    replicas: int = 0,
    failover: FailoverSpec | None = None,
    rebalance: RebalanceSpec | None = None,
) -> ShardedRunResult:
    """Blocking wrapper: one sharded experiment in a fresh event loop."""
    return asyncio.run(
        run_sharded_async(
            config,
            n_shards=n_shards,
            transport=transport,
            time_scale=time_scale,
            host=host,
            timeout=timeout,
            tcp_config=tcp_config,
            chaos=chaos,
            views=views,
            strategy=strategy,
            durable_dir=durable_dir,
            checkpoint_policy=checkpoint_policy,
            fsync_batch=fsync_batch,
            crash_plans=crash_plans,
            replicas=replicas,
            failover=failover,
            rebalance=rebalance,
        )
    )


# ---------------------------------------------------------------------------
# Multi-process entry points (repro serve-shard + ShardSupervisor)
# ---------------------------------------------------------------------------

async def serve_shard_async(
    config: ExperimentConfig,
    shard_id: int,
    n_shards: int,
    source_addresses: dict[int, tuple[str, int]],
    listen_host: str = "127.0.0.1",
    listen_port: int = 0,
    time_scale: float = 0.01,
    expect_updates: int | None = None,
    timeout: float = 3600.0,
    tcp_config: TcpChannelConfig | None = None,
    strategy: str = "hash",
    probe: bool = True,
    verify: bool = True,
    durable_dir: str | None = None,
    checkpoint_policy: CheckpointPolicy | None = None,
    fsync_batch: int = 8,
    replica: int = 0,
    seed_from: str | None = None,
) -> ShardedRunResult:
    """Host one warehouse shard of a multi-process sharded deployment.

    Every process derives the identical view family and plan from the
    shared config (``view_family`` + ``partition_views`` are pure), so no
    schema or assignment is exchanged.  Source histories are reconstructed
    locally from the seeded schedule, which lets this shard verify its
    views' consistency in-process; with ``verify=True`` a view falling
    short of its scheduler's claimed level raises
    :class:`ShardVerificationError` (and the CLI exits non-zero) -- the
    supervisor's oracle gate for free.

    ``durable_dir`` makes the shard crash-restartable: it checkpoints and
    WAL-logs there, and a relaunch over the same directory (what
    ``ShardSupervisor`` does under ``restart="on-crash"``) recovers the
    views and re-enters the protocol where the durable state left off.

    ``replica > 0`` hosts the shard as a **hot standby**
    (``repro serve-shard --standby-of N``): the identical warehouse
    under the member label ``sh<N>r<K>``, subscribing to its own copies
    of the per-source channels and verifying its views independently.
    ``seed_from`` bootstraps a fresh standby's durable directory from
    the primary's newest checkpoint (never the WAL -- see
    :func:`repro.durability.recovery.seed_standby_dir`).
    """
    member = ShardMember(shard_id, replica)
    if seed_from is not None and durable_dir is not None:
        from repro.durability.recovery import seed_standby_dir

        seeded = seed_standby_dir(seed_from, durable_dir)
        if seeded is not None:
            print(
                f"shard[{member.label}] seeded durable dir from"
                f" {seed_from} at generation {seeded}",
                flush=True,
            )
    rngs = RngRegistry(config.seed)
    workload = build_workload(config, rngs)
    family = _sharded_views(config, workload)
    plan = partition_views(family, n_shards, strategy=strategy)
    shard_views = plan.views_for(shard_id)
    if not shard_views:
        raise ValueError(
            f"shard {shard_id} hosts no views under plan [{plan.describe()}]"
        )
    runtime = AsyncRuntime(time_scale=time_scale)
    metrics = MetricsCollector()
    trace = TraceLog(enabled=config.trace)
    recorders = {view.name: RunRecorder(view) for view in shard_views}
    primary_chain = family[0]
    for recorder in recorders.values():
        for index in range(1, primary_chain.n_relations + 1):
            recorder.register_source(
                index,
                primary_chain.name_of(index),
                workload.initial_states[primary_chain.name_of(index)],
            )
    seed_history_from_workload(recorders, workload)
    node = ShardNode(
        runtime,
        shard_id,
        shard_views,
        source_addresses,
        workload.initial_states,
        config,
        recorders=recorders,
        metrics=metrics,
        trace=trace if config.trace else None,
        listen_host=listen_host,
        listen_port=listen_port,
        tcp_config=tcp_config,
        durable_dir=durable_dir,
        checkpoint_policy=checkpoint_policy,
        fsync_batch=fsync_batch,
        member=member,
    )
    await node.start()
    recovered = node.recovered_state
    print(
        f"shard[{member.label}/{n_shards}] hosting"
        f" {[v.name for v in shard_views]} listening on"
        f" {node.address[0]}:{node.address[1]}"
        + (
            f" (recovered generation {recovered.generation},"
            f" {len(recovered.pending)} pending replayed)"
            if recovered is not None
            else ""
        ),
        flush=True,
    )
    started = _time.perf_counter()
    try:
        if probe:
            for index, (phost, pport) in sorted(source_addresses.items()):
                await probe_peer(
                    phost, pport, tcp_config, what=f"source R{index}"
                )
        expected = (
            expect_updates
            if expect_updates is not None
            else workload.total_updates
        )
        if recovered is not None:
            # Only this incarnation's deliveries count: the replayed
            # pending, plus everything past the durable marks.
            expected += len(recovered.pending) - recovered.delivered_total
        primary_recorder = recorders[shard_views[0].name]

        def finished() -> bool:
            return (
                primary_recorder.updates_delivered >= expected
                and runtime.settled()
                and node.quiescent()
            )

        await runtime.wait_until(finished, timeout=timeout)
        wall = _time.perf_counter() - started
        primary_deliveries = primary_recorder.deliveries
        for view in shard_views[1:]:
            recorders[view.name].deliveries = list(primary_deliveries)
        final_views = {
            view.name: node.warehouse.view_contents(view.name)
            for view in shard_views
        }
        levels: dict[str, ConsistencyLevel] = {}
        if config.check_consistency:
            levels = {
                name: recorders[name].classify(
                    max_vectors=config.max_check_vectors
                )
                for name in final_views
            }
        result = ShardedRunResult(
            config=config,
            n_shards=n_shards,
            transport="tcp",
            time_scale=time_scale,
            plan=plan,
            final_views=final_views,
            levels=levels,
            recorders=recorders,
            metrics=metrics,
            updates_total=expected,
            deliveries_total=primary_recorder.updates_delivered,
            wall_seconds=wall,
            recovered_pending=(
                {shard_id: len(recovered.pending)}
                if recovered is not None
                else None
            ),
        )
        if verify and config.check_consistency:
            claimed = CLAIMED_LEVELS.get(
                config.algorithm, ConsistencyLevel.CONVERGENCE
            )
            failing = {
                name: level.name.lower()
                for name, level in levels.items()
                if level < claimed
            }
            if failing:
                raise ShardVerificationError(
                    f"shard {shard_id}: views below claimed"
                    f" {claimed.name.lower()}: {failing}"
                )
        return result
    finally:
        await node.aclose()
        await runtime.aclose()


async def serve_sharded_source_async(
    config: ExperimentConfig,
    index: int,
    shard_addresses: dict[int, tuple[str, int]],
    listen_host: str = "127.0.0.1",
    listen_port: int = 0,
    time_scale: float = 0.01,
    drive: bool = True,
    exit_when_done: bool = True,
    linger: float = 3.0,
    timeout: float = 3600.0,
    tcp_config: TcpChannelConfig | None = None,
    probe: bool = True,
) -> None:
    """Host one data-source site of a multi-process *sharded* deployment.

    Like :func:`repro.runtime.distributed.serve_source_async`, but the
    site routes updates to several shard listeners (``shard_addresses``)
    through a :class:`ShardedSourceFront` and serves one query channel
    per shard.  With ``probe=True`` every shard address is
    connectivity-checked before any update is replayed.

    ``shard_addresses`` keys may be shard ints or :class:`ShardMember`
    instances (a replicated deployment lists every member).  Dead-peer
    tolerance is always armed: a member whose channel exhausts its
    retry budget mid-run is dropped iff another live member still
    carries its shard; losing a shard's *last* member fails the process
    with :class:`TransportRetriesExceeded`, exactly as before.
    """
    rngs = RngRegistry(config.seed)
    workload = build_workload(config, rngs)
    family = _sharded_views(config, workload)
    primary = family[0]
    runtime = AsyncRuntime(time_scale=time_scale)
    backend = _make_backend(
        config, primary, index, workload.initial_states[primary.name_of(index)]
    )
    node = ShardedSourceNode(
        runtime,
        family,
        index,
        backend,
        shard_addresses,
        query_service_time=config.query_service_time,
        listen_host=listen_host,
        listen_port=listen_port,
        tcp_config=tcp_config,
    )
    await node.start()
    node.tolerate_dead_members()
    print(
        f"source[{node.name}] serving members"
        f" {[_member_label(k) for k in sorted(shard_addresses)]}"
        f" listening on {node.address[0]}:{node.address[1]}",
        flush=True,
    )
    try:
        if probe:
            # Probe with replica-group tolerance: a member that died
            # before this source finished starting up is dropped iff
            # another member of its group is reachable -- losing a
            # shard's last member still fails the process.
            unreachable: list = []
            probe_errors: dict = {}
            reachable_shards: set[int] = set()
            for key, (phost, pport) in sorted(shard_addresses.items()):
                try:
                    await probe_peer(
                        phost,
                        pport,
                        tcp_config,
                        what=f"member {_member_label(key)}",
                    )
                    reachable_shards.add(_as_member(key).shard)
                except TransportRetriesExceeded as exc:
                    unreachable.append(key)
                    probe_errors[key] = exc
            for key in unreachable:
                dead_member = _as_member(key)
                if dead_member.shard not in reachable_shards:
                    raise probe_errors[key]
                print(
                    f"source[{node.name}] member {dead_member.label}"
                    " unreachable at probe time; surviving member(s)"
                    f" carry shard {dead_member.shard}",
                    flush=True,
                )
                await node.drop_member(key)
        updater = None
        if drive and index in workload.schedules:
            updater = ScheduledUpdater(
                runtime,
                node.name,
                node.front.local_update,
                workload.schedules[index],
            )
        if updater is not None and exit_when_done:
            drained_at: list[float] = []

            def _finished() -> bool:
                if not (updater.done and node.quiescent()):
                    drained_at.clear()
                    return False
                now = _time.monotonic()
                if not drained_at:
                    drained_at.append(now)
                last = max(node.listener.last_frame_wall, drained_at[0])
                return now - last >= linger

            await runtime.wait_until(_finished, timeout=timeout)
        else:
            while True:  # serve until cancelled (Ctrl-C)
                runtime.check()
                await asyncio.sleep(0.2)
    finally:
        await node.aclose()
        backend.close()
        await runtime.aclose()


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned TCP port that was free a moment ago.

    Multi-process launches need addresses before the children exist;
    the tiny bind/close race is acceptable for CLI and test use.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


#: exit code host commands use for *deliberate* failures (verification
#: below the claimed level, peer unreachable after the retry budget).
#: Distinct from 1 (unhandled exception = crash) and 2 (argparse usage
#: error) so a restart policy can tell "this member failed cleanly and
#: would fail identically again" from "this member died".
CLEAN_FAILURE_EXIT = 3

#: exit codes the supervisor never restarts: deliberate failures and
#: usage errors reproduce themselves, so relaunching would hot-loop.
_NO_RESTART_CODES = frozenset({2, CLEAN_FAILURE_EXIT})


class ShardSupervisor:
    """Launch and babysit the processes of a sharded deployment.

    The supervisor's base job is **crash detection**: a member exiting
    non-zero while the fleet is still working kills every remaining
    process and raises :class:`ShardCrashed` naming the culprit (with its
    captured stderr tail).  A fleet where every member exits 0 is a
    successful deployment -- shards verify their own views before
    exiting, so supervisor success implies oracle success.

    With ``restart="on-crash"`` a member launched with
    ``restartable=True`` that *crashes* (killed by a signal, or any exit
    code outside :data:`_NO_RESTART_CODES`) is relaunched with its
    original argv -- up to ``max_restarts`` times, after an escalating
    ``backoff`` -- instead of failing the fleet.  Only durable shards are
    restartable: they relaunch over their ``--durable-dir`` and recover;
    sources have no durable state to come back from.  Clean non-zero
    exits (:data:`CLEAN_FAILURE_EXIT`, e.g. a failed consistency check or
    ``TransportRetriesExceeded`` from a probe) are never restarted: they
    are answers, not accidents.

    A member launched with ``standby_for="shard3"`` is shard3's **hot
    standby**: when the primary *crashes* while the standby is alive the
    supervisor promotes instead of failing the fleet (the standby
    already holds the state at the same FIFO position -- promotion is
    pure bookkeeping here, recorded in :attr:`promotions`); a crashed
    standby whose primary is healthy is tolerated the same way.
    Promotion takes precedence over restart, and clean failures
    (:data:`_NO_RESTART_CODES`) never promote -- a verification failure
    would reproduce on the standby too, so it must fail the fleet.
    """

    def __init__(
        self,
        poll_interval: float = 0.2,
        restart: str = "never",
        max_restarts: int = 2,
        backoff: float = 0.5,
    ):
        if restart not in ("never", "on-crash"):
            raise ValueError(f"unknown restart policy {restart!r}")
        self.poll_interval = poll_interval
        self.restart = restart
        self.max_restarts = max_restarts
        self.backoff = backoff
        self.procs: dict[str, subprocess.Popen] = {}
        self._specs: dict[str, tuple[list[str], dict, bool]] = {}
        self.restarts: dict[str, int] = {}
        #: human-readable record of every relaunch decision.
        self.restart_log: list[str] = []
        #: standby name -> the primary process it shadows.
        self.standby_of: dict[str, str] = {}
        #: dead primary name -> the standby promoted in its place.
        self.promoted: dict[str, str] = {}
        #: human-readable record of every promotion/tolerance decision,
        #: stamped with seconds since the supervisor started waiting.
        self.failover_log: list[str] = []
        self._wait_started: float | None = None

    def launch(
        self,
        name: str,
        argv: list[str],
        restartable: bool = False,
        standby_for: str | None = None,
        **popen_kwargs,
    ) -> None:
        if name in self.procs:
            raise ValueError(f"duplicate process name {name!r}")
        if standby_for is not None:
            if standby_for not in self.procs:
                raise ValueError(
                    f"standby {name!r} shadows unknown process {standby_for!r}"
                )
            self.standby_of[name] = standby_for
        self._specs[name] = (list(argv), dict(popen_kwargs), restartable)
        self.restarts[name] = 0
        self.procs[name] = self._spawn(name)

    def _spawn(self, name: str) -> subprocess.Popen:
        argv, popen_kwargs, _ = self._specs[name]
        return subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            **popen_kwargs,
        )

    def _try_restart(self, name: str, code: int) -> bool:
        """Relaunch a crashed member if the policy allows; True on relaunch."""
        _, _, restartable = self._specs[name]
        if (
            self.restart != "on-crash"
            or not restartable
            or code in _NO_RESTART_CODES
        ):
            return False
        if self.restarts[name] >= self.max_restarts:
            self.restart_log.append(
                f"{name}: exit {code}, restart budget"
                f" ({self.max_restarts}) exhausted"
            )
            return False
        # Reap the dead incarnation's pipes before replacing it.
        _, stderr = self.procs[name].communicate()
        self.restarts[name] += 1
        attempt = self.restarts[name]
        tail = "\n".join((stderr or "").strip().splitlines()[-3:])
        self.restart_log.append(
            f"{name}: exit {code}, relaunch {attempt}/{self.max_restarts}"
            + (f" (stderr tail: {tail})" if tail else "")
        )
        _time.sleep(self.backoff * attempt)
        self.procs[name] = self._spawn(name)
        return True

    def _elapsed(self) -> float:
        if self._wait_started is None:
            return 0.0
        return _time.monotonic() - self._wait_started

    def _is_healthy(self, name: str) -> bool:
        """Still running, or finished its work cleanly."""
        proc = self.procs.get(name)
        return proc is not None and proc.poll() in (None, 0)

    def _standbys_for(self, name: str) -> list[str]:
        return [s for s, p in self.standby_of.items() if p == name]

    def _try_failover(self, name: str, code: int) -> bool:
        """Absorb a replica-group member's crash; True when tolerated.

        A crashed primary with a live standby is *promoted over*: the
        standby becomes the group's authority (it verifies its own views
        before exiting, so fleet success still implies oracle success).
        A crashed standby with a healthy primary is simply dropped.
        Clean failures are answers, not accidents -- never absorbed.
        """
        if code in _NO_RESTART_CODES:
            return False
        standbys = [s for s in self._standbys_for(name) if self._is_healthy(s)]
        if standbys:
            promoted = standbys[0]
            _, stderr = self.procs[name].communicate()
            del self.procs[name]
            self.standby_of.pop(promoted, None)
            self.promoted[name] = promoted
            self.failover_log.append(
                f"[t+{self._elapsed():.2f}s] {name}: exit {code},"
                f" promoted standby {promoted}"
            )
            return True
        primary = self.standby_of.get(name)
        if primary is not None and self._is_healthy(primary):
            self.procs[name].communicate()
            del self.procs[name]
            del self.standby_of[name]
            self.failover_log.append(
                f"[t+{self._elapsed():.2f}s] {name}: exit {code}, standby"
                f" death tolerated (primary {primary} healthy)"
            )
            return True
        return False

    def running(self) -> list[str]:
        return [
            name for name, proc in self.procs.items() if proc.poll() is None
        ]

    def terminate_all(self, grace: float = 5.0) -> None:
        for proc in self.procs.values():
            if proc.poll() is None:
                proc.terminate()
        deadline = _time.monotonic() + grace
        for proc in self.procs.values():
            if proc.poll() is None:
                try:
                    proc.wait(timeout=max(0.1, deadline - _time.monotonic()))
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

    def wait(self, timeout: float = 300.0) -> dict[str, str]:
        """Block until every member exits 0; return each member's stdout.

        Raises :class:`ShardCrashed` on the first non-zero exit (after
        terminating the remaining members) and :class:`TimeoutError` when
        the fleet outlives ``timeout`` seconds.
        """
        deadline = _time.monotonic() + timeout
        self._wait_started = _time.monotonic()
        try:
            while True:
                all_done = True
                for name, proc in list(self.procs.items()):
                    code = proc.poll()
                    if code is None:
                        all_done = False
                    elif code != 0:
                        if self._try_failover(name, code):
                            continue
                        if self._try_restart(name, code):
                            all_done = False
                            continue
                        _, stderr = proc.communicate()
                        self.terminate_all()
                        tail = "\n".join(
                            (stderr or "").strip().splitlines()[-8:]
                        )
                        raise ShardCrashed(
                            f"process {name!r} exited {code}"
                            + (f"; stderr tail:\n{tail}" if tail else "")
                        )
                if all_done:
                    return {
                        name: proc.communicate()[0] or ""
                        for name, proc in self.procs.items()
                    }
                if _time.monotonic() >= deadline:
                    self.terminate_all()
                    raise TimeoutError(
                        f"sharded deployment still running after {timeout}s:"
                        f" {self.running()}"
                    )
                _time.sleep(self.poll_interval)
        except BaseException:
            self.terminate_all()
            raise


def _config_argv(config: ExperimentConfig, time_scale: float) -> list[str]:
    """CLI flags reproducing the deployment-agreement knobs of a config."""
    argv = [
        "--algorithm", config.algorithm,
        "--sources", str(config.n_sources),
        "--updates", str(config.n_updates),
        "--seed", str(config.seed),
        "--backend", config.backend,
        "--interarrival", str(config.mean_interarrival),
        "--insert-fraction", str(config.insert_fraction),
        "--rows", str(config.rows_per_relation),
        "--time-scale", str(time_scale),
        "--views", str(config.n_views),
        "--batch-max", str(config.batch_max),
        "--locality", config.locality,
        "--locality-budget", str(config.locality_budget_rows),
    ]
    if config.batch_adaptive:
        argv.append("--adaptive-batch")
    return argv


def build_sharded_supervisor(
    config: ExperimentConfig,
    n_shards: int,
    time_scale: float = 0.01,
    strategy: str = "hash",
    host: str = "127.0.0.1",
    timeout: float = 300.0,
    linger: float = 1.0,
    durable_root: str | None = None,
    restart: str = "never",
    max_restarts: int = 2,
    replicas: int = 0,
) -> ShardSupervisor:
    """Launch a full sharded fleet and return its (not yet waited) supervisor.

    One ``repro serve-shard`` per replica-group member, one
    ``repro serve-source`` per source.  With ``durable_root`` each member
    gets ``--durable-dir <durable_root>/<label>`` and primaries are
    launched ``restartable``; combined with ``restart="on-crash"`` a
    SIGKILLed shard is relaunched and recovers from its durable directory
    while the sources retransmit their unacked frames.

    ``replicas`` adds that many hot standbys per shard, each launched
    with ``--standby-of`` and registered with the supervisor via
    ``standby_for`` -- so a SIGKILLed primary is *promoted over* (the
    standby carries the shard and the fleet exits 0) rather than failing
    or restarting the deployment.
    """
    rngs = RngRegistry(config.seed)
    workload = build_workload(config, rngs)
    family = _sharded_views(config, workload)
    plan = partition_views(family, n_shards, strategy=strategy)
    rplan = assign_replicas(plan, replicas)
    primary = family[0]
    n = primary.n_relations
    member_fanout_by_name = rplan.member_fanout()
    member_ports = {member: free_port(host) for member in rplan.members}
    source_ports = {index: free_port(host) for index in range(1, n + 1)}
    base = [sys.executable, "-m", "repro"]
    cfg_argv = _config_argv(config, time_scale)
    supervisor = ShardSupervisor(restart=restart, max_restarts=max_restarts)

    def _proc_name(member: ShardMember) -> str:
        if member.is_primary:
            return f"shard{member.shard}"
        return f"shard{member.shard}r{member.replica}"

    for member in rplan.members:
        argv = base + [
            "serve-shard", *cfg_argv,
            "--shards", str(n_shards),
            "--strategy", strategy,
            "--listen", f"{host}:{member_ports[member]}",
            "--timeout", str(timeout),
        ]
        if member.is_primary:
            argv += ["--shard-id", str(member.shard)]
        elif member.replica == 1:
            argv += ["--standby-of", str(member.shard)]
        else:
            argv += [
                "--shard-id", str(member.shard),
                "--replica", str(member.replica),
            ]
        if durable_root is not None:
            argv += [
                "--durable-dir",
                os.path.join(durable_root, _proc_name(member)),
            ]
        for index in range(1, n + 1):
            argv += ["--source", f"{index}={host}:{source_ports[index]}"]
        supervisor.launch(
            _proc_name(member),
            argv,
            restartable=durable_root is not None and member.is_primary,
            standby_for=(
                None if member.is_primary else f"shard{member.shard}"
            ),
        )
    for index in range(1, n + 1):
        argv = base + [
            "serve-source", *cfg_argv,
            "--index", str(index),
            "--listen", f"{host}:{source_ports[index]}",
            "--linger", str(linger),
            "--timeout", str(timeout),
        ]
        for member in member_fanout_by_name.get(primary.name_of(index), ()):
            key = (
                str(member.shard)
                if member.is_primary
                else f"{member.shard}r{member.replica}"
            )
            argv += ["--shard", f"{key}={host}:{member_ports[member]}"]
        supervisor.launch(f"source{index}", argv)
    return supervisor


def launch_sharded_processes(
    config: ExperimentConfig,
    n_shards: int,
    time_scale: float = 0.01,
    strategy: str = "hash",
    host: str = "127.0.0.1",
    timeout: float = 300.0,
    linger: float = 1.0,
    durable_root: str | None = None,
    restart: str = "never",
    max_restarts: int = 2,
    replicas: int = 0,
) -> dict[str, str]:
    """Run one sharded deployment as real OS processes, supervised.

    Launches the fleet via :func:`build_sharded_supervisor`, waits for it
    to exit cleanly, and returns each member's captured stdout.  Shards
    verify their views before exiting, so a clean fleet exit means every
    view passed its claimed consistency level; any member exiting
    non-zero (and not absorbed by the restart or failover policy) kills
    the rest and raises :class:`ShardCrashed`.
    """
    supervisor = build_sharded_supervisor(
        config,
        n_shards,
        time_scale=time_scale,
        strategy=strategy,
        host=host,
        timeout=timeout,
        linger=linger,
        durable_root=durable_root,
        restart=restart,
        max_restarts=max_restarts,
        replicas=replicas,
    )
    return supervisor.wait(timeout=timeout)


__all__ = [
    "CLAIMED_LEVELS",
    "CLEAN_FAILURE_EXIT",
    "FailoverSpec",
    "ShardCrashed",
    "ShardNode",
    "ShardSupervisor",
    "ShardVerificationError",
    "ShardedRunResult",
    "ShardedSourceFront",
    "ShardedSourceNode",
    "build_shard_warehouse",
    "build_sharded_supervisor",
    "free_port",
    "launch_sharded_processes",
    "run_sharded",
    "run_sharded_async",
    "seed_history_from_workload",
    "serve_shard_async",
    "serve_sharded_source_async",
]
