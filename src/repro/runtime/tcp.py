"""TCP transport: length-prefixed frames with FIFO sessions.

Wire format
-----------
Every frame is a 4-byte big-endian length followed by a frame body: a
UTF-8 JSON object on codec <= 2 sessions, a :mod:`repro.runtime.binwire`
document on codec >= 3 sessions.  The length's most significant bit flags
a zlib-compressed body (large snapshot payloads shrink by an order of
magnitude); the remaining 31 bits are the on-wire body length.  The
compression threshold applies to the serialized body whichever serializer
produced it.  Five frame types flow on a connection::

    {"t": "hello",   "channel": name, "next": seq,
     "codec": max_version, "epoch": e?}              sender -> receiver
    {"t": "welcome", "expect": seq, "codec": v}      receiver -> sender
    {"t": "msg",     "seq": n, "m": envelope}        sender -> receiver
    {"t": "mb",      "frames": [{"seq", "m"}, ...]}  sender -> receiver
    {"t": "ack",     "seq": n}                       receiver -> sender

``codec`` negotiates the codec version (see :mod:`repro.runtime.codec`):
each side advertises the highest version it speaks and both use the
minimum, so either endpoint may be upgraded first.  A pre-negotiation
peer omits the key and is treated as version 1, which also disables the
``mb`` (message batch) framing and compression -- the fast path is taken
only when both ends opted in.  Handshake and ack frames are always JSON
(they predate negotiation or must be readable by any peer); only
``msg``/``mb`` bodies switch serializers, and :func:`read_frame` sniffs
the body's first byte (binwire's magic ``0xB3`` can never start compact
JSON), so decode stays downgrade-safe without any frame-level flag.

The **fast path**: protocol messages accepted by ``send`` while the
writer task was busy are flushed as one ``mb`` frame -- one JSON
serialization, one ``write``, one ``drain()``, one ack for the whole
batch -- so a k-update burst costs O(1) syscalls instead of O(k).
Encoding happens at write time (not in ``send``), after the codec
version is known.

Session guarantees
------------------
A *channel* is one direction of the paper's source<->warehouse link; its
name (e.g. ``"R2->wh"``) identifies it across reconnects.  The sender
numbers messages 1, 2, 3, ... and keeps everything unacknowledged in a
bounded window; the receiver tracks the next expected sequence number *per
channel name* (surviving reconnects), acknowledges each frame cumulatively
and drops duplicates.  After a connection failure the sender reconnects
(bounded retries, exponential backoff, connect/read timeouts), says hello,
learns the receiver's ``expect`` and resends exactly the suffix the
receiver has not seen.  The result is exactly-once, in-order delivery per
channel -- the reliable FIFO assumption of Section 2 -- on top of an
unreliable connection lifecycle.

Crash-restart epochs
--------------------
Sequence state on both ends normally outlives connections but not
processes.  Durability (see :mod:`repro.durability`) restores the
*protocol* state after a crash; the transport resynchronizes with two
small extensions, both wire-compatible with peers that predate them:

* a restarted **sender** numbers frames from 1 again and announces a
  higher ``epoch`` in its hello (the durable generation).  The listener
  tracks the highest epoch seen per channel and, on an increase, resets
  its expected sequence to the hello's ``next``.  A hello with an epoch
  *below* the highest seen is a stale pre-crash sender and is rejected.
* a restarted **listener** (``adopt_next=True``) lost its expect
  counters.  A healthy sender's ``next`` (its oldest unacked frame) is
  normally at or below the receiver's expect; seeing ``next`` *above*
  expect proves the counter was lost, and the listener adopts ``next``.
  Frames below it were acked pre-crash -- and updates are only acked
  after the durability layer logged them, so nothing adopted-over is
  lost.
"""

from __future__ import annotations

import asyncio
import json
import struct
import time
import zlib
from collections import deque
from dataclasses import dataclass

from repro.runtime import binwire
from repro.runtime.codec import CODEC_VERSION_DEFAULT, CODEC_VERSION_MAX, WireCodec
from repro.runtime.errors import (
    TransportOverflowError,
    TransportRetriesExceeded,
    WireProtocolError,
)
from repro.runtime.kernel import AsyncRuntime
from repro.runtime.transport import RuntimeChannel
from repro.simulation.channel import Message
from repro.simulation.mailbox import Mailbox
from repro.simulation.metrics import MetricsCollector

_HEADER = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024
_COMPRESSED_FLAG = 0x80000000


async def read_frame(
    reader: asyncio.StreamReader, timeout: float | None = None
) -> dict:
    """Read one length-prefixed frame (raises on EOF/oversize/timeout).

    A set MSB in the length prefix marks a zlib-compressed body; readers
    always accept both, so compression needs no negotiation of its own.
    The (decompressed) body's first byte picks the deserializer -- binwire
    magic or JSON -- so a reader accepts frames from any codec version.
    """

    async def _read() -> dict:
        header = await reader.readexactly(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        compressed = bool(length & _COMPRESSED_FLAG)
        length &= ~_COMPRESSED_FLAG
        if length > _MAX_FRAME:
            raise WireProtocolError(f"frame of {length} bytes exceeds limit")
        body = await reader.readexactly(length)
        try:
            if compressed:
                body = zlib.decompress(body)
            if binwire.is_binary(body):
                return binwire.loads(body)
            return json.loads(body)
        except (json.JSONDecodeError, binwire.BinwireError, zlib.error) as exc:
            raise WireProtocolError(f"undecodable frame: {exc}") from exc

    if timeout is None:
        return await _read()
    return await asyncio.wait_for(_read(), timeout)


def write_frame(
    writer: asyncio.StreamWriter,
    obj: dict,
    compress_min: int | None = None,
    binary: bool = False,
) -> tuple[int, int]:
    """Serialize one frame onto ``writer`` (caller drains).

    ``binary=True`` serializes through :mod:`repro.runtime.binwire` (the
    codec v3 body format) instead of JSON.  Bodies of at least
    ``compress_min`` bytes are zlib-compressed and flagged via the length
    prefix's MSB; ``None`` disables compression.  Returns ``(raw_len,
    wire_len)`` -- serialized body bytes before and after compression --
    for the caller's byte accounting.
    """
    if binary:
        body = binwire.dumps(obj)
    else:
        body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    raw_len = len(body)
    if compress_min is not None and raw_len >= compress_min:
        packed = zlib.compress(body, 1)
        if len(packed) < raw_len:
            writer.write(_HEADER.pack(len(packed) | _COMPRESSED_FLAG) + packed)
            return raw_len, len(packed)
    writer.write(_HEADER.pack(raw_len) + body)
    return raw_len, raw_len


@dataclass(frozen=True)
class TcpChannelConfig:
    """Knobs for one outbound TCP channel (times in wall seconds)."""

    connect_timeout: float = 5.0
    read_timeout: float = 30.0
    max_retries: int = 8
    backoff_initial: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    max_queue: int = 1024
    #: Advertised codec version (handshake settles on the pairwise min).
    #: Also caps what this node's *listener* welcomes, so it is a true
    #: speak-at-most knob in both directions.
    codec_version: int = CODEC_VERSION_DEFAULT
    #: Compress frame bodies at least this large (None disables).  Only
    #: effective once the peer negotiated codec >= 2.
    compress_min_bytes: int | None = 16 * 1024


async def probe_peer(
    host: str,
    port: int,
    config: TcpChannelConfig | None = None,
    what: str = "peer",
) -> None:
    """Verify a peer listener is reachable before serving against it.

    Outbound :class:`TcpChannel` sessions dial lazily -- a serve-mode
    process whose peer is down otherwise waits forever (warehouse with a
    dead source) or drains an empty schedule and exits 0 (source with a
    dead warehouse).  This probe applies the channel's own retry budget
    and backoff up front: connect, immediately close (the listener treats
    a frameless connection as an ordinary disconnect), and raise
    :class:`TransportRetriesExceeded` when every attempt fails.
    """
    cfg = config if config is not None else TcpChannelConfig()
    delay = cfg.backoff_initial
    last_error: Exception | None = None
    for _ in range(max(1, cfg.max_retries)):
        try:
            _, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), cfg.connect_timeout
            )
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass
            return
        except (OSError, asyncio.TimeoutError) as exc:
            last_error = exc
            await asyncio.sleep(delay)
            delay = min(delay * cfg.backoff_factor, cfg.backoff_max)
    raise TransportRetriesExceeded(
        f"{what}: {host}:{port} unreachable after {max(1, cfg.max_retries)}"
        f" attempts ({last_error})"
    )


class TcpChannel(RuntimeChannel):
    """Outbound half of a FIFO session; duck-types the simulator Channel.

    ``send`` is synchronous (called from protocol code); a writer task owns
    the connection: it dials with bounded retry and exponential backoff,
    performs the hello/welcome handshake, streams pending frames and
    processes acknowledgements.  The retry budget refills after every
    successful handshake, so a long-lived channel survives any number of
    *separate* outages while still failing fast on a dead peer.
    """

    def __init__(
        self,
        runtime: AsyncRuntime,
        name: str,
        host: str,
        port: int,
        codec: WireCodec,
        metrics: MetricsCollector | None = None,
        config: TcpChannelConfig | None = None,
        epoch: int = 0,
    ):
        cfg = config if config is not None else TcpChannelConfig()
        super().__init__(runtime, name, metrics, cfg.max_queue)
        self.host = host
        self.port = port
        self.codec = codec
        self.config = cfg
        #: crash-restart incarnation; a nonzero epoch tells the listener
        #: this sender restarted and renumbered its frames from 1.
        self.epoch = epoch
        self._next_seq = 1
        #: messages accepted but not yet written on the current connection;
        #: encoding is deferred to write time, after codec negotiation.
        self._pending: deque[tuple[int, Message]] = deque()
        #: messages written but not yet acknowledged
        self._inflight: deque[tuple[int, Message]] = deque()
        self._wake = asyncio.Event()
        self._closed = False
        self._session_established = False
        #: row-encoding version agreed with the peer (1 until welcomed).
        self.negotiated_codec = 1
        self.reconnects = 0
        self.batches_sent = 0
        #: Optional dead-peer tolerance hook.  Called with the
        #: :class:`TransportRetriesExceeded` when the retry budget is
        #: exhausted; returning True marks the channel dead (queued
        #: frames dropped, future sends ignored) instead of failing the
        #: runtime -- how a source tolerates a crashed standby whose
        #: replica group still has a live member.
        self.on_give_up = None
        self.dead = False
        self._task = runtime.create_task(self._run(), f"tcp-writer:{name}")

    # ------------------------------------------------------------------
    # The Channel contract
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        if self.dead:
            return
        if self.queued >= self.max_queue:
            raise TransportOverflowError(
                f"channel {self.name!r}: bounded send window full"
                f" ({self.max_queue} frames); pace the producer with drain()"
            )
        self._account(message)
        self._pending.append((self._next_seq, message))
        self._next_seq += 1
        self._wake.set()

    @property
    def idle(self) -> bool:
        return not self._pending and not self._inflight

    @property
    def queued(self) -> int:
        return len(self._pending) + len(self._inflight)

    async def aclose(self) -> None:
        self._closed = True
        self._wake.set()

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        cfg = self.config
        retries = 0
        backoff = cfg.backoff_initial
        while not self._closed:
            if self.idle:
                # Dial lazily: a channel with nothing to send holds no
                # connection, so peers may come up (and go away) in any
                # order without burning this channel's retry budget.
                self._wake.clear()
                if self.idle and not self._closed:
                    await self._wake.wait()
                continue
            try:
                await self._session()
            except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError):
                if self._session_established:
                    # The budget bounds attempts per outage, not per
                    # lifetime: refill it after every completed handshake.
                    retries = 0
                    backoff = cfg.backoff_initial
                retries += 1
                if retries > cfg.max_retries:
                    error = TransportRetriesExceeded(
                        f"channel {self.name!r}: {self.host}:{self.port}"
                        f" unreachable after {cfg.max_retries} retries"
                    )
                    if self.on_give_up is not None and self.on_give_up(error):
                        self.dead = True
                        self._pending.clear()
                        self._inflight.clear()
                        return
                    raise error from None
                self.reconnects += 1
                await asyncio.sleep(backoff)
                backoff = min(backoff * cfg.backoff_factor, cfg.backoff_max)

    async def _session(self) -> None:
        """One connection: handshake, then stream frames until it breaks."""
        cfg = self.config
        self._session_established = False
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), cfg.connect_timeout
        )
        try:
            oldest = self._inflight[0][0] if self._inflight else (
                self._pending[0][0] if self._pending else self._next_seq
            )
            hello = {
                "t": "hello",
                "channel": self.name,
                "next": oldest,
                "codec": cfg.codec_version,
            }
            if self.epoch:
                hello["epoch"] = self.epoch
            write_frame(writer, hello)
            await writer.drain()
            welcome = await read_frame(reader, cfg.read_timeout)
            if welcome.get("t") != "welcome":
                raise WireProtocolError(
                    f"channel {self.name!r}: expected welcome, got {welcome!r}"
                )
            self._rewind(int(welcome["expect"]))
            # Settle on the pairwise-minimum codec version; a peer that
            # predates negotiation omits the key and gets version 1.
            self.negotiated_codec = max(
                1, min(cfg.codec_version, int(welcome.get("codec", 1)))
            )
            if self.metrics is not None:
                self.metrics.increment(
                    f"wire_sessions_v{self.negotiated_codec}"
                )
            self._session_established = True

            # A plain task (not runtime-guarded): a dropped connection here
            # is a *recoverable* event consumed by the writer's retry loop,
            # not a fatal runtime failure.
            ack_task = asyncio.ensure_future(self._read_acks(reader))
            try:
                while not self._closed:
                    self._write_pending(writer)
                    await writer.drain()
                    if ack_task.done():
                        # Surface connection loss noticed by the ack reader.
                        ack_task.result()
                        raise ConnectionResetError("ack stream ended")
                    self._wake.clear()
                    if not self._pending:
                        await self._wait_for_work(ack_task)
            finally:
                ack_task.cancel()
                try:
                    await ack_task
                except (asyncio.CancelledError, Exception):
                    pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    def _write_pending(self, writer: asyncio.StreamWriter) -> None:
        """Flush every accepted message; the caller drains once.

        On a codec>=2 session a multi-message burst leaves as a single
        ``mb`` frame -- one serialization, one write, one ack.  Codec>=3
        sessions serialize frame bodies through binwire instead of JSON.
        """
        if not self._pending:
            return
        version = self.negotiated_codec
        binary = version >= 3
        compress_min = (
            self.config.compress_min_bytes if version >= 2 else None
        )
        burst: list[tuple[int, Message]] = []
        while self._pending:
            entry = self._pending.popleft()
            self._inflight.append(entry)
            burst.append(entry)
        started = time.perf_counter_ns()
        raw_total = wire_total = 0
        if version >= 2 and len(burst) > 1:
            frames = [
                {"seq": seq, "m": self.codec.encode_message(message, version)}
                for seq, message in burst
            ]
            raw_total, wire_total = write_frame(
                writer, {"t": "mb", "frames": frames}, compress_min, binary
            )
            self.batches_sent += 1
        else:
            for seq, message in burst:
                frame = {
                    "t": "msg",
                    "seq": seq,
                    "m": self.codec.encode_message(message, version),
                }
                raw, wire = write_frame(writer, frame, compress_min, binary)
                raw_total += raw
                wire_total += wire
        if self.metrics is not None:
            self.metrics.increment("wire_bytes_precompress", raw_total)
            self.metrics.increment("wire_bytes_total", wire_total)
            self.metrics.increment(
                "encode_ns", time.perf_counter_ns() - started
            )

    async def _wait_for_work(self, ack_task: asyncio.Task) -> None:
        """Sleep until there is something to send or the connection died."""
        wake = asyncio.ensure_future(self._wake.wait())
        done, _ = await asyncio.wait(
            {wake, ack_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if not wake.done():
            wake.cancel()
        if ack_task in done:
            ack_task.result()
            raise ConnectionResetError("connection closed by peer")

    async def _read_acks(self, reader: asyncio.StreamReader) -> None:
        while True:
            frame = await read_frame(reader, self.config.read_timeout)
            if frame.get("t") != "ack":
                raise WireProtocolError(
                    f"channel {self.name!r}: unexpected frame {frame!r}"
                )
            acked = int(frame["seq"])
            while self._inflight and self._inflight[0][0] <= acked:
                self._inflight.popleft()

    def _rewind(self, expect: int) -> None:
        """Align the send window with the receiver's expected sequence."""
        retransmit = [entry for entry in self._inflight if entry[0] >= expect]
        self._inflight.clear()
        for entry in reversed(retransmit):
            self._pending.appendleft(entry)


class ChannelListener:
    """Inbound endpoint: accepts FIFO sessions for registered channels.

    Per-channel receive state (next expected sequence number) lives here,
    keyed by channel name, so it survives any number of reconnects by the
    sending side.  ``adopt_next=True`` marks a listener whose process was
    restarted from durable state: its expect counters restarted at 1, so
    a healthy sender's hello ``next`` above expect is adopted rather than
    treated as a gap (see the module docstring's crash-restart notes).
    """

    def __init__(
        self,
        runtime: AsyncRuntime,
        host: str = "127.0.0.1",
        port: int = 0,
        adopt_next: bool = False,
        codec_version_max: int = CODEC_VERSION_MAX,
    ):
        self.runtime = runtime
        self.host = host
        self.port = port
        self.adopt_next = adopt_next
        #: highest codec version this node welcomes (inbound direction of
        #: the ``--codec-version`` knob; decode still accepts everything).
        self.codec_version_max = max(1, min(CODEC_VERSION_MAX, codec_version_max))
        self._registrations: dict[str, tuple[Mailbox, WireCodec]] = {}
        self._expect: dict[str, int] = {}
        #: highest crash-restart epoch seen per channel.
        self._epochs: dict[str, int] = {}
        self._server: asyncio.AbstractServer | None = None
        self.connections_accepted = 0
        #: wall clock (time.monotonic) of the last frame handled; lets a
        #: serving process linger until its peers have gone quiet.
        self.last_frame_wall = 0.0

    # ------------------------------------------------------------------
    def register(self, channel: str, destination: Mailbox, codec: WireCodec) -> None:
        """Accept frames for ``channel`` and deliver them to ``destination``."""
        self._registrations[channel] = (destination, codec)
        self._expect.setdefault(channel, 1)

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        name = "?"
        try:
            hello = await read_frame(reader, timeout=30.0)
            if hello.get("t") != "hello":
                raise WireProtocolError(f"expected hello, got {hello!r}")
            name = hello.get("channel", "?")
            if name not in self._registrations:
                raise WireProtocolError(f"unknown channel {name!r}")
            self.connections_accepted += 1
            destination, codec = self._registrations[name]
            epoch = int(hello.get("epoch", 0))
            known = self._epochs.get(name, 0)
            announced = int(hello.get("next", 1))
            if epoch > known:
                # The sender restarted and renumbered: realign with it.
                self._epochs[name] = epoch
                self._expect[name] = announced
            elif epoch < known:
                raise WireProtocolError(
                    f"channel {name!r}: stale epoch {epoch}"
                    f" (highest seen {known})"
                )
            elif self.adopt_next and announced > self._expect[name]:
                # Our expect counter restarted below the sender's oldest
                # unacked frame; everything below was acked (and logged)
                # before the crash.
                self._expect[name] = announced
            write_frame(
                writer,
                {
                    "t": "welcome",
                    "expect": self._expect[name],
                    "codec": max(
                        1, min(self.codec_version_max, int(hello.get("codec", 1)))
                    ),
                },
            )
            await writer.drain()
            while True:
                frame = await read_frame(reader)
                self.last_frame_wall = time.monotonic()
                kind = frame.get("t")
                if kind == "msg":
                    entries = (frame,)
                elif kind == "mb":
                    entries = frame["frames"]
                else:
                    raise WireProtocolError(f"unexpected frame {frame!r}")
                for entry in entries:
                    seq = int(entry["seq"])
                    expect = self._expect[name]
                    if seq > expect:
                        raise WireProtocolError(
                            f"channel {name!r}: sequence gap (got {seq},"
                            f" expected {expect})"
                        )
                    if seq == expect:  # not a duplicate from a resend
                        message = codec.decode_message(entry["m"])
                        message.delivered_at = self.runtime.now
                        destination.put(message)
                        self._expect[name] = expect + 1
                # One cumulative ack per wire frame, batched or not.
                write_frame(writer, {"t": "ack", "seq": self._expect[name] - 1})
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, asyncio.TimeoutError):
            pass  # sender reconnects and resumes the session
        except asyncio.CancelledError:
            pass  # event loop shutdown cancels handler tasks
        except WireProtocolError as exc:
            self.runtime.record_failure(exc)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    def __repr__(self) -> str:
        return (
            f"ChannelListener({self.host}:{self.port},"
            f" channels={sorted(self._registrations)})"
        )


__all__ = [
    "ChannelListener",
    "TcpChannel",
    "TcpChannelConfig",
    "probe_peer",
    "read_frame",
    "write_frame",
]
