"""Transport channels: the runtime's stand-ins for simulator channels.

A transport channel duck-types :class:`repro.simulation.channel.Channel`:
protocol code calls the synchronous ``send(message)`` and the channel
guarantees reliable FIFO delivery into the destination mailbox -- the one
communication assumption the paper's correctness argument needs
(Section 2).  Two implementations ship:

* :class:`LocalChannel` -- an in-process ``asyncio.Queue`` with a single
  delivery task (FIFO by construction); and
* :class:`repro.runtime.tcp.TcpChannel` -- length-prefixed JSON frames over
  a TCP session with sequence numbers, acknowledgements and reconnect.

Both apply **backpressure** with a bounded send queue: ``send`` raises
:class:`TransportOverflowError` when the bound is hit, and pacing producers
``await channel.drain()`` to stay below the high-water mark (protocol
traffic is self-limiting; only workload injectors need to pace).
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

from repro.runtime.errors import TransportOverflowError
from repro.simulation.channel import Message
from repro.simulation.metrics import MetricsCollector

if TYPE_CHECKING:
    from repro.runtime.kernel import AsyncRuntime
    from repro.simulation.mailbox import Mailbox


class RuntimeChannel:
    """Shared accounting for transport channels (metrics + FIFO contract)."""

    def __init__(
        self,
        runtime: "AsyncRuntime",
        name: str,
        metrics: MetricsCollector | None = None,
        max_queue: int = 1024,
    ):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.runtime = runtime
        self.name = name
        self.metrics = metrics
        self.max_queue = max_queue
        self.sent_count = 0

    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Enqueue ``message`` for reliable FIFO delivery (synchronous)."""
        raise NotImplementedError

    @property
    def idle(self) -> bool:
        """True when no sent message is still queued or in flight."""
        raise NotImplementedError

    @property
    def queued(self) -> int:
        """Messages accepted by ``send`` but not yet delivered/acked."""
        raise NotImplementedError

    async def drain(self, below: int | None = None) -> None:
        """Wait until the send queue holds fewer than ``below`` messages.

        Defaults to half the bound -- the pacing hook for producers that
        could otherwise outrun the network.
        """
        limit = below if below is not None else max(1, self.max_queue // 2)
        while self.queued >= limit:
            self.runtime.check()
            await asyncio.sleep(0.001)

    async def flush(self, timeout: float = 30.0) -> None:
        """Wait (wall seconds) until every accepted message was delivered."""
        await self.runtime.wait_until(
            lambda: self.idle, timeout=timeout, stable_polls=1
        )

    async def aclose(self) -> None:
        """Release transport resources (idempotent)."""

    # ------------------------------------------------------------------
    def _account(self, message: Message) -> None:
        message.sent_at = self.runtime.now
        self.sent_count += 1
        if self.metrics is not None:
            self.metrics.record_message(
                self.name, message.kind, message.payload_rows()
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, sent={self.sent_count})"


class LocalChannel(RuntimeChannel):
    """In-process transport: one bounded queue, one delivery task.

    ``delivery_delay`` (virtual units) optionally models link latency --
    useful to widen the interference window in demos without a network.
    """

    def __init__(
        self,
        runtime: "AsyncRuntime",
        name: str,
        destination: "Mailbox",
        metrics: MetricsCollector | None = None,
        max_queue: int = 1024,
        delivery_delay: float = 0.0,
    ):
        super().__init__(runtime, name, metrics, max_queue)
        self.destination = destination
        self.delivery_delay = delivery_delay
        self._undelivered = 0
        self._queue: asyncio.Queue[Message] = asyncio.Queue(maxsize=max_queue)
        self._task = runtime.create_task(self._deliver_loop(), f"deliver:{name}")

    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        self._account(message)
        try:
            self._queue.put_nowait(message)
        except asyncio.QueueFull:
            raise TransportOverflowError(
                f"channel {self.name!r}: bounded send queue full"
                f" ({self.max_queue} messages); pace the producer with drain()"
            ) from None
        self._undelivered += 1

    @property
    def idle(self) -> bool:
        return self._undelivered == 0

    @property
    def queued(self) -> int:
        return self._undelivered

    # ------------------------------------------------------------------
    async def _deliver_loop(self) -> None:
        while True:
            message = await self._queue.get()
            if self.delivery_delay > 0:
                await self.runtime.sleep(self.delivery_delay)
            message.delivered_at = self.runtime.now
            self.destination.put(message)
            self._undelivered -= 1
            # Fast path: drain whatever else arrived this tick in one go
            # instead of paying a task wakeup per message.  FIFO order is
            # preserved -- same queue, same task.
            if self.delivery_delay <= 0:
                while True:
                    try:
                        message = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    message.delivered_at = self.runtime.now
                    self.destination.put(message)
                    self._undelivered -= 1


__all__ = ["LocalChannel", "RuntimeChannel"]
