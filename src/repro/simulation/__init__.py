"""Deterministic discrete-event simulation kernel.

The paper's setting -- ``n`` autonomous data sources, one warehouse site,
reliable FIFO channels, updates racing with incremental queries -- is
reproduced on a small SimPy-like kernel:

* :class:`~repro.simulation.kernel.Simulator` -- virtual clock + event heap.
* :class:`~repro.simulation.process.Process` -- generator-based processes
  that ``yield`` effects (:class:`~repro.simulation.process.Delay`,
  :class:`~repro.simulation.mailbox.Mailbox` gets), so protocol code reads
  like the paper's blocking pseudocode (Figures 3, 4 and 6).
* :class:`~repro.simulation.channel.Channel` -- reliable FIFO links with
  pluggable latency models; delivery order per channel is guaranteed even
  under random latencies, exactly the assumption SWEEP's local compensation
  depends on.
* :class:`~repro.simulation.metrics.MetricsCollector` and
  :class:`~repro.simulation.trace.TraceLog` -- message/byte accounting and
  structured event traces consumed by the experiment harness.

Everything is seeded and deterministic: the same configuration always
produces the same interleaving.
"""

from repro.simulation.channel import Channel, Message
from repro.simulation.errors import (
    DeadProcessError,
    MailboxOwnershipError,
    SimulationError,
    StalledSimulationError,
)
from repro.simulation.kernel import Simulator
from repro.simulation.latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    UniformLatency,
)
from repro.simulation.mailbox import Mailbox
from repro.simulation.metrics import MetricsCollector
from repro.simulation.process import Delay, Process
from repro.simulation.rng import RngRegistry
from repro.simulation.trace import TraceLog, TraceRecord

__all__ = [
    "Channel",
    "ConstantLatency",
    "DeadProcessError",
    "Delay",
    "ExponentialLatency",
    "LatencyModel",
    "Mailbox",
    "MailboxOwnershipError",
    "Message",
    "MetricsCollector",
    "Process",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "StalledSimulationError",
    "TraceLog",
    "TraceRecord",
    "UniformLatency",
]
