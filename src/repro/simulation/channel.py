"""Reliable FIFO channels between sites.

Every algorithm in the paper leans on one communication assumption
(Section 2): *"communication between each data source and the data
warehouse site is assumed to be reliable and FIFO."*  SWEEP's local
compensation is provably exact only because an update message from source
``j`` that was sent before the query answer must also arrive before it.

:class:`Channel` enforces that even under random latency models: each
message's arrival time is clamped to be no earlier than the previous
message's arrival on the same channel.  Messages are never lost, duplicated
or reordered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import TYPE_CHECKING, Any

from repro.simulation.latency import LatencyModel
from repro.simulation.metrics import MetricsCollector, estimate_size

if TYPE_CHECKING:
    from repro.simulation.kernel import Simulator
    from repro.simulation.mailbox import Mailbox

_message_ids = count(1)


@dataclass(slots=True)
class Message:
    """An envelope carried by a channel.

    ``kind`` drives metric accounting and dispatch at the receiver:
    the protocols use ``"update"``, ``"query"`` and ``"answer"``.
    """

    kind: str
    sender: str
    payload: Any
    sent_at: float = 0.0
    delivered_at: float = 0.0
    message_id: int = field(default_factory=lambda: next(_message_ids))

    def payload_rows(self) -> int:
        """Size of the payload in rows (wire-size unit of the experiments)."""
        return estimate_size(self.payload)

    def __repr__(self) -> str:
        return (
            f"Message(#{self.message_id} {self.kind} from {self.sender},"
            f" {self.payload_rows()} rows)"
        )


class Channel:
    """A one-directional, reliable, FIFO link delivering into a mailbox."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        destination: "Mailbox",
        latency: LatencyModel,
        metrics: MetricsCollector | None = None,
        enforce_fifo: bool = True,
    ):
        self.sim = sim
        self.name = name
        self.destination = destination
        self.latency = latency
        self.metrics = metrics
        self.enforce_fifo = enforce_fifo
        self._last_arrival = 0.0
        self.reorderings = 0
        self.sent_count = 0

    def send(self, message: Message) -> None:
        """Transmit ``message``; it arrives after a sampled latency.

        FIFO enforcement (the paper's channel assumption): if the sampled
        latency would overtake an earlier message on this channel, arrival
        is clamped to that message's arrival time (modelling queueing at
        the receiver).  With ``enforce_fifo=False`` -- the chaos mode used
        to demonstrate that SWEEP's correctness *depends* on FIFO --
        messages may overtake each other; ``reorderings`` counts how often
        they did.
        """
        message.sent_at = self.sim.now
        arrival = self.sim.now + self.latency.sample()
        if self.enforce_fifo:
            arrival = max(arrival, self._last_arrival)
        elif arrival < self._last_arrival:
            self.reorderings += 1
        self._last_arrival = max(arrival, self._last_arrival)
        self.sent_count += 1
        if self.metrics is not None:
            self.metrics.record_message(self.name, message.kind, message.payload_rows())

        def deliver() -> None:
            message.delivered_at = self.sim.now
            self.destination.put(message)

        self.sim.schedule_at(arrival, deliver)

    def __repr__(self) -> str:
        return f"Channel({self.name!r}, sent={self.sent_count})"


__all__ = ["Channel", "Message"]
