"""Exception types raised by the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator errors."""


class StalledSimulationError(SimulationError):
    """The event budget was exhausted before the run completed.

    Usually indicates livelock -- e.g. Nested SWEEP oscillating between two
    alternating interfering sources without the forced-termination guard.
    """


class DeadProcessError(SimulationError):
    """An effect was delivered to a process that already terminated."""


class MailboxOwnershipError(SimulationError):
    """A second process tried to wait on a single-consumer mailbox."""


class ProcessKilled(BaseException):
    """Deliberate termination of one process, not a failure.

    Raised *inside* a process frame (by a failover kill switch) to
    unwind it; :class:`~repro.simulation.process.Process` treats it like
    ``StopIteration`` -- the process finishes cleanly and the kernel
    keeps running.  Derives from ``BaseException`` so protocol-level
    ``except Exception`` handlers cannot swallow a kill.
    """
