"""The event heap: timestamped callbacks with deterministic tie-breaking."""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Ordered by ``(time, seq)``: events at equal virtual times fire in the
    order they were scheduled, which keeps runs deterministic.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A min-heap of :class:`Event` with lazily discarded cancellations."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at virtual ``time``; returns a cancellable handle."""
        event = Event(time, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Virtual time of the earliest live event, or None when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None


__all__ = ["Event", "EventQueue"]
