"""The simulator: a virtual clock driving an event heap and processes.

Typical wiring::

    sim = Simulator()
    box = Mailbox(sim, "wh-updates")

    def server():
        while True:
            msg = yield box.get()
            ...

    sim.spawn("server", server())
    sim.run()

``run()`` executes events in ``(time, insertion)`` order until the heap
empties (natural quiescence: every process is blocked on input that will
never arrive) or a budget is exceeded.  The kernel never uses wall-clock
time or unseeded randomness, so identical configurations replay
identically.
"""

from __future__ import annotations

from collections.abc import Callable, Generator

from repro.simulation.errors import StalledSimulationError
from repro.simulation.events import Event, EventQueue
from repro.simulation.process import Process


class Simulator:
    """Discrete-event executor with generator-based processes."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._processes: list[Process] = []
        self._events_executed = 0

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events fired so far (budget accounting)."""
        return self._events_executed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` ``delay`` time units from now (``delay >= 0``)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute virtual ``time`` (``>= now``)."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        return self._queue.push(time, callback)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def spawn(self, name: str, generator: Generator) -> Process:
        """Create a process from ``generator`` and start it immediately.

        The first resume happens via a zero-delay event, so processes
        spawned together begin in spawn order at the current time.
        """
        process = Process(self, name, generator)
        self._processes.append(process)
        self.schedule(0.0, process.start)
        return process

    @property
    def processes(self) -> tuple[Process, ...]:
        """All processes ever spawned (running, blocked or finished)."""
        return tuple(self._processes)

    def blocked_processes(self) -> list[Process]:
        """Processes currently waiting on a mailbox (diagnostics)."""
        return [p for p in self._processes if p.is_blocked]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event.  Returns False when the heap is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        self._events_executed += 1
        event.callback()
        return True

    def run(
        self,
        until: float | None = None,
        max_events: int = 5_000_000,
    ) -> None:
        """Run until the heap empties, or virtual time passes ``until``.

        Raises :class:`StalledSimulationError` when ``max_events`` fire
        without reaching either condition -- the livelock guard that catches
        e.g. unguarded Nested SWEEP oscillation.
        """
        executed = 0
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self._now = until
                return
            self.step()
            executed += 1
            if executed >= max_events:
                raise StalledSimulationError(
                    f"no quiescence after {executed} events (t={self._now});"
                    " livelocked algorithm?"
                )

    def run_for(self, duration: float, max_events: int = 5_000_000) -> None:
        """Run for ``duration`` units of virtual time from now."""
        self.run(until=self._now + duration, max_events=max_events)


__all__ = ["Simulator"]
