"""Pluggable channel latency models.

The paper assumes reliable FIFO channels but says nothing about timing;
concurrency windows (and hence how often compensation triggers) depend
entirely on how long queries and answers are in flight relative to update
inter-arrival times.  Experiments therefore sweep these models.

All models draw from a :class:`random.Random` supplied at construction, so
latencies come from a named seeded stream.
"""

from __future__ import annotations

import random


class LatencyModel:
    """Base class: produces a non-negative delay per message."""

    def sample(self) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        """Expected latency (used by reports to normalize time axes)."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``value`` time units."""

    def __init__(self, value: float):
        if value < 0:
            raise ValueError(f"latency must be >= 0, got {value}")
        self.value = value

    def sample(self) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"ConstantLatency({self.value})"


class UniformLatency(LatencyModel):
    """Latency uniform in ``[low, high]``."""

    def __init__(self, low: float, high: float, rng: random.Random):
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high
        self._rng = rng

    def sample(self) -> float:
        return self._rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency(LatencyModel):
    """Exponentially distributed latency with the given mean."""

    def __init__(self, mean: float, rng: random.Random):
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        self._mean = mean
        self._rng = rng

    def sample(self) -> float:
        return self._rng.expovariate(1.0 / self._mean)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"ExponentialLatency({self._mean})"


__all__ = [
    "ConstantLatency",
    "ExponentialLatency",
    "LatencyModel",
    "UniformLatency",
]
