"""Single-consumer mailboxes: the receive side of every channel.

A :class:`Mailbox` buffers delivered messages in FIFO order.  One process
at a time may wait on it with ``yield mailbox.get()``; concurrent waiters
would make delivery order ambiguous, so a second waiter raises
:class:`MailboxOwnershipError`.

Messages become visible in the exact order :meth:`put` was called, and a
waiting process is woken via a zero-delay kernel event -- never re-entered
synchronously from the sender -- which keeps causality (and hence the FIFO
reasoning SWEEP depends on) easy to audit in traces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.simulation.errors import MailboxOwnershipError

if TYPE_CHECKING:
    from repro.simulation.kernel import Simulator
    from repro.simulation.process import Process


@dataclass(frozen=True, slots=True)
class Get:
    """Effect: receive the next message from ``mailbox``."""

    mailbox: "Mailbox"


class Mailbox:
    """FIFO message buffer with at most one waiting consumer."""

    def __init__(self, sim: "Simulator", name: str):
        self.sim = sim
        self.name = name
        self._queue: deque[Any] = deque()
        self._waiter: "Process | None" = None
        self._wakeup_scheduled = False
        self._sealed = False

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def put(self, message: Any) -> None:
        """Deliver ``message``; wakes the waiting consumer, if any."""
        if self._sealed:
            return
        self._queue.append(message)
        self._maybe_wake()

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def get(self) -> Get:
        """The effect to yield: ``msg = yield mailbox.get()``."""
        return Get(self)

    def peek_all(self) -> tuple[Any, ...]:
        """Non-destructive snapshot of buffered messages.

        The warehouse's concurrent-update detection scans its update queue
        without consuming (SWEEP leaves interfering updates queued for their
        own later ViewChange).
        """
        return tuple(self._queue)

    def remove(self, message: Any) -> bool:
        """Remove the first occurrence of ``message`` (identity or equality).

        Nested SWEEP removes absorbed concurrent updates from the queue.
        Returns True when a message was removed.
        """
        for i, queued in enumerate(self._queue):
            if queued is message or queued == message:
                del self._queue[i]
                return True
        return False

    def __len__(self) -> int:
        return len(self._queue)

    def seal(self) -> None:
        """Drop everything queued and discard all future deliveries.

        A killed warehouse member's mailboxes would otherwise keep
        accumulating fanned-out frames and hold the run out of
        quiescence forever; sealing models the process being gone while
        its peers keep sending.
        """
        self._queue.clear()
        self._sealed = True

    @property
    def sealed(self) -> bool:
        return self._sealed

    # ------------------------------------------------------------------
    # Kernel plumbing
    # ------------------------------------------------------------------
    def _register_waiter(self, process: "Process") -> None:
        if self._waiter is not None and self._waiter is not process:
            raise MailboxOwnershipError(
                f"mailbox {self.name!r} already has waiter"
                f" {self._waiter.name!r}; {process.name!r} cannot wait too"
            )
        self._waiter = process
        self._maybe_wake()

    def _maybe_wake(self) -> None:
        if self._waiter is None or not self._queue or self._wakeup_scheduled:
            return
        self._wakeup_scheduled = True
        self.sim.schedule(0.0, self._deliver)

    def _deliver(self) -> None:
        self._wakeup_scheduled = False
        if self._waiter is None or not self._queue:
            return
        process = self._waiter
        self._waiter = None
        message = self._queue.popleft()
        process.resume(message)

    def __repr__(self) -> str:
        waiting = f", waiter={self._waiter.name!r}" if self._waiter else ""
        return f"Mailbox({self.name!r}, {len(self._queue)} queued{waiting})"


__all__ = ["Get", "Mailbox"]
