"""Message and scalar metric accounting for experiments.

The paper's central quantitative claims are about *message complexity*
(Table 1: O(n) for SWEEP vs O(n!) for C-Strobe) and *message size* (ECA's
compensating queries grow quadratically).  The collector therefore counts
messages and payload sizes per message kind and per channel, plus arbitrary
named counters and observations for the harness.

Payload "size" is measured in **rows** (tuples carried), the unit the
paper's size argument is about; a scalar message counts as one row.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from statistics import mean


def estimate_size(payload: object) -> int:
    """Number of rows a payload would occupy on the wire.

    Understands the engine's bags, partial views and containers; anything
    else counts as one row.
    """
    from repro.relational.incremental import PartialView
    from repro.relational.relation import BagBase

    if payload is None:
        return 1
    if isinstance(payload, BagBase):
        return max(1, payload.distinct_count)
    if isinstance(payload, PartialView):
        return max(1, payload.delta.distinct_count)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        # A binwire-serialized body measured before decode: size it by
        # its decoded row structure so both serializers agree.  Lazy
        # import -- this module sits below the runtime package.
        from repro.runtime import binwire

        if binwire.is_binary(payload):
            try:
                return estimate_size(binwire.loads(payload))
            except binwire.BinwireError:
                return 1
        return 1
    if isinstance(payload, (list, tuple, set, frozenset)):
        return max(1, sum(estimate_size(item) for item in payload))
    if isinstance(payload, dict):
        # The flat row block shared by codec v2/v3 and the durable
        # encoders: ``f`` holds rows of ``w`` columns plus their count,
        # stride ``w + 1``.  Without this case the generic dict walk
        # would count every *scalar* as a row, so the same relation
        # would measure ``arity + 1`` times larger through the flat
        # encoding than through the object it decodes back into.
        if isinstance(payload.get("f"), (list, tuple)) and "w" in payload:
            stride = int(payload["w"]) + 1
            if stride > 1:
                return max(1, len(payload["f"]) // stride)
        return max(1, sum(estimate_size(v) for v in payload.values()))
    if hasattr(payload, "payload_size"):
        return max(1, int(payload.payload_size()))
    return 1


@dataclass
class MessageStats:
    """Per-kind aggregate: message count and total rows carried."""

    count: int = 0
    rows: int = 0

    def record(self, size: int) -> None:
        self.count += 1
        self.rows += size


@dataclass
class MetricsCollector:
    """Counters, per-kind/per-channel message stats and raw observations."""

    counters: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    by_kind: dict[str, MessageStats] = field(
        default_factory=lambda: defaultdict(MessageStats)
    )
    by_channel: dict[str, MessageStats] = field(
        default_factory=lambda: defaultdict(MessageStats)
    )
    observations: dict[str, list[float]] = field(
        default_factory=lambda: defaultdict(list)
    )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_message(self, channel: str, kind: str, size: int) -> None:
        """Account one message of ``kind`` with ``size`` rows on ``channel``."""
        self.counters["messages_total"] += 1
        self.by_kind[kind].record(size)
        self.by_channel[channel].record(size)

    def increment(self, name: str, amount: int = 1) -> None:
        """Bump a named counter."""
        self.counters[name] += amount

    def observe(self, name: str, value: float) -> None:
        """Append a raw observation (latency, staleness, queue length...)."""
        self.observations[name].append(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def messages_total(self) -> int:
        """Total messages recorded on all channels."""
        return self.counters["messages_total"]

    def messages_of_kind(self, kind: str) -> int:
        """Message count for one kind (0 when never seen)."""
        return self.by_kind[kind].count if kind in self.by_kind else 0

    def rows_of_kind(self, kind: str) -> int:
        """Total payload rows for one kind."""
        return self.by_kind[kind].rows if kind in self.by_kind else 0

    def mean_observation(self, name: str) -> float | None:
        """Mean of a named observation series (None when empty)."""
        values = self.observations.get(name)
        return mean(values) if values else None

    def max_observation(self, name: str) -> float | None:
        """Max of a named observation series (None when empty)."""
        values = self.observations.get(name)
        return max(values) if values else None

    def summary(self) -> dict[str, object]:
        """A plain-dict snapshot for reports and result records."""
        return {
            "counters": dict(self.counters),
            "by_kind": {
                k: {"count": s.count, "rows": s.rows}
                for k, s in sorted(self.by_kind.items())
            },
            "by_channel": {
                k: {"count": s.count, "rows": s.rows}
                for k, s in sorted(self.by_channel.items())
            },
            "observations": {
                k: {
                    "n": len(v),
                    "mean": mean(v) if v else None,
                    "max": max(v) if v else None,
                }
                for k, v in sorted(self.observations.items())
            },
        }


__all__ = ["MetricsCollector", "MessageStats", "estimate_size"]
