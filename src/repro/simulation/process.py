"""Generator-based simulated processes and the effects they yield.

A process body is a plain Python generator.  It communicates with the
kernel by yielding *effect* objects:

* ``yield Delay(t)`` -- resume ``t`` virtual time units later.
* ``yield mailbox.get()`` -- resume when a message is available, with the
  message as the value of the ``yield`` expression.

Sub-protocols compose with ``yield from`` (the warehouse's ``ViewChange``
function is a sub-generator of its ``UpdateView`` process, exactly
mirroring the paper's Figure 4 structure).
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.simulation.errors import (
    DeadProcessError,
    ProcessKilled,
    SimulationError,
)

if TYPE_CHECKING:
    from repro.simulation.kernel import Simulator
    from repro.simulation.mailbox import Get


@dataclass(frozen=True, slots=True)
class Delay:
    """Effect: suspend the yielding process for ``duration`` virtual time."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative delay {self.duration}")


class Process:
    """A running generator, owned and resumed by the kernel."""

    def __init__(self, sim: "Simulator", name: str, generator: Generator):
        self.sim = sim
        self.name = name
        self._generator = generator
        self.finished = False
        self.failed: BaseException | None = None
        self._blocked_on: "Get | None" = None

    # ------------------------------------------------------------------
    @property
    def is_blocked(self) -> bool:
        """True while waiting on a mailbox."""
        return self._blocked_on is not None

    def start(self) -> None:
        """First resume (scheduled by :meth:`Simulator.spawn`)."""
        self._advance(None)

    def resume(self, value: Any) -> None:
        """Deliver ``value`` as the result of the pending effect."""
        if self.finished:
            raise DeadProcessError(f"process {self.name!r} already finished")
        self._blocked_on = None
        self._advance(value)

    # ------------------------------------------------------------------
    def _advance(self, value: Any) -> None:
        try:
            effect = self._generator.send(value)
        except (StopIteration, ProcessKilled):
            # ProcessKilled is a failover kill switch unwinding this one
            # process deliberately; like normal completion it must not
            # fail the kernel.
            self.finished = True
            return
        except BaseException as exc:
            self.finished = True
            self.failed = exc
            raise
        self._handle(effect)

    def _handle(self, effect: Any) -> None:
        # Imported lazily to avoid a circular module dependency.
        from repro.simulation.mailbox import Get

        if isinstance(effect, Delay):
            self.sim.schedule(effect.duration, lambda: self._advance(None))
        elif isinstance(effect, Get):
            self._blocked_on = effect
            effect.mailbox._register_waiter(self)
        else:
            self.finished = True
            raise SimulationError(
                f"process {self.name!r} yielded unsupported effect {effect!r}"
            )

    def __repr__(self) -> str:
        state = (
            "finished"
            if self.finished
            else "blocked"
            if self.is_blocked
            else "runnable"
        )
        return f"Process({self.name!r}, {state})"


__all__ = ["Delay", "Process"]
