"""Named, independently seeded random streams.

Every stochastic component of an experiment (per-source update timing, each
channel's latency, workload data generation) draws from its own named
stream.  Streams are derived from the experiment seed and the stream name
with SHA-256, so

* the same ``(seed, name)`` always yields the same sequence, and
* adding a new consumer never perturbs existing streams -- experiments stay
  reproducible across code evolution.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(seed: int, name: str) -> int:
    """A 64-bit child seed deterministically derived from ``(seed, name)``."""
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of named :class:`random.Random` streams.

    >>> reg = RngRegistry(seed=42)
    >>> a = reg.stream("source-1")
    >>> b = reg.stream("source-2")
    >>> a is reg.stream("source-1")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream called ``name`` (created and cached on first use)."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(derive_seed(self.seed, f"fork:{name}"))

    def names(self) -> list[str]:
        """Names of streams created so far (for diagnostics)."""
        return sorted(self._streams)


__all__ = ["RngRegistry", "derive_seed"]
