"""Structured event traces.

Examples and debugging want a readable account of a run: which update was
delivered when, which sweep step queried which source, where compensation
fired.  :class:`TraceLog` collects :class:`TraceRecord` entries; it can be
disabled (the default for benchmarks) at effectively zero cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced event: ``(time, actor, kind, detail)``."""

    time: float
    actor: str
    kind: str
    detail: str

    def format(self) -> str:
        return f"[t={self.time:9.3f}] {self.actor:<14} {self.kind:<18} {self.detail}"


class TraceLog:
    """An append-only, optionally disabled event log."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: list[TraceRecord] = []

    def record(self, time: float, actor: str, kind: str, detail: Any = "") -> None:
        """Append a record when tracing is enabled."""
        if not self.enabled:
            return
        self.records.append(TraceRecord(time, actor, kind, str(detail)))

    def filter(
        self, kind: str | None = None, actor: str | None = None
    ) -> list[TraceRecord]:
        """Records matching the given kind and/or actor."""
        out = self.records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if actor is not None:
            out = [r for r in out if r.actor == actor]
        return list(out)

    def format(self, limit: int | None = None) -> str:
        """Multi-line rendering of (up to ``limit``) records."""
        records = self.records if limit is None else self.records[:limit]
        lines = [r.format() for r in records]
        if limit is not None and len(self.records) > limit:
            lines.append(f"... ({len(self.records) - limit} more records)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        """Always truthy: ``if trace:`` guards presence, not emptiness."""
        return True

    def __iter__(self):
        return iter(self.records)


__all__ = ["TraceLog", "TraceRecord"]
