"""Data sources: the update & query servers of the paper's Figure 3.

Each source site stores one base relation (conceptually ``Ri`` at source
``i``, Section 2), applies local update transactions atomically, forwards
every update to the warehouse as a single message, and answers incremental
``ComputeJoin(Delta-V, R)`` queries.

* :class:`~repro.sources.base.SourceBackend` -- storage abstraction.
* :class:`~repro.sources.memory.MemoryBackend` -- bag-engine storage.
* :class:`~repro.sources.sqlite.SqliteBackend` -- sqlite3 storage; joins are
  evaluated by SQL inside the source's database.
* :class:`~repro.sources.server.DataSourceServer` -- the Figure 3 server:
  a ``ProcessQuery`` process plus update forwarding, sharing one FIFO
  channel to the warehouse (so an update sent before an answer always
  arrives before it -- the property SWEEP's compensation relies on).
* :class:`~repro.sources.central.CentralSource` -- the single-site variant
  used by ECA, holding *all* base relations.
* :class:`~repro.sources.updater.ScheduledUpdater` -- replays a generated
  update schedule against a source.
* :mod:`~repro.sources.transactions` -- source-local multi-row transactions.
"""

from repro.sources.base import SourceBackend
from repro.sources.central import CentralSource
from repro.sources.memory import MemoryBackend
from repro.sources.messages import (
    EcaQuery,
    EcaQueryTerm,
    QueryAnswer,
    QueryRequest,
    UpdateNotice,
)
from repro.sources.server import DataSourceServer
from repro.sources.sqlite import SqliteBackend
from repro.sources.transactions import Transaction, TransactionOp
from repro.sources.updater import ScheduledUpdater, ScheduledUpdate

__all__ = [
    "CentralSource",
    "DataSourceServer",
    "EcaQuery",
    "EcaQueryTerm",
    "MemoryBackend",
    "QueryAnswer",
    "QueryRequest",
    "ScheduledUpdate",
    "ScheduledUpdater",
    "SourceBackend",
    "SqliteBackend",
    "Transaction",
    "TransactionOp",
    "UpdateNotice",
]
