"""Storage abstraction behind a data source."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.relational.relation import Relation


class SourceBackend(ABC):
    """Stores one base relation and evaluates sweep-step joins against it.

    Two implementations ship: :class:`~repro.sources.memory.MemoryBackend`
    (the bag engine) and :class:`~repro.sources.sqlite.SqliteBackend`
    (a real sqlite3 database).  Both must behave identically; the test
    suite runs the same scenarios against each.
    """

    @abstractmethod
    def apply(self, delta: Delta) -> None:
        """Atomically apply an update transaction to the base relation.

        Raises if the delta deletes rows the relation does not hold -- a
        workload bug, never silently ignored.
        """

    @abstractmethod
    def snapshot(self) -> Relation:
        """A consistent copy of the current relation contents."""

    @abstractmethod
    def compute_join(self, partial: PartialView) -> PartialView:
        """The Figure 3 service: join ``partial`` with the local relation.

        The result covers this source's index in addition to ``partial``'s
        range.  Evaluation is atomic with respect to :meth:`apply`.
        """

    def close(self) -> None:
        """Release resources (sqlite connections); default is a no-op."""


__all__ = ["SourceBackend"]
