"""The centralized source used by ECA (ZGMHW95).

ECA assumes a *single* data source storing every base relation (Section 3:
"the number of data sources is limited to a single data source.  However,
the data source may store several base relations").  :class:`CentralSource`
plays that role: it applies local updates against any of its relations,
forwards them to the warehouse, and evaluates whole ECA queries -- sums of
signed join terms over the current database state -- atomically.
"""

from __future__ import annotations

from collections import defaultdict

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition
from repro.simulation.channel import Channel, Message
from repro.simulation.kernel import Simulator
from repro.simulation.mailbox import Mailbox
from repro.simulation.process import Delay
from repro.simulation.trace import TraceLog
from repro.sources.messages import EcaAnswer, EcaQuery, EcaQueryTerm, UpdateNotice


def evaluate_eca_term(
    view: ViewDefinition,
    states: dict[str, Relation],
    term: EcaQueryTerm,
) -> Delta:
    """Evaluate one signed join term against ``states``.

    Relations listed in ``term.substitutions`` are replaced by the given
    deltas; the rest are read from ``states``.  Returns a wide signed bag.
    """
    def contents(index: int):
        sub = term.substitutions.get(index)
        return sub if sub is not None else states[view.name_of(index)]

    partial = PartialView.initial(view, 1, contents(1))
    for index in range(2, view.n_relations + 1):
        partial = partial.extend(index, contents(index))
    delta = partial.delta
    if term.sign == -1:
        delta = delta.negated()
    elif term.sign != 1:
        raise ValueError(f"term sign must be +1 or -1, got {term.sign}")
    return delta


class CentralSource:
    """A single site storing all base relations of the view.

    The interface intentionally parallels
    :class:`~repro.sources.server.DataSourceServer`: ``local_update``
    commits-and-forwards, a query process services requests sequentially,
    and update notices share the FIFO channel with query answers.
    """

    def __init__(
        self,
        sim: Simulator,
        view: ViewDefinition,
        to_warehouse: Channel,
        initial: dict[str, Relation] | None = None,
        query_service_time: float = 0.0,
        trace: TraceLog | None = None,
    ):
        self.sim = sim
        self.view = view
        self.name = "central"
        self.to_warehouse = to_warehouse
        self.query_service_time = query_service_time
        self.trace = trace
        self.query_inbox = Mailbox(sim, "central-queries")
        self.states: dict[str, Relation] = {}
        for index in range(1, view.n_relations + 1):
            rel_name = view.name_of(index)
            if initial is not None and rel_name in initial:
                self.states[rel_name] = initial[rel_name].copy()
            else:
                self.states[rel_name] = Relation(view.schema_of(index))
        self._seq: dict[int, int] = defaultdict(int)
        self.updates_applied: list[UpdateNotice] = []
        self._listeners = []
        sim.spawn("central-ProcessQuery", self._process_queries())

    # ------------------------------------------------------------------
    def local_update(self, index: int, delta: Delta) -> UpdateNotice:
        """Atomically apply ``delta`` to relation ``index`` and forward it."""
        self.states[self.view.name_of(index)].apply_delta(delta)
        self._seq[index] += 1
        notice = UpdateNotice(
            source_index=index,
            seq=self._seq[index],
            delta=delta.copy(),
            applied_at=self.sim.now,
        )
        self.updates_applied.append(notice)
        for listener in self._listeners:
            listener(notice)
        if self.trace:
            self.trace.record(self.sim.now, self.name, "local-update", notice)
        self.to_warehouse.send(Message(kind="update", sender=self.name, payload=notice))
        return notice

    def add_update_listener(self, listener) -> None:
        """Register a per-update callback (consistency recording)."""
        self._listeners.append(listener)

    def snapshot(self, index: int) -> Relation:
        """Copy of relation ``index``'s current contents."""
        return self.states[self.view.name_of(index)].copy()

    def snapshot_all(self) -> dict[str, Relation]:
        """Copies of every relation, keyed by name."""
        return {name: rel.copy() for name, rel in self.states.items()}

    # ------------------------------------------------------------------
    def _process_queries(self):
        while True:
            msg = yield self.query_inbox.get()
            query: EcaQuery = msg.payload
            if self.query_service_time > 0:
                yield Delay(self.query_service_time)
            total = Delta(self.view.wide_schema)
            for term in query.terms:
                total = total.merged(evaluate_eca_term(self.view, self.states, term))
            if self.trace:
                self.trace.record(
                    self.sim.now,
                    self.name,
                    "eca-eval",
                    f"req={query.request_id} {len(query.terms)} terms"
                    f" -> {total.distinct_count} rows",
                )
            self.to_warehouse.send(
                Message(
                    kind="answer",
                    sender=self.name,
                    payload=EcaAnswer(request_id=query.request_id, delta=total),
                )
            )

    def __repr__(self) -> str:
        return f"CentralSource({self.view.n_relations} relations)"


__all__ = ["CentralSource", "evaluate_eca_term"]
