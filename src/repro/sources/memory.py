"""In-memory source storage on the bag engine."""

from __future__ import annotations

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.relational.relation import FrozenRelation, Relation
from repro.relational.view import ViewDefinition
from repro.sources.base import SourceBackend


class MemoryBackend(SourceBackend):
    """Stores the base relation as a :class:`Relation`.

    Parameters
    ----------
    view:
        The warehouse view definition (sources know the view so they can
        apply the right join conditions, as in the paper's architecture
        where the view definition is distributed with the monitors).
    index:
        This source's 1-based position in the view's relation chain.
    initial:
        Initial contents; empty when omitted.
    """

    def __init__(
        self, view: ViewDefinition, index: int, initial: Relation | None = None
    ):
        self.view = view
        self.index = index
        schema = view.schema_of(index)
        if initial is not None:
            if initial.schema.attributes != schema.attributes:
                from repro.relational.errors import SchemaError

                raise SchemaError(
                    f"initial contents schema {list(initial.schema.attributes)!r}"
                    f" does not match relation {view.name_of(index)!r}"
                )
            self._relation = initial.copy()
        else:
            self._relation = Relation(schema)
        # Index the local join columns: ComputeJoin probes become
        # O(|delta|) lookups instead of O(|relation|) scans.
        self._indexed_attrs: list[tuple[str, ...]] = []
        for cond in view.join_conditions:
            for attr in cond.attributes():
                if attr in schema and (attr,) not in self._indexed_attrs:
                    self._indexed_attrs.append((attr,))
                    self._relation.create_index((attr,))
        #: True while an outstanding snapshot shares our counts dict.
        self._snapshot_shared = False

    def apply(self, delta: Delta) -> None:
        if self._snapshot_shared:
            # Copy-on-write: the previous snapshot keeps the old counts
            # dict untouched; we move on with a fresh one (indexes rebuilt).
            fresh = Relation._from_validated(
                self._relation.schema, self._relation.as_dict()
            )
            for attrs in self._indexed_attrs:
                fresh.create_index(attrs)
            self._relation = fresh
            self._snapshot_shared = False
        self._relation.apply_delta(delta)

    def snapshot(self) -> Relation:
        """A read-only point-in-time view of the relation, O(1).

        The frozen snapshot shares the backend's counts dict until the next
        :meth:`apply`, which copies before writing.  Holders that need a
        mutable bag call ``.copy()`` on the result; mutating the snapshot
        itself raises, so callers cannot alias-mutate backend state.
        """
        self._snapshot_shared = True
        return FrozenRelation.freeze(self._relation)

    def compute_join(self, partial: PartialView) -> PartialView:
        return partial.extend(self.index, self._relation)

    def __repr__(self) -> str:
        return (
            f"MemoryBackend({self.view.name_of(self.index)!r},"
            f" {self._relation.distinct_count} rows)"
        )


__all__ = ["MemoryBackend"]
