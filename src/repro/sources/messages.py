"""Protocol payloads exchanged between sources and the warehouse.

Three payloads implement the paper's distributed protocol:

* :class:`UpdateNotice` -- a source forwards an atomically applied update.
* :class:`QueryRequest` / :class:`QueryAnswer` -- one sweep step: the
  warehouse ships the partial view change ``Delta-V``; the source returns
  ``ComputeJoin(Delta-V, R)``.

ECA's centralized queries are sums of signed join terms with some relations
replaced by update deltas (:class:`EcaQueryTerm`); their payload size is
what grows quadratically with the number of interfering updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView

_request_ids = count(1)


def next_request_id() -> int:
    """A process-wide unique id correlating answers with requests."""
    return next(_request_ids)


def ensure_request_ids_above(watermark: int) -> None:
    """Advance the request-id counter past ``watermark`` (never lowers it).

    A recovered warehouse must not reuse ids of pre-crash requests:
    transports may still redeliver the old answers.  The id floor fences
    answers to requests the checkpoint knew about; answers to requests
    issued *after* the checkpoint are fenced by the incarnation epoch
    stamped on every query (see :class:`QueryRequest`).
    """
    current = next(_request_ids)  # burns one id; the counter now exceeds it
    target = max(current + 1, watermark + 1)
    globals()["_request_ids"] = count(target)


@dataclass(slots=True)
class UpdateNotice:
    """An update applied at a source, forwarded to the warehouse.

    ``seq`` is the per-source sequence number (1-based) of the update;
    ``delivery_seq`` is stamped by the warehouse dispatcher with the global
    delivery order, which defines the total order SWEEP materializes.
    """

    source_index: int
    seq: int
    delta: Delta
    applied_at: float = 0.0
    delivery_seq: int | None = None
    delivered_at: float = 0.0
    #: Global-transaction tagging (update type 3 of Section 2): parts of
    #: one transaction share a ``txn_id`` and carry the total part count.
    txn_id: str | None = None
    txn_total: int = 0

    def payload_size(self) -> int:
        return max(1, self.delta.distinct_count)

    def __repr__(self) -> str:
        return (
            f"UpdateNotice(src={self.source_index}, seq={self.seq},"
            f" {self.delta.distinct_count} rows)"
        )


#: ``txn_id`` prefix marking a shard-rebalance fence frame.  A fence is a
#: regular :class:`UpdateNotice` with an **empty** delta whose ``seq`` is
#: the sending source's boundary position -- it rides the per-(source,
#: member) update channel so FIFO places it exactly between the pre- and
#: post-boundary updates, and every wire codec carries it unchanged.
REBALANCE_FENCE_PREFIX = "__rebalance_fence__"


def make_rebalance_fence(
    source_index: int,
    boundary: int,
    delta: Delta,
    epoch: int,
    applied_at: float = 0.0,
) -> UpdateNotice:
    """Build the fence frame posted at a source's boundary ``seq``.

    ``delta`` must be an empty delta of the source's schema (the fence
    changes nothing; it only marks a position in the FIFO stream).
    """
    return UpdateNotice(
        source_index=source_index,
        seq=boundary,
        delta=delta,
        applied_at=applied_at,
        txn_id=f"{REBALANCE_FENCE_PREFIX}:{epoch}",
    )


def is_rebalance_fence(notice: object) -> bool:
    """True when ``notice`` is a rebalance fence frame."""
    txn_id = getattr(notice, "txn_id", None)
    return isinstance(txn_id, str) and txn_id.startswith(
        REBALANCE_FENCE_PREFIX
    )


def rebalance_fence_epoch(notice: UpdateNotice) -> int:
    """The fencing epoch a fence frame was posted under."""
    if not is_rebalance_fence(notice):
        raise ValueError(f"not a rebalance fence: {notice!r}")
    return int(notice.txn_id.rsplit(":", 1)[1])


@dataclass(slots=True)
class QueryRequest:
    """One sweep step: extend ``partial`` with the receiving source's relation.

    ``epoch`` is the warehouse incarnation that issued the request (0 for
    non-durable runs); sources echo it into the answer, and a recovered
    warehouse drops answers from earlier incarnations -- the request-id
    watermark alone cannot fence answers to queries issued *after* the
    last checkpoint, whose ids the durable state never saw.
    """

    request_id: int
    partial: PartialView
    target_index: int
    epoch: int = 0

    def payload_size(self) -> int:
        return max(1, self.partial.delta.distinct_count)


@dataclass(slots=True)
class QueryAnswer:
    """The source's reply to a :class:`QueryRequest`."""

    request_id: int
    partial: PartialView
    epoch: int = 0

    def payload_size(self) -> int:
        return max(1, self.partial.delta.distinct_count)


@dataclass(slots=True)
class MultiQueryRequest:
    """One sweep step on behalf of several views at once.

    The multi-view warehouse batches the partial view changes of all its
    views into a single message per source per update, keeping message
    *count* independent of the number of maintained views (payload rows
    still scale with the views).
    """

    request_id: int
    partials: list[PartialView]
    target_index: int
    epoch: int = 0

    def payload_size(self) -> int:
        return max(1, sum(p.delta.distinct_count for p in self.partials))


@dataclass(slots=True)
class MultiQueryAnswer:
    """Per-view answers to a :class:`MultiQueryRequest` (same order)."""

    request_id: int
    partials: list[PartialView]
    epoch: int = 0

    def payload_size(self) -> int:
        return max(1, sum(p.delta.distinct_count for p in self.partials))


@dataclass(slots=True)
class SnapshotRequest:
    """Ask a source for its full current contents (recompute baseline)."""

    request_id: int
    epoch: int = 0

    def payload_size(self) -> int:
        return 1


@dataclass(slots=True)
class SnapshotAnswer:
    """Full relation contents in reply to a :class:`SnapshotRequest`.

    The contents travel in one of two forms: ``relation`` (materialized,
    the original full-state transfer) or ``rows`` (codec-v2 flat rows
    with an explicit arity, shared with the durability checkpoint
    encoder -- see :mod:`repro.durability.encoding`).  Receivers use
    ``snapshot_relation`` / ``snapshot_delta`` from that module to accept
    either form.
    """

    request_id: int
    source_index: int
    relation: "object | None" = None  # Relation; typed loosely (import cycle)
    rows: dict | None = None  # {"f": [...], "w": arity} flat encoding
    epoch: int = 0

    def payload_size(self) -> int:
        if self.relation is not None:
            return max(1, self.relation.distinct_count)
        if self.rows is not None:
            stride = int(self.rows.get("w", 0)) + 1
            if stride > 1:
                return max(1, len(self.rows["f"]) // stride)
        return 1


@dataclass(slots=True)
class PositionRequest:
    """Ask a source how far its update stream has advanced.

    A recovered warehouse holds replayed (WAL-logged but uninstalled)
    updates *parked* until the source's state provably covers them --
    SWEEP's compensation is only exact when every update reflected in a
    query answer is in the view, the batch, or the queue.  The position
    answer is how a source that kept its state across the warehouse's
    crash (and therefore never resends acknowledged updates) confirms
    that coverage.
    """

    request_id: int
    epoch: int = 0

    def payload_size(self) -> int:
        return 1


@dataclass(slots=True)
class PositionAnswer:
    """The source's current update ``seq`` in reply to a :class:`PositionRequest`."""

    request_id: int
    source_index: int
    position: int
    epoch: int = 0

    def payload_size(self) -> int:
        return 1


@dataclass(slots=True)
class EcaQueryTerm:
    """One signed join term of an ECA query.

    ``substitutions`` maps 1-based relation indices to the delta that stands
    in for that relation; unsubstituted relations are read from the central
    source's current state.  ``sign`` is +1 or -1 (compensation subtracts).
    """

    substitutions: dict[int, Delta]
    sign: int = 1

    def payload_size(self) -> int:
        return max(1, sum(d.distinct_count for d in self.substitutions.values()))


@dataclass(slots=True)
class EcaQuery:
    """A (possibly compensating) ECA query: a sum of signed join terms."""

    request_id: int
    terms: list[EcaQueryTerm] = field(default_factory=list)

    def payload_size(self) -> int:
        return max(1, sum(t.payload_size() for t in self.terms))


@dataclass(slots=True)
class EcaAnswer:
    """The central source's evaluation of an :class:`EcaQuery` (wide rows)."""

    request_id: int
    delta: Delta

    def payload_size(self) -> int:
        return max(1, self.delta.distinct_count)


__all__ = [
    "EcaAnswer",
    "EcaQuery",
    "EcaQueryTerm",
    "MultiQueryAnswer",
    "MultiQueryRequest",
    "PositionAnswer",
    "PositionRequest",
    "QueryAnswer",
    "QueryRequest",
    "REBALANCE_FENCE_PREFIX",
    "SnapshotAnswer",
    "SnapshotRequest",
    "UpdateNotice",
    "ensure_request_ids_above",
    "is_rebalance_fence",
    "make_rebalance_fence",
    "next_request_id",
    "rebalance_fence_epoch",
]
