"""Protocol payloads exchanged between sources and the warehouse.

Three payloads implement the paper's distributed protocol:

* :class:`UpdateNotice` -- a source forwards an atomically applied update.
* :class:`QueryRequest` / :class:`QueryAnswer` -- one sweep step: the
  warehouse ships the partial view change ``Delta-V``; the source returns
  ``ComputeJoin(Delta-V, R)``.

ECA's centralized queries are sums of signed join terms with some relations
replaced by update deltas (:class:`EcaQueryTerm`); their payload size is
what grows quadratically with the number of interfering updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView

_request_ids = count(1)


def next_request_id() -> int:
    """A process-wide unique id correlating answers with requests."""
    return next(_request_ids)


@dataclass(slots=True)
class UpdateNotice:
    """An update applied at a source, forwarded to the warehouse.

    ``seq`` is the per-source sequence number (1-based) of the update;
    ``delivery_seq`` is stamped by the warehouse dispatcher with the global
    delivery order, which defines the total order SWEEP materializes.
    """

    source_index: int
    seq: int
    delta: Delta
    applied_at: float = 0.0
    delivery_seq: int | None = None
    delivered_at: float = 0.0
    #: Global-transaction tagging (update type 3 of Section 2): parts of
    #: one transaction share a ``txn_id`` and carry the total part count.
    txn_id: str | None = None
    txn_total: int = 0

    def payload_size(self) -> int:
        return max(1, self.delta.distinct_count)

    def __repr__(self) -> str:
        return (
            f"UpdateNotice(src={self.source_index}, seq={self.seq},"
            f" {self.delta.distinct_count} rows)"
        )


@dataclass(slots=True)
class QueryRequest:
    """One sweep step: extend ``partial`` with the receiving source's relation."""

    request_id: int
    partial: PartialView
    target_index: int

    def payload_size(self) -> int:
        return max(1, self.partial.delta.distinct_count)


@dataclass(slots=True)
class QueryAnswer:
    """The source's reply to a :class:`QueryRequest`."""

    request_id: int
    partial: PartialView

    def payload_size(self) -> int:
        return max(1, self.partial.delta.distinct_count)


@dataclass(slots=True)
class MultiQueryRequest:
    """One sweep step on behalf of several views at once.

    The multi-view warehouse batches the partial view changes of all its
    views into a single message per source per update, keeping message
    *count* independent of the number of maintained views (payload rows
    still scale with the views).
    """

    request_id: int
    partials: list[PartialView]
    target_index: int

    def payload_size(self) -> int:
        return max(1, sum(p.delta.distinct_count for p in self.partials))


@dataclass(slots=True)
class MultiQueryAnswer:
    """Per-view answers to a :class:`MultiQueryRequest` (same order)."""

    request_id: int
    partials: list[PartialView]

    def payload_size(self) -> int:
        return max(1, sum(p.delta.distinct_count for p in self.partials))


@dataclass(slots=True)
class SnapshotRequest:
    """Ask a source for its full current contents (recompute baseline)."""

    request_id: int

    def payload_size(self) -> int:
        return 1


@dataclass(slots=True)
class SnapshotAnswer:
    """Full relation contents in reply to a :class:`SnapshotRequest`."""

    request_id: int
    source_index: int
    relation: "object"  # Relation; typed loosely to avoid an import cycle

    def payload_size(self) -> int:
        return max(1, self.relation.distinct_count)


@dataclass(slots=True)
class EcaQueryTerm:
    """One signed join term of an ECA query.

    ``substitutions`` maps 1-based relation indices to the delta that stands
    in for that relation; unsubstituted relations are read from the central
    source's current state.  ``sign`` is +1 or -1 (compensation subtracts).
    """

    substitutions: dict[int, Delta]
    sign: int = 1

    def payload_size(self) -> int:
        return max(1, sum(d.distinct_count for d in self.substitutions.values()))


@dataclass(slots=True)
class EcaQuery:
    """A (possibly compensating) ECA query: a sum of signed join terms."""

    request_id: int
    terms: list[EcaQueryTerm] = field(default_factory=list)

    def payload_size(self) -> int:
        return max(1, sum(t.payload_size() for t in self.terms))


@dataclass(slots=True)
class EcaAnswer:
    """The central source's evaluation of an :class:`EcaQuery` (wide rows)."""

    request_id: int
    delta: Delta

    def payload_size(self) -> int:
        return max(1, self.delta.distinct_count)


__all__ = [
    "EcaAnswer",
    "EcaQuery",
    "EcaQueryTerm",
    "MultiQueryAnswer",
    "MultiQueryRequest",
    "QueryAnswer",
    "QueryRequest",
    "SnapshotAnswer",
    "SnapshotRequest",
    "UpdateNotice",
    "next_request_id",
]
