"""The update & query server at a data source (paper Figure 3).

The server plays two roles:

* **SendUpdates** -- when a local update transaction commits
  (:meth:`DataSourceServer.local_update`), it is applied atomically to the
  backend and forwarded to the warehouse as a single
  :class:`~repro.sources.messages.UpdateNotice`.
* **ProcessQuery** -- a simulated process that services
  :class:`~repro.sources.messages.QueryRequest` messages sequentially:
  each request joins the carried partial view change with the local base
  relation and the answer is sent back.

Updates and answers share the *same* FIFO channel to the warehouse.  That
is the linchpin of SWEEP's exactness: an update applied before a query was
evaluated is forwarded before the answer, hence delivered before it.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.relational.delta import Delta
from repro.simulation.channel import Channel, Message
from repro.simulation.kernel import Simulator
from repro.simulation.mailbox import Mailbox
from repro.simulation.process import Delay
from repro.simulation.trace import TraceLog
from repro.sources.base import SourceBackend
from repro.sources.messages import (
    MultiQueryAnswer,
    MultiQueryRequest,
    PositionAnswer,
    PositionRequest,
    QueryAnswer,
    QueryRequest,
    SnapshotAnswer,
    SnapshotRequest,
    UpdateNotice,
)

UpdateListener = Callable[[UpdateNotice], None]


class DataSourceServer:
    """One data-source site: backend storage plus the Figure 3 server.

    Parameters
    ----------
    sim:
        The simulator this site lives in.
    name:
        Site name (usually the relation name, e.g. ``"R2"``).
    index:
        1-based position in the view's relation chain.
    backend:
        Storage (:class:`MemoryBackend` or :class:`SqliteBackend`).
    to_warehouse:
        FIFO channel shared by update notices and query answers.
    query_service_time:
        Simulated time to evaluate one ComputeJoin at this source.  A wider
        service time widens the window in which updates interfere.
    trace:
        Optional trace log.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        index: int,
        backend: SourceBackend,
        to_warehouse: Channel,
        query_service_time: float = 0.0,
        trace: TraceLog | None = None,
    ):
        self.sim = sim
        self.name = name
        self.index = index
        self.backend = backend
        self.to_warehouse = to_warehouse
        self.query_service_time = query_service_time
        self.trace = trace
        self.query_inbox = Mailbox(sim, f"{name}-queries")
        self.update_seq = 0
        self.updates_applied: list[UpdateNotice] = []
        self._listeners: list[UpdateListener] = []
        sim.spawn(f"{name}-ProcessQuery", self._process_queries())

    # ------------------------------------------------------------------
    # SendUpdates role
    # ------------------------------------------------------------------
    def local_update(
        self,
        delta: Delta,
        txn_id: str | None = None,
        txn_total: int = 0,
    ) -> UpdateNotice:
        """Commit a local update transaction and forward it.

        The delta may contain several rows (a source-local transaction,
        update type 2 of Section 2); it is applied atomically and travels
        as one message.  ``txn_id``/``txn_total`` tag this update as one
        part of a *global* transaction (type 3) spanning several sources.

        Ownership of ``delta`` transfers to the server: it is referenced
        by the forwarded notice rather than copied, so the committing
        transaction must not mutate it afterwards.
        """
        self.backend.apply(delta)
        self.update_seq += 1
        notice = UpdateNotice(
            source_index=self.index,
            seq=self.update_seq,
            delta=delta,
            applied_at=self.sim.now,
            txn_id=txn_id,
            txn_total=txn_total,
        )
        self.updates_applied.append(notice)
        for listener in self._listeners:
            listener(notice)
        if self.trace:
            self.trace.record(self.sim.now, self.name, "local-update", notice)
        self.to_warehouse.send(Message(kind="update", sender=self.name, payload=notice))
        return notice

    def add_update_listener(self, listener: UpdateListener) -> None:
        """Register a callback fired on each committed local update.

        The consistency oracle records source histories through this hook.
        """
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # ProcessQuery role
    # ------------------------------------------------------------------
    def _process_queries(self):
        while True:
            msg = yield self.query_inbox.get()
            request = msg.payload
            if isinstance(request, PositionRequest):
                # Recovery probe: just the current seq, no join and no
                # service delay -- but through the same FIFO channel, so
                # the answer orders correctly against update notices.
                answer = PositionAnswer(
                    request_id=request.request_id,
                    source_index=self.index,
                    position=self.update_seq,
                    epoch=request.epoch,
                )
                self.to_warehouse.send(
                    Message(kind="answer", sender=self.name, payload=answer)
                )
                continue
            if self.query_service_time > 0:
                yield Delay(self.query_service_time)
            if isinstance(request, SnapshotRequest):
                # Delta-encoded snapshot: ship codec-v2 flat rows (the
                # checkpoint encoder's format) instead of a materialized
                # relation -- same bytes the TCP codec would emit, built
                # once here rather than per hop.
                from repro.durability.encoding import encode_bag

                answer = SnapshotAnswer(
                    request_id=request.request_id,
                    source_index=self.index,
                    rows=encode_bag(self.backend.snapshot()),
                    epoch=request.epoch,
                )
                self.to_warehouse.send(
                    Message(kind="answer", sender=self.name, payload=answer)
                )
                continue
            if isinstance(request, MultiQueryRequest):
                # One batched sweep step for several views: all joins are
                # evaluated against the same atomic relation state.
                results = [
                    self.backend.compute_join(p) for p in request.partials
                ]
                answer = MultiQueryAnswer(
                    request_id=request.request_id,
                    partials=results,
                    epoch=request.epoch,
                )
                self.to_warehouse.send(
                    Message(kind="answer", sender=self.name, payload=answer)
                )
                continue
            result = self.backend.compute_join(request.partial)
            if self.trace:
                self.trace.record(
                    self.sim.now,
                    self.name,
                    "compute-join",
                    f"req={request.request_id} -> {result.delta.distinct_count} rows",
                )
            answer = QueryAnswer(
                request_id=request.request_id,
                partial=result,
                epoch=request.epoch,
            )
            self.to_warehouse.send(
                Message(kind="answer", sender=self.name, payload=answer)
            )

    # ------------------------------------------------------------------
    def snapshot(self):
        """Current base relation contents (delegates to the backend)."""
        return self.backend.snapshot()

    def __repr__(self) -> str:
        return f"DataSourceServer({self.name!r}, index={self.index})"


__all__ = ["DataSourceServer"]
