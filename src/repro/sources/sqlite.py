"""sqlite3-backed source storage.

The base relation lives in a sqlite table (one row per distinct tuple plus
a ``_count`` multiplicity column).  ``ComputeJoin(Delta-V, R)`` uploads the
partial view change into a temp table and lets sqlite evaluate the join, so
the distributed experiments exercise a real SQL engine at every source.

Each backend owns a private ``:memory:`` connection by default; passing a
path gives a file-backed database (used by the retail example).
"""

from __future__ import annotations

import sqlite3

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition
from repro.relational import sqlgen
from repro.sources.base import SourceBackend


class SqliteBackend(SourceBackend):
    """Stores the base relation in a sqlite3 table.

    Parameters mirror :class:`~repro.sources.memory.MemoryBackend`, plus
    ``database`` (sqlite path, default in-memory).
    """

    PARTIAL_TABLE = "_partial_dv"

    def __init__(
        self,
        view: ViewDefinition,
        index: int,
        initial: Relation | None = None,
        database: str = ":memory:",
    ):
        self.view = view
        self.index = index
        self.schema = view.schema_of(index)
        self.table = view.name_of(index)
        self._conn = sqlite3.connect(database)
        self._conn.execute(sqlgen.drop_table_sql(self.table))
        self._conn.execute(sqlgen.create_table_sql(self.table, self.schema))
        if initial is not None:
            if initial.schema.attributes != self.schema.attributes:
                from repro.relational.errors import SchemaError

                raise SchemaError(
                    f"initial contents schema {list(initial.schema.attributes)!r}"
                    f" does not match relation {self.table!r}"
                )
            self._conn.executemany(
                sqlgen.insert_rows_sql(self.table, self.schema),
                [row + (count,) for row, count in initial.items()],
            )
        self._conn.commit()

    # ------------------------------------------------------------------
    def apply(self, delta: Delta) -> None:
        """Upsert signed counts, then verify no multiplicity went negative."""
        cur = self._conn.cursor()
        try:
            cur.executemany(
                sqlgen.upsert_count_sql(self.table, self.schema),
                [row + (count,) for row, count in delta.items()],
            )
            negative = cur.execute(
                f"SELECT COUNT(*) FROM {sqlgen.quote_ident(self.table)}"
                f" WHERE {sqlgen.COUNT_COLUMN} < 0"
            ).fetchone()[0]
            if negative:
                from repro.relational.errors import NegativeCountError

                bad = cur.execute(
                    sqlgen.select_all_sql(self.table, self.schema)
                    + f" WHERE {sqlgen.COUNT_COLUMN} < 0 LIMIT 1"
                ).fetchone()
                self._conn.rollback()
                raise NegativeCountError(tuple(bad[:-1]), bad[-1])
            cur.execute(sqlgen.prune_zero_sql(self.table))
            self._conn.commit()
        finally:
            cur.close()

    def snapshot(self) -> Relation:
        rows = self._conn.execute(
            sqlgen.select_all_sql(self.table, self.schema)
        ).fetchall()
        return Relation(self.schema, {tuple(r[:-1]): r[-1] for r in rows})

    def compute_join(self, partial: PartialView) -> PartialView:
        index = self.index
        if not partial.is_adjacent(index):
            from repro.relational.errors import SchemaError

            raise SchemaError(
                f"relation {index} is not adjacent to covered range"
                f" {partial.lo}..{partial.hi}"
            )
        covered = partial.covered
        # Conditions come from the *partial's* view: a multi-view warehouse
        # sends partials of several view definitions to the same backend.
        pview = partial.view
        if pview.schema_of(index).attributes != self.schema.attributes:
            from repro.relational.errors import SchemaError

            raise SchemaError(
                f"view {pview.name!r} expects schema"
                f" {list(pview.schema_of(index).attributes)!r} at index"
                f" {index}, backend stores {list(self.schema.attributes)!r}"
            )
        condition = pview.conditions_joining(index, covered)
        new_lo, new_hi = min(partial.lo, index), max(partial.hi, index)
        out_schema = pview.wide_schema_range(new_lo, new_hi)

        partial_schema = partial.delta.schema
        cur = self._conn.cursor()
        try:
            cur.execute(sqlgen.drop_table_sql(self.PARTIAL_TABLE))
            cur.execute(
                sqlgen.create_temp_table_sql(self.PARTIAL_TABLE, partial_schema)
            )
            cur.executemany(
                sqlgen.insert_rows_sql(self.PARTIAL_TABLE, partial_schema),
                [row + (count,) for row, count in partial.delta.items()],
            )
            sql, params = sqlgen.join_partial_sql(
                base_table=self.table,
                base_schema=self.schema,
                partial_table=self.PARTIAL_TABLE,
                partial_attrs=partial_schema.attributes,
                condition=condition,
                output_attrs=out_schema.attributes,
            )
            out = Delta(out_schema)
            for row in cur.execute(sql, params):
                out.add(tuple(row[:-1]), row[-1])
            cur.execute(sqlgen.drop_table_sql(self.PARTIAL_TABLE))
        finally:
            cur.close()
        return PartialView(partial.view, new_lo, new_hi, out)

    def close(self) -> None:
        self._conn.close()

    def __repr__(self) -> str:
        return f"SqliteBackend({self.table!r})"


__all__ = ["SqliteBackend"]
