"""Source-local transactions (update type 2 of Section 2).

The paper distinguishes single-update transactions from *source-local
transactions*: several inserts/deletes executed atomically at one source
and shipped to the warehouse as one unit.  A :class:`Transaction` is an
ordered list of :class:`TransactionOp`; :meth:`Transaction.as_delta`
collapses it into the single signed bag that travels in one
:class:`~repro.sources.messages.UpdateNotice`.

Modifies are modelled as delete-then-insert, as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.delta import Delta
from repro.relational.schema import Schema


@dataclass(frozen=True, slots=True)
class TransactionOp:
    """One operation: ``kind`` is ``"insert"`` or ``"delete"``."""

    kind: str
    row: tuple

    def __post_init__(self) -> None:
        if self.kind not in ("insert", "delete"):
            raise ValueError(f"op kind must be insert/delete, got {self.kind!r}")
        object.__setattr__(self, "row", tuple(self.row))


@dataclass
class Transaction:
    """An atomic sequence of operations against one base relation."""

    ops: list[TransactionOp] = field(default_factory=list)

    def insert(self, row: tuple) -> "Transaction":
        """Append an insert; returns self for chaining."""
        self.ops.append(TransactionOp("insert", row))
        return self

    def delete(self, row: tuple) -> "Transaction":
        """Append a delete; returns self for chaining."""
        self.ops.append(TransactionOp("delete", row))
        return self

    def modify(self, old_row: tuple, new_row: tuple) -> "Transaction":
        """A modify is a delete followed by an insert (Section 2)."""
        return self.delete(old_row).insert(new_row)

    def as_delta(self, schema: Schema) -> Delta:
        """Collapse the operation list into one signed bag.

        Opposite operations on the same row cancel (the net effect is what
        the warehouse needs); an empty net effect yields an empty delta.
        """
        delta = Delta(schema)
        for op in self.ops:
            delta.add(op.row, +1 if op.kind == "insert" else -1)
        return delta

    def __len__(self) -> int:
        return len(self.ops)


__all__ = ["Transaction", "TransactionOp"]
