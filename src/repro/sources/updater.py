"""Replaying generated update schedules against sources.

Workload generation (in :mod:`repro.workloads`) produces, per source, a
list of :class:`ScheduledUpdate` -- absolute commit times with the update
delta.  :class:`ScheduledUpdater` spawns a simulated process that sleeps
until each commit time and fires
:meth:`~repro.sources.server.DataSourceServer.local_update`, modelling the
autonomous local transactions of the paper's Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.delta import Delta
from repro.simulation.kernel import Simulator
from repro.simulation.process import Delay


@dataclass(frozen=True, slots=True)
class ScheduledUpdate:
    """An update transaction committing at ``time`` (absolute virtual time).

    ``txn_id``/``txn_total`` mark this update as one part of a global
    (multi-source) transaction; plain local updates leave them unset.
    """

    time: float
    delta: Delta
    txn_id: str | None = None
    txn_total: int = 0


class ScheduledUpdater:
    """Drives one source (or one relation of a central source) on a schedule."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        apply_update,
        schedule: list[ScheduledUpdate],
    ):
        """``apply_update`` is a callable taking the delta (already bound to
        the right source/relation)."""
        self.sim = sim
        self.name = name
        self.schedule = sorted(schedule, key=lambda u: u.time)
        self.applied = 0
        self._apply = apply_update
        sim.spawn(f"updater-{name}", self._run())

    def _run(self):
        for update in self.schedule:
            delay = update.time - self.sim.now
            if delay > 0:
                yield Delay(delay)
            if update.txn_id is not None:
                self._apply(
                    update.delta,
                    txn_id=update.txn_id,
                    txn_total=update.txn_total,
                )
            else:
                self._apply(update.delta)
            self.applied += 1

    @property
    def done(self) -> bool:
        """True once every scheduled update has been applied."""
        return self.applied == len(self.schedule)


__all__ = ["ScheduledUpdate", "ScheduledUpdater"]
