"""The warehouse site: view storage, runtime plumbing and all algorithms.

* :class:`~repro.warehouse.view_store.MaterializedView` -- the stored view
  with GMS93 tuple counts; strict mode raises on impossible deletes,
  tolerant mode counts them as anomalies (used to expose what naive
  maintenance gets wrong).
* :class:`~repro.warehouse.base.WarehouseBase` /
  :class:`~repro.warehouse.base.QueueDrivenWarehouse` -- the Figure 4
  runtime: LogUpdates dispatcher, UpdateMessageQueue, query send/await,
  install + snapshot instrumentation.
* Algorithms, one module each:

  ==================  =============================================
  :mod:`sweep`         SWEEP (Section 5): complete consistency,
                       local compensation, O(n) messages
  :mod:`nested_sweep`  Nested SWEEP (Section 6): strong consistency,
                       cumulative updates, amortized O(n)
  :mod:`eca`           ECA (ZGMHW95): centralized, compensating queries
  :mod:`strobe`        Strobe (ZGMW96): key assumption, quiescent install
  :mod:`cstrobe`       C-Strobe (ZGMW96): complete, compensation cascades
  :mod:`convergent`    naive incremental without compensation (anomalies)
  :mod:`recompute`     full recomputation per update (costly baseline)
  ==================  =============================================

* :mod:`~repro.warehouse.registry` -- name -> algorithm lookup plus the
  static properties column of Table 1.
"""

from repro.warehouse.base import QueueDrivenWarehouse, WarehouseBase
from repro.warehouse.convergent import ConvergentWarehouse
from repro.warehouse.cstrobe import CStrobeWarehouse
from repro.warehouse.eca import EcaWarehouse
from repro.warehouse.errors import UnsupportedViewError, WarehouseError
from repro.warehouse.global_txn import GlobalSweepWarehouse
from repro.warehouse.bootstrap import BootstrapSweepWarehouse
from repro.warehouse.multiview import MultiViewSweepWarehouse
from repro.warehouse.nested_sweep import NestedSweepWarehouse
from repro.warehouse.pipelined import PipelinedSweepWarehouse
from repro.warehouse.recompute import RecomputeWarehouse
from repro.warehouse.registry import ALGORITHMS, AlgorithmInfo, algorithm_info
from repro.warehouse.strobe import StrobeWarehouse
from repro.warehouse.sweep import SweepWarehouse
from repro.warehouse.view_store import MaterializedView

__all__ = [
    "ALGORITHMS",
    "AlgorithmInfo",
    "BootstrapSweepWarehouse",
    "ConvergentWarehouse",
    "MultiViewSweepWarehouse",
    "CStrobeWarehouse",
    "EcaWarehouse",
    "GlobalSweepWarehouse",
    "MaterializedView",
    "NestedSweepWarehouse",
    "PipelinedSweepWarehouse",
    "QueueDrivenWarehouse",
    "RecomputeWarehouse",
    "StrobeWarehouse",
    "SweepWarehouse",
    "UnsupportedViewError",
    "WarehouseBase",
    "WarehouseError",
    "algorithm_info",
]
