"""Warehouse runtime plumbing (the paper's Figure 4 module).

:class:`WarehouseBase` owns everything every algorithm needs:

* the single **inbox** into which all source channels deliver -- update
  notices and query answers share each source's FIFO channel, which is what
  makes concurrency detection exact;
* per-source **query channels** back to the sources;
* the :class:`~repro.warehouse.view_store.MaterializedView` plus install
  instrumentation (consistency recorder, metrics, trace);
* ``applied_counts``, the per-source count of updates whose effects are in
  the view -- each install's *claimed vector*.

:class:`QueueDrivenWarehouse` adds the paper's two processes: *LogUpdates*
(the dispatcher routing updates into the ``UpdateMessageQueue`` and answers
to the waiting sweep) and *UpdateView* (pop an update, run the
algorithm-specific ``view_change`` coroutine, install the result).
ECA and Strobe are event-driven instead and subclass ``WarehouseBase``
directly.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Generator

from repro.consistency.oracle import RunRecorder
from repro.relational.delta import Delta, merge_deltas
from repro.relational.incremental import PartialView
from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition
from repro.simulation.channel import Channel, Message
from repro.simulation.kernel import Simulator
from repro.simulation.mailbox import Mailbox
from repro.simulation.metrics import MetricsCollector
from repro.simulation.trace import TraceLog
from repro.sources.messages import (
    QueryRequest,
    UpdateNotice,
    is_rebalance_fence,
    next_request_id,
)
from repro.warehouse.errors import ProtocolError
from repro.warehouse.view_store import MaterializedView


class WarehouseBase:
    """Shared state and helpers for every maintenance algorithm."""

    #: Registry name; subclasses override.
    algorithm_name = "abstract"

    def __init__(
        self,
        sim: Simulator,
        view: ViewDefinition,
        query_channels: dict[int, Channel],
        initial_view: Relation | None = None,
        recorder: RunRecorder | None = None,
        metrics: MetricsCollector | None = None,
        trace: TraceLog | None = None,
        strict_view: bool = True,
        inbox: Mailbox | None = None,
        locality=None,
    ):
        self.sim = sim
        self.view = view
        self.query_channels = query_channels
        # The inbox may be pre-created by the harness so source channels can
        # be wired before the warehouse object exists.
        self.inbox = inbox if inbox is not None else Mailbox(sim, "warehouse-inbox")
        self.store = MaterializedView(view, initial_view, strict=strict_view)
        self.recorder = recorder
        self.metrics = metrics if metrics is not None else MetricsCollector()
        #: query-locality layer (aux copies + answer cache); None = remote.
        self.locality = locality
        if locality is not None:
            locality.bind(self.metrics)
        self.trace = trace
        #: updates whose effects the view currently reflects, per source.
        self.applied_counts: dict[int, int] = defaultdict(int)
        self.updates_delivered = 0
        #: attached by repro.durability (checkpoint + WAL); None = volatile.
        self.durability = None
        #: answers with request ids at or below this are pre-crash strays.
        self.stale_answer_floor = 0
        if recorder is not None:
            recorder.set_initial_view(self.store.relation)

    # ------------------------------------------------------------------
    # Outgoing queries
    # ------------------------------------------------------------------
    def send_query(self, index: int, payload: object) -> None:
        """Ship a query payload to source ``index`` over its channel."""
        if self.durability is not None and hasattr(payload, "epoch"):
            # Stamp the incarnation so answers can be fenced after a
            # restart; sources echo it back (see messages.QueryRequest).
            payload.epoch = self.durability.incarnation
        if self.locality is not None:
            # Remember cacheable queries so the dispatcher can insert the
            # answer at routing time (the delivered position).
            self.locality.register(payload)
        self.metrics.increment("queries_sent")
        self.query_channels[index].send(
            Message(kind="query", sender="warehouse", payload=payload)
        )

    def make_sweep_query(self, index: int, partial: PartialView) -> QueryRequest:
        """Build the Figure 3 ComputeJoin request for one sweep step."""
        return QueryRequest(
            request_id=next_request_id(), partial=partial, target_index=index
        )

    # ------------------------------------------------------------------
    # Delivery accounting
    # ------------------------------------------------------------------
    def note_delivery(self, notice: UpdateNotice) -> None:
        """Stamp and record an update's arrival in the warehouse queue."""
        self.updates_delivered += 1
        notice.delivered_at = self.sim.now
        if self.recorder is not None:
            self.recorder.on_delivery(notice)
        else:
            notice.delivery_seq = self.updates_delivered
        if self.locality is not None:
            self.locality.on_delivered(notice)
        self.metrics.increment("updates_delivered")
        if self.trace:
            self.trace.record(self.sim.now, "warehouse", "delivered", notice)

    # ------------------------------------------------------------------
    # Installing view changes
    # ------------------------------------------------------------------
    def mark_applied(self, notices: list[UpdateNotice]) -> None:
        """Record that these updates' effects are now (being) installed."""
        for notice in notices:
            self.applied_counts[notice.source_index] += 1
            if self.locality is not None:
                self.locality.on_installed(notice)
            self.metrics.increment("updates_installed")
            self.metrics.observe(
                "install_delay", self.sim.now - notice.delivered_at
            )

    def install_wide(self, wide_delta: Delta, note: str = "") -> None:
        """Finalize and install a full-width view change, then snapshot."""
        self.store.install_wide(wide_delta)
        self._after_install(note)

    def install_view_delta(self, delta: Delta, note: str = "") -> None:
        """Install a view-schema delta directly (Strobe-family local ops)."""
        self.store.apply(delta)
        self._after_install(note)

    def _after_install(self, note: str) -> None:
        self.metrics.increment("installs")
        if self.durability is not None:
            self.durability.on_install()
        if self.recorder is not None:
            self.recorder.on_install(
                self.sim.now,
                self.store.relation,
                claimed_vector=dict(self.applied_counts),
                note=note,
            )
        if self.trace:
            self.trace.record(
                self.sim.now,
                "warehouse",
                "install",
                f"{note} -> {self.store.relation.distinct_count} rows",
            )

    # ------------------------------------------------------------------
    def pending_work(self) -> bool:
        """True while this site buffers undone work in *internal* state.

        Quiescence detection sees the inbox and the transport channels;
        anything an algorithm parks in its own mailboxes or staging
        structures is invisible from outside and must be reported here,
        or a fast run can be declared finished mid-flight.
        """
        return False

    def current_view(self) -> Relation:
        """Copy of the current materialized view contents."""
        return self.store.snapshot()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(view={self.view.name},"
            f" installs={self.store.installs})"
        )


class QueueDrivenWarehouse(WarehouseBase):
    """Figure 4 runtime: LogUpdates + UpdateMessageQueue + UpdateView.

    Subclasses implement :meth:`view_change`, a generator receiving one
    update notice and returning the full-width :class:`PartialView` to
    install (SWEEP) -- or install internally and return None (C-Strobe's
    local delete path).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.update_queue = Mailbox(self.sim, "UpdateMessageQueue")
        self._answer_box = Mailbox(self.sim, "warehouse-answers")
        #: queued updates latched when the most recent answer was routed.
        self._pending_at_answer: tuple[UpdateNotice, ...] = ()
        self.sim.spawn("wh-LogUpdates", self._dispatch())
        self.sim.spawn("wh-UpdateView", self._update_view())

    # ------------------------------------------------------------------
    def pending_work(self) -> bool:
        return (
            len(self.update_queue) != 0
            or len(self._answer_box) != 0
            or (
                self.durability is not None
                and self.durability.parked_count() != 0
            )
        )

    # ------------------------------------------------------------------
    # LogUpdates (and answer routing)
    # ------------------------------------------------------------------
    def _dispatch(self) -> Generator:
        from repro.sources.messages import PositionAnswer

        while True:
            msg = yield self.inbox.get()
            if msg.kind == "update":
                if self._intercept_update(msg):
                    continue
                if self.durability is not None:
                    # Fences redeliveries, logs new deliveries, and holds
                    # recovered pending parked until the source's position
                    # covers them (see DurabilityManager.ingest_update).
                    self.durability.ingest_update(msg)
                else:
                    self.note_delivery(msg.payload)
                    self.update_queue.put(msg)
            elif msg.kind == "answer":
                if (
                    self.durability is not None
                    and getattr(msg.payload, "epoch", 0)
                    != self.durability.incarnation
                ):
                    # Answer to a query issued by an earlier incarnation.
                    # The request-id floor below cannot fence these: ids
                    # issued *after* the last checkpoint never reached
                    # durable state, so only the epoch tag identifies
                    # them.  The restarted protocol re-issues its own.
                    self.metrics.increment("recovery_stale_answers_dropped")
                    continue
                if self.durability is not None and isinstance(
                    msg.payload, PositionAnswer
                ):
                    self.durability.on_position(
                        msg.payload.source_index, msg.payload.position
                    )
                    continue
                if (
                    self.stale_answer_floor
                    and msg.payload.request_id <= self.stale_answer_floor
                ):
                    # Answer to a query a pre-crash incarnation issued;
                    # the restarted sweep re-issued its own.
                    self.metrics.increment("recovery_stale_answers_dropped")
                    continue
                if self.locality is not None:
                    # Cache insertion must happen here, not when the sweep
                    # consumes the answer: the same-instant delivery window
                    # the pending snapshot below closes would otherwise
                    # shift the entry off the delivered position.
                    self.locality.on_answer_routed(msg.payload)
                # Snapshot the queue contents *now*: an update delivered at
                # the same virtual instant but after this answer must not be
                # compensated against it (it was applied after the query was
                # evaluated), yet its delivery event may fire before the
                # sweep process wakes up.  The snapshot closes that window.
                pending = self._queued_update_payloads()
                self._answer_box.put((msg, pending))
            elif msg.kind == "rebalance":
                self._on_rebalance_message(msg)
            else:  # pragma: no cover - defensive
                raise ProtocolError(f"unexpected message kind {msg.kind!r}")

    # ------------------------------------------------------------------
    # Rebalance hooks (overridden by the migration mixin)
    # ------------------------------------------------------------------
    def _intercept_update(self, msg: Message) -> bool:
        """Claim an incoming update frame before normal dispatch.

        Return True to swallow the frame (it is neither counted as a
        delivery nor queued by the default path).  The migration mixin
        routes rebalance fences through here so they keep their FIFO slot
        in the update queue without perturbing delivery accounting.
        """
        return False

    def _on_rebalance_message(self, msg: Message) -> None:
        """Handle a rebalance control frame (handoff / gap / complete)."""
        raise ProtocolError(
            f"rebalance frame at non-migratable warehouse: {msg.payload!r}"
        )

    def _queued_update_payloads(self) -> tuple[UpdateNotice, ...]:
        """The real updates currently queued, in FIFO order.

        Control frames sharing the queue (rebalance fences, handoff
        state) are not source updates and never participate in
        compensation.
        """
        return tuple(
            m.payload
            for m in self.update_queue.peek_all()
            if isinstance(m.payload, UpdateNotice)
            and not is_rebalance_fence(m.payload)
        )

    def _live_locality(self):
        """The locality layer, or None while its answers are unusable.

        A recipient shard mid-migration has one view whose position lags
        the shard's installed position; its sweeps must not consume
        covered/cached answers pinned to the shared position.
        """
        return self.locality

    # ------------------------------------------------------------------
    # UpdateView
    # ------------------------------------------------------------------
    def _update_view(self) -> Generator:
        while True:
            self._stable_point()
            msg = yield self.update_queue.get()
            self._before_unit()
            if self._is_control(msg):
                yield from self._handle_control(msg)
                continue
            notice: UpdateNotice = msg.payload
            if self.trace:
                self.trace.record(self.sim.now, "warehouse", "process", notice)
            yield from self.process_update(notice)

    def _before_unit(self) -> None:
        """Entry of one unit of work, right after the head-of-queue pop.

        Installs are complete and no sweep is in flight -- the migration
        mixin seals the donor's migrating view here.
        """

    def _is_control(self, msg: Message) -> bool:
        """True when a queued message is a protocol control frame (a
        rebalance fence or handoff) rather than a source update."""
        return False

    def _handle_control(self, msg: Message) -> Generator:
        """Consume one control frame as its own unit of work."""
        raise ProtocolError(f"unexpected control frame {msg.payload!r}")
        yield  # pragma: no cover - generator shape

    def _stable_point(self) -> None:
        """Between units of work: every install complete, no sweep in
        flight.  The only place a checkpoint may be taken."""
        if self.durability is not None:
            self.durability.maybe_checkpoint()

    def process_update(self, notice: UpdateNotice) -> Generator:
        """Handle one dequeued update; default = view_change + install."""
        result = yield from self.view_change(notice)
        if result is not None:
            self.mark_applied([notice])
            self.install_wide(
                result.delta,
                note=f"update src={notice.source_index} seq={notice.seq}",
            )

    def view_change(self, notice: UpdateNotice) -> Generator:
        """Algorithm-specific: compute the wide view change for ``notice``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Sweep-step helpers shared by SWEEP / Nested SWEEP / C-Strobe
    # ------------------------------------------------------------------
    def query_and_await(self, index: int, partial: PartialView) -> Generator:
        """Send one ComputeJoin to source ``index`` and await its answer.

        Also latches the set of updates that were queued when the answer
        was routed (see ``_dispatch``), which
        :meth:`pending_updates_from` consults.
        """
        request = self.make_sweep_query(index, partial)
        self.send_query(index, request)
        msg, pending = yield self._answer_box.get()
        self._pending_at_answer = pending
        answer = msg.payload
        if answer.request_id != request.request_id:
            raise ProtocolError(
                f"answer {answer.request_id} does not match request"
                f" {request.request_id}"
            )
        return answer.partial

    def local_aux_answer(self, index: int, partial: PartialView):
        """Sweep-step answer from the covered local copy, or None.

        The copy sits at the installed position, which for queue-driven
        (one unit of work at a time) warehouses is exactly the state the
        remote answer plus local compensation would reconstruct -- so the
        caller skips compensation entirely.
        """
        locality = self._live_locality()
        if locality is None:
            return None
        return locality.aux_answer(index, partial)

    def local_cached_answer(self, index: int, partial: PartialView):
        """Cached sweep-step answer, or None.

        A hit behaves exactly like a remote answer routed this instant:
        the pending-updates snapshot is latched against the current queue
        and the caller runs its ordinary compensation against it.
        """
        locality = self._live_locality()
        if locality is None:
            return None
        hit = locality.cache_lookup(index, partial)
        if hit is None:
            return None
        self._pending_at_answer = self._queued_update_payloads()
        return hit

    def pending_updates_from(self, index: int) -> list[UpdateNotice]:
        """Updates from source ``index`` queued when the last answer arrived.

        By the FIFO argument of Section 4, exactly these interfere with
        that answer.
        """
        return [
            notice
            for notice in self._pending_at_answer
            if notice.source_index == index
        ]

    def merged_pending_delta(self, notices: list[UpdateNotice]) -> Delta:
        """Coalesce several queued updates from one source into one delta."""
        schema = self.view.schema_of(notices[0].source_index)
        return merge_deltas(schema, [n.delta for n in notices])


__all__ = ["QueueDrivenWarehouse", "WarehouseBase"]
