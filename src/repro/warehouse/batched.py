"""Batched SWEEP: one composite sweep per drained batch of queued updates.

Per-update SWEEP pays ``2(n-1)`` messages and a full left-then-right
round-trip chain for *every* update.  The paper's own Nested SWEEP
(Section 6) shows the win from amortizing concurrent updates into one
composite view change; this module turns that observation into a
*scheduler*: instead of absorbing interference reactively as a sweep
discovers it, the warehouse drains its whole ``UpdateMessageQueue`` up
front and maintains the batch with a single composite sweep.

Correctness rests on the telescoping expansion of the view difference.
For a batch whose per-source merged deltas are ``Delta-R_i`` (i in S):

    V(new) - V(old) = sum over i of
        R_1^new |><| ... |><| R_{i-1}^new |><| Delta-R_i
                |><| R_{i+1}^old |><| ... |><| R_n^old

Each summand is one *term*, seeded with ``Delta-R_i``.  The terms are
evaluated by two source-order wavefronts so that every source is queried
at most twice per batch, with the partials of all terms that need it
packed into one :class:`~repro.sources.messages.MultiQueryRequest`:

* **leftward wave** (j = n-1 .. 1): extends every term ``i > j`` by
  source ``j``.  These terms want ``R_j^new`` -- and by the FIFO channel
  property the source has applied exactly the batch's updates (delivered
  before the drain) plus any updates still sitting in the queue *now*,
  whose error terms are compensated locally exactly as in SWEEP.
* **rightward wave** (j = 2 .. n): extends every term ``i < j`` by
  source ``j``.  These terms want ``R_j^old``, so in addition to the
  queued-update compensation the batch's *own* merged delta at ``j`` is
  subtracted: ``answer - Temp |><| Delta-R_j``.

Message cost per batch of ``k`` updates is at most ``4(n-1)`` (one
query+answer per wave per source), versus ``2(n-1) * k`` for per-update
SWEEP -- O(n)+k rather than O(n)*k, counting the k update notices.

The batch is installed as **one** composite view change, so complete
consistency (a snapshot per update) is traded for strong consistency (a
snapshot per batch, batches being prefixes of the delivery order) --
the same trade Nested SWEEP makes, at strictly lower message cost.
Per-update SWEEP remains the default algorithm and is unchanged.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.sources.messages import MultiQueryRequest, UpdateNotice, next_request_id
from repro.warehouse.base import QueueDrivenWarehouse
from repro.warehouse.errors import ProtocolError


class AdaptiveBatchCap:
    """Drain-cap controller: grow under pressure, shrink when drained.

    The static ``max_batch`` knob trades staleness (big batches) against
    message cost (small batches) once, at configuration time.  This
    controller re-makes that trade continuously from two observed
    signals, sampled once per batch at drain time:

    * **queue depth** -- how many updates are waiting right now, and
    * **install lag** -- how long the batch's oldest update sat queued
      (virtual time units), the per-update staleness actually being paid.

    Both are smoothed with an EWMA so one bursty arrival does not whip
    the cap around.  The cap doubles after ``patience`` consecutive
    *pressured* observations (smoothed depth exceeding the current cap,
    or smoothed lag exceeding ``lag_threshold``), halves after
    ``patience`` consecutive *drained* observations (smoothed depth under
    half the cap and lag under threshold), and is always clamped to
    ``[floor, ceiling]`` (``ceiling=0`` means unbounded).  Multiplicative
    moves keep the controller's reaction time logarithmic in the cap, so
    a shard hit by skewed load reaches a deep drain cap within a few
    batches and returns to small, low-staleness batches when the backlog
    clears.

    The controller is pure bookkeeping -- no clocks, no randomness --
    so identical observation sequences produce identical cap sequences.
    """

    def __init__(
        self,
        floor: int = 1,
        ceiling: int = 0,
        alpha: float = 0.5,
        patience: int = 2,
        lag_threshold: float = 50.0,
        initial: int | None = None,
    ):
        if floor < 1:
            raise ValueError(f"floor must be >= 1, got {floor}")
        if ceiling and ceiling < floor:
            raise ValueError(f"ceiling {ceiling} is below floor {floor}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.floor = floor
        self.ceiling = ceiling
        self.alpha = alpha
        self.patience = patience
        self.lag_threshold = lag_threshold
        self.cap = min(initial, ceiling) if initial and ceiling else (
            initial if initial else floor
        )
        self.cap = max(self.floor, self.cap)
        self.depth_ewma = 0.0
        self.lag_ewma = 0.0
        self._pressured = 0
        self._drained = 0

    def observe(self, queue_depth: int, install_lag: float = 0.0) -> int:
        """Fold in one observation and return the cap for the next drain."""
        a = self.alpha
        self.depth_ewma = a * queue_depth + (1.0 - a) * self.depth_ewma
        self.lag_ewma = a * install_lag + (1.0 - a) * self.lag_ewma
        lagging = self.lag_threshold > 0 and self.lag_ewma > self.lag_threshold
        if self.depth_ewma > self.cap or lagging:
            self._pressured += 1
            self._drained = 0
            if self._pressured >= self.patience:
                self._pressured = 0
                grown = self.cap * 2
                self.cap = min(grown, self.ceiling) if self.ceiling else grown
        elif self.depth_ewma < self.cap / 2 and not lagging:
            self._drained += 1
            self._pressured = 0
            if self._drained >= self.patience:
                self._drained = 0
                self.cap = max(self.floor, self.cap // 2)
        else:
            self._pressured = 0
            self._drained = 0
        return self.cap


class BatchedSweepWarehouse(QueueDrivenWarehouse):
    """SWEEP with a batch-draining scheduler and wavefront composite sweeps.

    Parameters (beyond :class:`QueueDrivenWarehouse`'s):

    max_batch:
        Largest number of queued updates coalesced into one composite
        sweep; ``0`` (the default) drains the whole queue.  With
        ``max_batch=1`` every batch is a singleton and the algorithm
        degenerates to per-update SWEEP message behaviour (and complete
        consistency).
    adaptive:
        Derive the drain cap per batch from observed queue depth and
        install lag (see :class:`AdaptiveBatchCap`) instead of using
        ``max_batch`` statically; ``max_batch`` then acts as the
        controller's hard ceiling (``0`` = no ceiling).
    """

    algorithm_name = "batched-sweep"

    def __init__(self, *args, max_batch: int = 0, adaptive: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        if max_batch < 0:
            raise ValueError(f"max_batch must be >= 0, got {max_batch}")
        self.max_batch = max_batch
        self.batch_cap = AdaptiveBatchCap(ceiling=max_batch) if adaptive else None
        self.batches_processed = 0

    # ------------------------------------------------------------------
    # The batch-draining UpdateView process (replaces one-at-a-time pop)
    # ------------------------------------------------------------------
    def _drain_cap(self, head: UpdateNotice) -> int:
        """Batch-size cap for the drain about to happen (0 = unbounded)."""
        if self.batch_cap is None:
            return self.max_batch
        depth = len(self.update_queue) + 1
        lag = max(0.0, self.sim.now - head.delivered_at)
        cap = self.batch_cap.observe(depth, lag)
        self.metrics.observe("adaptive_cap", cap)
        return cap

    def _update_view(self) -> Generator:
        while True:
            self._stable_point()
            msg = yield self.update_queue.get()
            self._before_unit()
            if self._is_control(msg):
                yield from self._handle_control(msg)
                continue
            batch: list[UpdateNotice] = [msg.payload]
            cap = self._drain_cap(msg.payload)
            # Drain everything already queued into this batch.  Updates
            # delivered *after* this point stay queued; the wavefront
            # compensates their interference and the next batch applies
            # them -- exactly SWEEP's treatment of concurrent updates.
            # Control frames (rebalance fences) end the drain: per-source
            # FIFO means nothing behind a fence may share a batch with
            # the pre-fence prefix.
            for queued in list(self.update_queue.peek_all()):
                if cap and len(batch) >= cap:
                    break
                if self._is_control(queued):
                    break
                self.update_queue.remove(queued)
                batch.append(queued.payload)
            if self.trace:
                self.trace.record(
                    self.sim.now, "warehouse", "batch", f"{len(batch)} update(s)"
                )
            yield from self.process_batch(batch)

    def view_change(self, notice: UpdateNotice) -> Generator:
        raise NotImplementedError("batched SWEEP overrides _update_view")

    # ------------------------------------------------------------------
    # One composite sweep per batch
    # ------------------------------------------------------------------
    def process_batch(self, batch: list[UpdateNotice]) -> Generator:
        n = self.view.n_relations
        self.batches_processed += 1
        self.metrics.increment("batched_sweeps")
        self.metrics.observe("batch_size", len(batch))

        # Merge same-source deltas (delivery order preserved by summing --
        # bag addition commutes) and seed one term per touched source.
        merged: dict[int, Delta] = {}
        for notice in batch:
            seen = merged.get(notice.source_index)
            if seen is None:
                merged[notice.source_index] = notice.delta.copy()
            else:
                seen.merge_in_place(notice.delta)
        terms: dict[int, PartialView] = {
            index: PartialView.initial(self.view, index, delta)
            for index, delta in merged.items()
        }

        # Leftward wave: term i wants R_j^new for every j < i.
        for j in range(n - 1, 0, -1):
            active = sorted(i for i in terms if i > j)
            if not active:
                continue
            locality = self._live_locality()
            if locality is not None and locality.covers(j):
                batch_delta = merged.get(j)
                for i in active:
                    terms[i] = self._local_wave_answer(j, terms[i], batch_delta)
                continue
            answers = yield from self._multi_query(j, [terms[i] for i in active])
            for i, answer in zip(active, answers):
                terms[i] = self._compensate_queued(j, answer, terms[i])

        # Rightward wave: term i wants R_j^old for every j > i, so the
        # batch's own delta at j is part of the error to subtract.
        for j in range(2, n + 1):
            active = sorted(i for i in terms if i < j)
            if not active:
                continue
            locality = self._live_locality()
            if locality is not None and locality.covers(j):
                # The covered copy *is* R_j^old (pre-batch installed
                # position): no queued-update or batch-delta error terms.
                for i in active:
                    terms[i] = locality.aux_answer(j, terms[i])
                continue
            temps = {i: terms[i] for i in active}
            answers = yield from self._multi_query(j, [temps[i] for i in active])
            batch_delta = merged.get(j)
            for i, answer in zip(active, answers):
                answer = self._compensate_queued(j, answer, temps[i])
                if batch_delta is not None:
                    answer = answer.compensate(temps[i].extend(j, batch_delta))
                terms[i] = answer

        # Sum the terms into one composite wide delta; single install.
        composite: PartialView | None = None
        for index in sorted(terms):
            term = terms[index]
            composite = term if composite is None else composite.add_in_place(term)
        self.mark_applied(batch)
        self.metrics.observe("updates_per_install", len(batch))
        self.install_wide(
            composite.delta,
            note=(
                f"batch of {len(batch)} update(s), sources"
                f" {sorted(merged)}"
            ),
        )

    # ------------------------------------------------------------------
    # Wave plumbing
    # ------------------------------------------------------------------
    def _local_wave_answer(
        self, index: int, term: PartialView, batch_delta: Delta | None
    ) -> PartialView:
        """Leftward-wave answer from the covered copy: ``R_j^new`` locally.

        The copy holds ``R_j^old`` (the pre-batch installed position);
        the batch's own merged delta at ``j`` is added by bilinearity of
        the join.  Updates queued after the drain are simply absent --
        exactly what remote-path compensation would have subtracted.
        """
        answer = self._live_locality().aux_answer(index, term)
        if batch_delta is not None:
            answer = answer.add_in_place(term.extend(index, batch_delta))
        return answer

    def _multi_query(
        self, index: int, partials: list[PartialView]
    ) -> Generator:
        """One batched sweep step: all active terms visit ``index`` at once.

        With a locality layer, fingerprint-equal partials are sent once
        (multi-query sharing) and cached answers satisfy the whole step
        locally when every unique partial hits.
        """
        send = list(partials)
        mapping = None
        locality = self._live_locality()
        if locality is not None:
            send, mapping = locality.dedupe(send)
            hits = locality.cache_lookup_many(index, send)
            if hits is not None:
                # A full cache hit is an answer routed this instant.
                self._pending_at_answer = self._queued_update_payloads()
                return locality.expand(hits, mapping)
        request = MultiQueryRequest(
            request_id=next_request_id(),
            partials=send,
            target_index=index,
        )
        self.send_query(index, request)
        msg, pending = yield self._answer_box.get()
        self._pending_at_answer = pending
        answer = msg.payload
        if answer.request_id != request.request_id:
            raise ProtocolError(
                f"answer {answer.request_id} does not match request"
                f" {request.request_id}"
            )
        if len(answer.partials) != len(send):
            raise ProtocolError(
                f"multi-query answer carries {len(answer.partials)} partials,"
                f" expected {len(send)}"
            )
        if mapping is None:
            return answer.partials
        return locality.expand(answer.partials, mapping)

    def _compensate_queued(
        self,
        index: int,
        answer: PartialView,
        temp: PartialView,
        floor: int | None = None,
    ) -> PartialView:
        """Subtract error terms of updates queued after the batch drained.

        Identical to SWEEP's local compensation: any update from
        ``index`` still in the queue when the answer was routed was --
        by FIFO -- applied before the query was evaluated, so its effect
        is rolled back locally to land on the batch-boundary state.

        ``floor`` (a per-view migration position, see
        ``MultiViewStateMixin._pending_floor``) restricts the subtraction
        to queued seqs above it: lower seqs are already in that view.
        """
        pending = self.pending_updates_from(index)
        if floor is not None:
            pending = [p for p in pending if p.seq > floor]
        if not pending:
            return answer
        self.metrics.increment("compensations")
        error = temp.extend(index, self.merged_pending_delta(pending))
        return answer.compensate(error)


__all__ = ["AdaptiveBatchCap", "BatchedSweepWarehouse"]
