"""Online initial load: building the view while updates already stream.

The paper side-steps initialization: *"We assume that the view V is
initialized to the correct value"* (Section 5.1).  A real warehouse has to
*bootstrap* -- and doing it naively (snapshot every source, join) is wrong
for exactly the reason incremental queries are wrong: the snapshots are
taken at different times while updates race.

SWEEP's own machinery solves this.  Treat source 1's full snapshot as the
"update delta" of a sweep: request the snapshot, seed the partial view
change with it, and sweep right across sources ``2..n`` with the standard
on-line error correction.  Bookkeeping mirrors ViewChange:

* source-1 updates delivered *before* the snapshot answer are already
  inside the snapshot (FIFO!) -- they are absorbed (removed from the
  update queue and counted into the installed state's vector);
* updates from later sources queued when their answer arrives are
  compensated out, so the installed view reflects those sources' states
  *before* the queued updates -- which are then replayed normally, each
  producing its own consistent install.

The result: the first installed state is exactly ``V`` at a well-defined
source state vector, and every subsequent install is maintained by plain
SWEEP -- no quiescence, no cold-start downtime.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.durability.encoding import snapshot_delta
from repro.relational.incremental import PartialView
from repro.sources.messages import SnapshotRequest, next_request_id
from repro.warehouse.errors import ProtocolError
from repro.warehouse.sweep import SweepWarehouse


class BootstrapSweepWarehouse(SweepWarehouse):
    """SWEEP that starts from an **empty** view and loads itself online.

    Any ``initial_view`` passed in is ignored -- the point is to build it.
    """

    algorithm_name = "bootstrap-sweep"

    def __init__(self, *args, **kwargs):
        kwargs["initial_view"] = None
        super().__init__(*args, **kwargs)
        self.bootstrapped = False

    # ------------------------------------------------------------------
    def _update_view(self) -> Generator:
        yield from self._bootstrap()
        # continue with the normal SWEEP loop
        yield from super()._update_view()

    def _bootstrap(self) -> Generator:
        """The initial-load sweep."""
        request = SnapshotRequest(request_id=next_request_id())
        self.send_query(1, request)
        msg, pending = yield self._answer_box.get()
        self._pending_at_answer = pending
        answer = msg.payload
        if answer.request_id != request.request_id:
            raise ProtocolError(
                f"snapshot answer {answer.request_id} does not match"
                f" request {request.request_id}"
            )

        # Source-1 updates delivered before the snapshot are inside it:
        # absorb them so they are not replayed later.
        absorbed = [n for n in pending if n.source_index == 1]
        for queued in list(self.update_queue.peek_all()):
            if queued.payload in absorbed:
                self.update_queue.remove(queued)
        self.metrics.increment("bootstrap_absorbed", len(absorbed))

        # The snapshot travels delta-encoded (codec-v2 flat rows, the
        # checkpoint encoder's format); seed the sweep straight from it.
        partial = PartialView.initial(
            self.view, 1, snapshot_delta(answer, self.view.schema_of(1))
        )
        for j in range(2, self.view.n_relations + 1):
            temp = partial
            got = yield from self.query_and_await(j, partial)
            partial = self._compensate(j, got, temp)

        self.mark_applied(absorbed)
        self.install_wide(
            partial.delta,
            note=f"bootstrap load ({len(absorbed)} update(s) absorbed)",
        )
        self.bootstrapped = True
        if self.trace:
            self.trace.record(
                self.sim.now, "warehouse", "bootstrap-done",
                f"{self.store.relation.distinct_count} view rows",
            )


__all__ = ["BootstrapSweepWarehouse"]
