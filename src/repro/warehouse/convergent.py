"""Naive incremental maintenance without compensation (anomaly baseline).

This is the straw-man of Section 3: on each update, sweep the other sources
exactly like SWEEP but *never compensate* -- whatever error terms concurrent
updates injected into the answers are installed into the view.  Commercial
convergence-only products (the paper cites Red Brick) accept comparable
anomalies.

The view store runs in tolerant mode: a delete of a non-derived tuple is
clamped at count zero and counted as an **anomaly** instead of crashing.
With no concurrency the algorithm is exact; under concurrency the anomaly
counter and the consistency oracle document precisely how it fails --
including final states that never converge.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.relational.incremental import PartialView
from repro.sources.messages import UpdateNotice
from repro.warehouse.base import QueueDrivenWarehouse


class ConvergentWarehouse(QueueDrivenWarehouse):
    """SWEEP's sweep without SWEEP's local error correction."""

    algorithm_name = "convergent"

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("strict_view", False)
        super().__init__(*args, **kwargs)

    def view_change(self, notice: UpdateNotice) -> Generator:
        i = notice.source_index
        partial = PartialView.initial(self.view, i, notice.delta)
        sweep_order = list(range(i - 1, 0, -1)) + list(
            range(i + 1, self.view.n_relations + 1)
        )
        for j in sweep_order:
            partial = yield from self.query_and_await(j, partial)
            # No compensation: interfering updates corrupt the answer.
        return partial

    @property
    def anomalies(self) -> int:
        """Impossible deletes absorbed by the tolerant view store."""
        return self.store.anomalies


__all__ = ["ConvergentWarehouse"]
