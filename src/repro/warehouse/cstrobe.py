"""C-Strobe (ZGMW96): complete consistency via compensating queries.

C-Strobe processes one update at a time (like SWEEP) but compensates
*remotely*: it cannot isolate which updates actually interfered, so it
conservatively treats every update delivered between query start and
completion as concurrent (Section 4) and relies on the key assumption to
make over-compensation harmless.

Per dequeued update:

* a **delete** is incorporated locally -- every view row carrying the
  deleted tuple's key is removed -- with zero messages;
* an **insert** launches a distributed walk evaluating
  ``R1 |><| ... |><| Delta-Ri |><| ... |><| Rn`` source by source.  On
  completion, updates found in the queue are compensated:

  - concurrent *inserts* at ``Rj`` are cancelled locally by dropping answer
    rows that carry the inserted tuple's key;
  - concurrent *deletes* at ``Rj`` may have removed rows the answer should
    contain, so a **compensating walk** re-evaluates the term with the
    deleted tuples substituted back in (grouped per source, the paper's
    ``(n-1)!``-instead-of-``K^(n-2)`` optimization) -- and those walks
    recursively compensate in turn.

All term results are summed, duplicates suppressed via keys, rows already
present in the view dropped, and the result installed as the state for
exactly this update -- complete consistency, at a message cost that
explodes with the number of concurrent updates (the S2 experiment).
"""

from __future__ import annotations

from collections.abc import Generator

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.sources.messages import UpdateNotice
from repro.warehouse.base import QueueDrivenWarehouse
from repro.warehouse.keys import (
    deduplicate,
    deletion_delta_for_key,
    drop_rows_matching_key,
    key_of_row,
    require_key_preserving,
)


class CStrobeWarehouse(QueueDrivenWarehouse):
    """The C-Strobe algorithm (complete consistency, remote compensation)."""

    algorithm_name = "c-strobe"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        require_key_preserving(self.view, "C-Strobe")

    # ------------------------------------------------------------------
    def process_update(self, notice: UpdateNotice) -> Generator:
        deletes = notice.delta.negative_part()
        inserts = notice.delta.positive_part()

        view_delta = Delta(self.view.view_schema)

        # Deletes are incorporated locally (unique-key assumption).
        schema = self.view.schema_of(notice.source_index)
        positions = self.view.key_indices_in_view(notice.source_index)
        for row in deletes.rows():
            removal = deletion_delta_for_key(
                self.store.relation, positions, key_of_row(schema, row)
            )
            view_delta = view_delta.merged(removal)
            self.metrics.increment("cstrobe_local_deletes")

        if inserts:
            walked = yield from self._walk_and_compensate(
                {notice.source_index: Delta.from_relation(inserts)}
            )
            # Suppress duplicates from over-compensation, and rows that the
            # view (as updated by this notice's local deletes) already has.
            walked = deduplicate(walked)
            for row in walked.rows():
                if self.store.relation.count(row) + view_delta.count(row) == 0:
                    view_delta.add(row, 1)

        self.mark_applied([notice])
        self.install_view_delta(
            view_delta,
            note=f"c-strobe src={notice.source_index} seq={notice.seq}",
        )

    def view_change(self, notice: UpdateNotice) -> Generator:
        raise NotImplementedError("C-Strobe overrides process_update directly")

    # ------------------------------------------------------------------
    def _walk_and_compensate(self, subs: dict[int, Delta]) -> Generator:
        """Evaluate one join term remotely, then compensate its races.

        ``subs`` maps relation indices to the deltas standing in for them
        (evaluated locally, no message).  Returns a finalized view-schema
        delta including all recursive compensation terms.
        """
        seed_index = min(subs)
        partial = PartialView.initial(self.view, seed_index, subs[seed_index])
        for j in range(seed_index - 1, 0, -1):
            partial = yield from self._walk_step(partial, j, subs)
        for j in range(seed_index + 1, self.view.n_relations + 1):
            partial = yield from self._walk_step(partial, j, subs)

        result = self.view.finalize(partial.delta)
        if not isinstance(result, Delta):
            result = Delta.from_relation(result)

        # Conservative concurrency window: everything still queued was
        # delivered after the current update began processing.
        concurrent = [
            msg.payload
            for msg in self.update_queue.peek_all()
            if msg.payload.source_index not in subs
        ]
        # Keys inserted within the window, per source: their rows must be
        # dropped from every answer, and a later in-window delete of such a
        # row needs NO restoration (the row did not exist in the state this
        # update's view change represents).
        inserted_keys: dict[int, set[tuple]] = {}
        for other in concurrent:
            j = other.source_index
            j_schema = self.view.schema_of(j)
            for row, count in other.delta.items():
                if count > 0:
                    inserted_keys.setdefault(j, set()).add(
                        key_of_row(j_schema, row)
                    )
        compensations: dict[int, Delta] = {}
        for other in concurrent:
            j = other.source_index
            j_schema = self.view.schema_of(j)
            j_positions = self.view.key_indices_in_view(j)
            for row, count in other.delta.items():
                key = key_of_row(j_schema, row)
                if count > 0:
                    # concurrent insert: cancel its error term locally
                    result = drop_rows_matching_key(result, j_positions, key)
                    self.metrics.increment("cstrobe_local_insert_fixes")
                elif key not in inserted_keys.get(j, ()):
                    # concurrent delete of a pre-window row: it may be
                    # missing from the answer; queue a compensating walk
                    # with the tuple substituted back
                    comp = compensations.setdefault(j, Delta(j_schema))
                    comp.add(row, -count)  # substitute the tuple positively

        for j, restored in compensations.items():
            self.metrics.increment("cstrobe_compensating_queries")
            deeper_subs = dict(subs)
            deeper_subs[j] = restored
            deeper = yield from self._walk_and_compensate(deeper_subs)
            result = result.merged(deeper)
        return result

    def _walk_step(
        self, partial: PartialView, index: int, subs: dict[int, Delta]
    ) -> Generator:
        """Extend the walk by one relation: locally if substituted, else query."""
        if index in subs:
            return partial.extend(index, subs[index])
        answer = yield from self.query_and_await(index, partial)
        return answer


__all__ = ["CStrobeWarehouse"]
