"""ECA -- the Eager Compensating Algorithm (ZGMHW95), centralized baseline.

ECA addresses the single-source warehouse: one site stores every base
relation (our :class:`~repro.sources.central.CentralSource`).  When update
``U_i`` arrives while queries for earlier updates are still unanswered, the
incremental query for ``U_i`` is *eagerly compensated*: it subtracts, for
every pending query ``Q_j``, the interaction terms ``Q_j<U_i>`` that
``Q_j``'s answer will (by the single-site FIFO argument, provably) contain.

Concretely each query is a sum of signed join terms
(:class:`~repro.sources.messages.EcaQueryTerm`); for a new update ``U_i``
at relation ``r``::

    Q_i = V<U_i>  -  sum over pending Q_j, over terms t of Q_j with r not
                     yet substituted, of  t + {r := Delta_i}  (sign flipped)

Answers accumulate in COLLECT; when the unanswered-query set empties
(quiescence), COLLECT is installed as one view change.  This reproduces
ECA's documented costs: O(1) messages per update but compensating-query
payloads growing quadratically with the number of interfering updates, and
no installs without quiescence.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field

from repro.relational.delta import Delta
from repro.sources.messages import (
    EcaAnswer,
    EcaQuery,
    EcaQueryTerm,
    UpdateNotice,
    next_request_id,
)
from repro.warehouse.base import WarehouseBase
from repro.warehouse.errors import ProtocolError, UnsupportedViewError


@dataclass
class _PendingQuery:
    """A query in the unanswered-query set (UQS)."""

    query: EcaQuery
    notice: UpdateNotice
    sent_at: float = 0.0
    collected: list[UpdateNotice] = field(default_factory=list)


class EcaWarehouse(WarehouseBase):
    """Event-driven ECA over a single central source."""

    algorithm_name = "eca"

    #: Conventional channel key for the central source.
    CENTRAL = 0

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if set(self.query_channels) != {self.CENTRAL}:
            raise UnsupportedViewError(
                "ECA requires exactly one (central) source site; got channels"
                f" {sorted(self.query_channels)}"
            )
        self.uqs: dict[int, _PendingQuery] = {}
        self.collect = Delta(self.view.wide_schema)
        self._collected_notices: list[UpdateNotice] = []
        self.sim.spawn("wh-ECA", self._run())

    # ------------------------------------------------------------------
    def pending_work(self) -> bool:
        return bool(self.uqs)

    # ------------------------------------------------------------------
    def _run(self) -> Generator:
        while True:
            msg = yield self.inbox.get()
            if msg.kind == "update":
                self.note_delivery(msg.payload)
                self._handle_update(msg.payload)
            elif msg.kind == "answer":
                self._handle_answer(msg.payload)
            else:  # pragma: no cover - defensive
                raise ProtocolError(f"unexpected message kind {msg.kind!r}")

    # ------------------------------------------------------------------
    def _handle_update(self, notice: UpdateNotice) -> None:
        """Formulate the eagerly compensated query for this update."""
        r = notice.source_index
        terms = [EcaQueryTerm(substitutions={r: notice.delta.copy()}, sign=+1)]
        for pending in self.uqs.values():
            for term in pending.query.terms:
                if r in term.substitutions:
                    # The term never reads relation r; U_i cannot leak into it.
                    continue
                subs = dict(term.substitutions)
                subs[r] = notice.delta.copy()
                terms.append(EcaQueryTerm(substitutions=subs, sign=-term.sign))
        query = EcaQuery(request_id=next_request_id(), terms=terms)
        self.metrics.observe("eca_query_terms", len(terms))
        self.metrics.observe("eca_query_rows", query.payload_size())
        self.uqs[query.request_id] = _PendingQuery(
            query=query, notice=notice, sent_at=self.sim.now
        )
        self.send_query(self.CENTRAL, query)
        if self.trace:
            self.trace.record(
                self.sim.now, "warehouse", "eca-query",
                f"req={query.request_id} {len(terms)} terms",
            )

    # ------------------------------------------------------------------
    def _handle_answer(self, answer: EcaAnswer) -> None:
        pending = self.uqs.pop(answer.request_id, None)
        if pending is None:
            raise ProtocolError(f"answer for unknown query {answer.request_id}")
        self.collect = self.collect.merged(answer.delta)
        self._collected_notices.append(pending.notice)
        if not self.uqs:
            # Quiescence: install COLLECT as one view change.
            self.mark_applied(self._collected_notices)
            self.metrics.observe(
                "updates_per_install", len(self._collected_notices)
            )
            self.install_wide(
                self.collect,
                note=f"ECA quiescent install of {len(self._collected_notices)}"
                " update(s)",
            )
            self.collect = Delta(self.view.wide_schema)
            self._collected_notices = []


__all__ = ["EcaWarehouse"]
