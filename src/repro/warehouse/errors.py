"""Warehouse-level exceptions."""

from __future__ import annotations


class WarehouseError(Exception):
    """Base class for warehouse runtime errors."""


class UnsupportedViewError(WarehouseError):
    """The algorithm's assumptions do not hold for this view.

    Raised e.g. when Strobe or C-Strobe is given a view whose projection
    does not retain a key of every base relation (their defining assumption,
    Table 1), or when ECA is wired to more than one source site.
    """


class ProtocolError(WarehouseError):
    """An unexpected message arrived (mismatched request id or kind)."""
