"""Transaction-SWEEP: global (multi-source) transactions, atomically.

Section 2 classifies updates; types 1 and 2 are what SWEEP handles, and
the paper notes that type 3 -- *global transactions* whose updates span
several sources -- "can be extended" using the approaches of ZGMW96.
This module supplies that extension on top of SWEEP:

* each source applies and forwards its part of the transaction as usual,
  tagged with ``(txn_id, txn_total)``;
* the warehouse **holds** dequeued parts until the last one arrives; the
  transaction takes effect as one atomic install at that point;
* while a source has a held part, *subsequent updates from that source*
  are **deferred** (per-source FIFO order must be preserved, otherwise an
  installed state could reflect a later update without an earlier one,
  which corresponds to no valid source state).  Updates from other sources
  proceed normally -- their sweeps compensate for held and deferred
  updates exactly like queued ones, since all of them were applied at
  their sources before forwarding and therefore contaminate every later
  answer from those sources;
* once complete, the parts run their ViewChanges back to back -- each part
  compensating the still-held later parts, which telescopes exactly -- and
  the merged view change is installed **atomically**: no installed state
  ever exposes a partial transaction
  (:func:`repro.consistency.atomicity.check_transaction_atomicity`).

Consistency: per-update complete consistency necessarily relaxes (several
updates become one install, and deferral reorders installs *across*
sources); runs remain **strongly consistent** -- every install matches a
monotone per-source prefix vector -- and atomic.

Deadlock freedom: parts of one transaction commit at their sources in a
single global order (same timestamp), so per-source delivery orders can
never disagree about two transactions; a held transaction is always
completable once its remaining parts drain.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.sources.messages import UpdateNotice
from repro.warehouse.sweep import SweepWarehouse


class GlobalSweepWarehouse(SweepWarehouse):
    """SWEEP extended with atomic handling of global transactions."""

    algorithm_name = "global-sweep"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: parts collected per open transaction, in delivery order.
        self._open_txns: dict[str, list[UpdateNotice]] = {}
        #: flat view of all held parts (compensation + blocking lookups).
        self._held: list[UpdateNotice] = []
        #: updates waiting for their source's held part, delivery order.
        self._deferred: list[UpdateNotice] = []

    # ------------------------------------------------------------------
    # Interference bookkeeping
    # ------------------------------------------------------------------
    def pending_updates_from(self, index: int) -> list[UpdateNotice]:
        """Queue snapshot plus held/deferred updates from ``index``.

        Held parts and deferred updates were applied at their sources
        before they were forwarded, so -- unlike queued updates, which can
        race an answer -- they interfere with *every* later answer from
        that source.
        """
        pending = super().pending_updates_from(index)
        extra = [
            n
            for n in self._held + self._deferred
            if n.source_index == index
        ]
        return pending + extra

    def _source_blocked(self, index: int) -> bool:
        return any(n.source_index == index for n in self._held)

    # ------------------------------------------------------------------
    # Update processing
    # ------------------------------------------------------------------
    def process_update(self, notice: UpdateNotice) -> Generator:
        yield from self._handle(notice)
        yield from self._drain_deferred()

    def _handle(self, notice: UpdateNotice) -> Generator:
        if self._source_blocked(notice.source_index):
            self._deferred.append(notice)
            self.metrics.increment("txn_updates_deferred")
            if self.trace:
                self.trace.record(
                    self.sim.now, "warehouse", "txn-defer", notice
                )
            return
        if notice.txn_id is None:
            yield from super().process_update(notice)
            return

        parts = self._open_txns.setdefault(notice.txn_id, [])
        parts.append(notice)
        self._held.append(notice)
        self.metrics.increment("txn_parts_held")
        if len(parts) < notice.txn_total:
            if self.trace:
                self.trace.record(
                    self.sim.now, "warehouse", "txn-hold",
                    f"{notice.txn_id} {len(parts)}/{notice.txn_total}",
                )
            return
        del self._open_txns[notice.txn_id]
        yield from self._install_transaction(notice.txn_id, parts)

    def _install_transaction(
        self, txn_id: str, parts: list[UpdateNotice]
    ) -> Generator:
        """Run all parts' ViewChanges and install the merged delta once."""
        merged = None
        for part in parts:
            # Folded parts stop counting as interference for the remaining
            # parts' sweeps -- their effects now belong in the view change.
            self._held.remove(part)
            partial = yield from self.view_change(part)
            merged = partial if merged is None else merged.add(partial)
        self.mark_applied(parts)
        self.metrics.increment("txns_installed")
        self.metrics.observe("txn_size", len(parts))
        self.install_wide(
            merged.delta,
            note=f"global txn {txn_id} ({len(parts)} parts)",
        )

    def _drain_deferred(self) -> Generator:
        """Process deferred updates whose sources became unblocked.

        Handling a deferred update can complete another transaction and
        unblock further sources, so loop to a fixed point; relative order
        of deferred updates is preserved.
        """
        progress = True
        while progress:
            progress = False
            for i, notice in enumerate(self._deferred):
                if not self._source_blocked(notice.source_index):
                    del self._deferred[i]
                    yield from self._handle(notice)
                    progress = True
                    break


__all__ = ["GlobalSweepWarehouse"]
