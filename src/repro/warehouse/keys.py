"""Key-attribute utilities for the Strobe family (ZGMW96).

Strobe and C-Strobe assume the view projection retains a key of every base
relation, which lets the warehouse (a) locate every view row derived from a
given base tuple and (b) suppress duplicate rows produced by error terms.
These helpers implement those two primitives over the bag engine.
"""

from __future__ import annotations

from repro.relational.delta import Delta
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.view import ViewDefinition
from repro.warehouse.errors import UnsupportedViewError


def require_key_preserving(view: ViewDefinition, algorithm: str) -> None:
    """Raise unless the view keeps a key of every base relation."""
    if not view.projection_keeps_all_keys():
        raise UnsupportedViewError(
            f"{algorithm} requires the view projection to retain a key of"
            f" every base relation (ZGMW96 assumption); view {view.name!r}"
            " does not"
        )


def key_of_row(schema: Schema, row: tuple) -> tuple:
    """The key attribute values of a base-relation row."""
    indices = schema.project_indices(schema.key)
    return tuple(row[i] for i in indices)


def view_rows_matching_key(
    relation: Relation,
    key_positions: tuple[int, ...],
    key: tuple,
) -> list[tuple]:
    """All view rows whose relation-``i`` key columns equal ``key``."""
    return [
        row
        for row in relation.rows()
        if tuple(row[p] for p in key_positions) == key
    ]


def deletion_delta_for_key(
    relation: Relation,
    key_positions: tuple[int, ...],
    key: tuple,
) -> Delta:
    """A delta removing every view row derived from the keyed base tuple."""
    delta = Delta(relation.schema)
    for row in view_rows_matching_key(relation, key_positions, key):
        delta.add(row, -relation.count(row))
    return delta


def drop_rows_matching_key(
    delta: Delta,
    key_positions: tuple[int, ...],
    key: tuple,
) -> Delta:
    """Remove (zero out) rows of ``delta`` whose key columns equal ``key``.

    Used to filter in-flight query answers for concurrent deletes (Strobe)
    and concurrent inserts (C-Strobe).
    """
    out = Delta(delta.schema)
    for row, count in delta.items():
        if tuple(row[p] for p in key_positions) != key:
            out.add(row, count)
    return out


def deduplicate(delta: Delta) -> Delta:
    """Clamp positive counts to 1 and drop non-positive rows.

    Strobe-family duplicate suppression: with keys of every relation in the
    view, each legitimate row has exactly one derivation, so any higher
    count is an error-term duplicate.
    """
    out = Delta(delta.schema)
    for row, count in delta.items():
        if count > 0:
            out.add(row, 1)
    return out


__all__ = [
    "deduplicate",
    "deletion_delta_for_key",
    "drop_rows_matching_key",
    "key_of_row",
    "require_key_preserving",
    "view_rows_matching_key",
]
