"""Query-locality layer: auxiliary source copies + answer caching.

Eliminates maintenance-query round trips by answering sweep steps at the
warehouse: covered sources from a self-maintained local copy (zero
messages, zero compensation), non-covered sources from a
delta-invalidated answer cache.  See docs/locality.md.
"""

from repro.warehouse.locality.aux import AuxiliaryStore
from repro.warehouse.locality.cache import AnswerCache, fingerprint
from repro.warehouse.locality.planner import (
    MODES,
    SUPPORTED_ALGORITHMS,
    QueryLocality,
    build_locality,
    plan_coverage,
)

__all__ = [
    "MODES",
    "SUPPORTED_ALGORITHMS",
    "AnswerCache",
    "AuxiliaryStore",
    "QueryLocality",
    "build_locality",
    "fingerprint",
    "plan_coverage",
]
