"""Warehouse-local auxiliary copies of source relations.

The paper's maintenance queries exist because the warehouse does *not*
hold the base relations.  An :class:`AuxiliaryStore` removes that
round trip for selected ("covered") sources: it keeps a full local copy
of each covered relation, advanced in-line from the very same FIFO
update stream the maintenance algorithms consume.

The copy is kept at the warehouse's **installed position**: it is
advanced exactly when an update's effects are marked applied to the view
(:meth:`~repro.warehouse.base.WarehouseBase.mark_applied`), never when
the update is merely delivered.  That choice is what makes the local
answer *compensation-free*:

* sequential SWEEP processes one update at a time, so when update ``u``
  sweeps, every update delivered before ``u`` is already installed --
  the copy equals ``R_j`` at exactly the state remote answer +
  local compensation would reconstruct (the anomaly window is empty);
* the batched scheduler installs a whole batch at once, so during the
  waves the copy is exactly ``R_j^old`` (the rightward wave's target)
  and ``R_j^old + Delta-R_j(batch)`` is the leftward wave's target --
  both are local algebra, no messages;
* the pipelined warehouse patches the copy forward with the
  delivered-but-uninstalled prefix of its delivery log (see
  ``PipelinedSweepWarehouse._local_answer``).

Deltas are applied with :meth:`~repro.relational.relation.Relation.
apply_delta`, which validates before applying -- a drifted copy (a
delete of a row the copy does not hold) fails loudly instead of serving
a silently wrong local answer.
"""

from __future__ import annotations

from repro.relational.delta import Delta
from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition


class AuxiliaryStore:
    """Per-source local relation copies, keyed by 1-based chain index."""

    def __init__(self, primary: ViewDefinition):
        self.primary = primary
        self._copies: dict[int, Relation] = {}

    # ------------------------------------------------------------------
    def seed(self, index: int, relation: Relation) -> None:
        """Install a copy for source ``index`` (copied, never aliased)."""
        expected = self.primary.schema_of(index)
        if relation.schema.attributes != expected.attributes:
            from repro.relational.errors import SchemaError

            raise SchemaError(
                f"auxiliary seed for {self.primary.name_of(index)!r} has"
                f" schema {list(relation.schema.attributes)!r}, expected"
                f" {list(expected.attributes)!r}"
            )
        self._copies[index] = relation.copy()

    def drop(self, index: int) -> None:
        """Stop covering ``index`` (recovery demotion)."""
        self._copies.pop(index, None)

    # ------------------------------------------------------------------
    def __contains__(self, index: int) -> bool:
        return index in self._copies

    def indexes(self) -> list[int]:
        return sorted(self._copies)

    def contents(self, index: int) -> Relation:
        """The live copy (callers must not mutate it)."""
        return self._copies[index]

    def apply(self, index: int, delta: Delta) -> None:
        """Advance the copy by one installed update's delta."""
        self._copies[index].apply_delta(delta)

    # ------------------------------------------------------------------
    def rows_of(self, index: int) -> int:
        return self._copies[index].distinct_count

    def rows_total(self) -> int:
        return sum(rel.distinct_count for rel in self._copies.values())

    def by_name(self) -> dict[str, Relation]:
        """Copies keyed by source relation name (checkpoint encoding)."""
        return {
            self.primary.name_of(index): rel
            for index, rel in self._copies.items()
        }

    def __repr__(self) -> str:
        return (
            f"AuxiliaryStore(covered={self.indexes()},"
            f" rows={self.rows_total()})"
        )


__all__ = ["AuxiliaryStore"]
