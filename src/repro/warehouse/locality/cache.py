"""Delta-invalidated answer cache for non-covered sources.

Memoizes ``(source, query-fingerprint) -> answer`` for sweep-step
queries.  The fingerprint is the partial view change itself (view name,
covered range, signed rows), because the answer ``partial |><| R_j``
depends on nothing else.

Entries are kept at the warehouse's **delivered position**: an entry is
inserted the instant its answer is routed by the dispatcher (by the FIFO
argument, the answer then reflects exactly the updates from its source
delivered so far), and every subsequently delivered update from that
source patches the entry in place with the local join
``query |><| Delta-R_j`` -- the same bilinearity that powers SWEEP's
compensation.  A cache hit is therefore indistinguishable from a remote
answer arriving at that instant, and the calling algorithm runs its
ordinary compensation against the current queue/log unchanged.

Entries are *invalidated* (dropped) rather than patched when they grow
past ``max_entry_rows``, and evicted LRU-first when the total row budget
is exceeded.  The cache is always rebuilt cold after crash recovery.
"""

from __future__ import annotations

from repro.relational.delta import Delta
from repro.relational.incremental import PartialView
from repro.sources.messages import (
    MultiQueryAnswer,
    MultiQueryRequest,
    QueryAnswer,
    QueryRequest,
)


def fingerprint(partial: PartialView) -> tuple:
    """Content key of a sweep-step query: view, range, signed rows."""
    return (
        partial.view.name,
        partial.lo,
        partial.hi,
        frozenset(partial.delta.items()),
    )


class _Entry:
    __slots__ = ("index", "query", "answer")

    def __init__(self, index: int, query: PartialView, answer: PartialView):
        self.index = index
        self.query = query
        self.answer = answer

    @property
    def rows(self) -> int:
        return self.answer.delta.distinct_count


class AnswerCache:
    """LRU answer cache patched in place from the observed update stream."""

    def __init__(
        self,
        budget_rows: int = 0,
        max_entry_rows: int = 4096,
        on_event=None,
    ):
        #: total answer rows allowed across entries; 0 = unbounded.
        self.budget_rows = budget_rows
        #: entries patched past this many rows are invalidated instead.
        self.max_entry_rows = max_entry_rows
        self._on_event = on_event
        #: insertion order doubles as LRU order (hits reinsert).
        self._entries: dict[tuple, _Entry] = {}
        self._by_source: dict[int, set[tuple]] = {}
        #: request_id -> [(source, key, query partial), ...] awaiting answers.
        self._registered: dict[int, list[tuple[int, tuple, PartialView]]] = {}
        self.stats = {
            "hits": 0,
            "misses": 0,
            "patches": 0,
            "evictions": 0,
            "invalidations": 0,
        }

    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        self.stats[name] += amount
        if self._on_event is not None:
            self._on_event(name, amount)

    def _key(self, index: int, partial: PartialView) -> tuple:
        return (index, fingerprint(partial))

    # ------------------------------------------------------------------
    # Fill path: register at send time, insert at answer-routing time
    # ------------------------------------------------------------------
    def register(self, request: object) -> None:
        """Remember an outbound query so its answer can be cached.

        Must be called at send time; the matching insertion happens in
        :meth:`on_answer_routed`, i.e. at the dispatcher, *before* any
        later-delivered update can interleave -- that is what pins the
        entry to the delivered position the FIFO argument guarantees.
        """
        if isinstance(request, QueryRequest):
            pairs = [(request.target_index, request.partial)]
        elif isinstance(request, MultiQueryRequest):
            pairs = [(request.target_index, p) for p in request.partials]
        else:
            return
        self._registered[request.request_id] = [
            (index, self._key(index, partial), partial)
            for index, partial in pairs
        ]

    def on_answer_routed(self, payload: object) -> None:
        """Insert answers for a previously registered request."""
        request_id = getattr(payload, "request_id", None)
        if request_id is None:
            return
        registered = self._registered.pop(request_id, None)
        if registered is None:
            return
        if isinstance(payload, QueryAnswer):
            answers = [payload.partial]
        elif isinstance(payload, MultiQueryAnswer):
            answers = payload.partials
        else:
            return
        if len(answers) != len(registered):
            return  # malformed; the protocol layer raises on consumption
        for (index, key, query), answer in zip(registered, answers):
            self._entries.pop(key, None)
            entry = _Entry(
                index,
                query,
                PartialView(
                    answer.view, answer.lo, answer.hi, answer.delta.copy()
                ),
            )
            self._entries[key] = entry
            self._by_source.setdefault(index, set()).add(key)
        self._enforce_budget()

    def drop_registered(self, request_id: int) -> None:
        self._registered.pop(request_id, None)

    # ------------------------------------------------------------------
    # Hit path
    # ------------------------------------------------------------------
    def lookup(self, index: int, partial: PartialView) -> PartialView | None:
        """A copy of the cached answer at the delivered position, or None."""
        key = self._key(index, partial)
        entry = self._entries.pop(key, None)
        if entry is None:
            self._count("misses")
            return None
        self._entries[key] = entry  # LRU touch
        self._count("hits")
        return PartialView(
            entry.answer.view,
            entry.answer.lo,
            entry.answer.hi,
            entry.answer.delta.copy(),
        )

    def lookup_many(
        self, index: int, partials: list[PartialView]
    ) -> list[PartialView] | None:
        """All-or-nothing lookup for one batched wave step.

        Returns answers only when *every* partial hits; a partial hit
        still goes remote (the whole request is one message anyway), so
        only the missing fingerprints are counted as misses.
        """
        keys = [self._key(index, p) for p in partials]
        missing = sum(1 for key in keys if key not in self._entries)
        if missing:
            self._count("misses", missing)
            return None
        return [self.lookup(index, p) for p in partials]

    # ------------------------------------------------------------------
    # Delta patching (the "delta-invalidated" part)
    # ------------------------------------------------------------------
    def on_delta(self, index: int, delta: Delta) -> None:
        """Patch every entry for ``index`` with ``query |><| delta``."""
        keys = self._by_source.get(index)
        if not keys:
            return
        for key in list(keys):
            entry = self._entries.get(key)
            if entry is None:
                keys.discard(key)
                continue
            patch = entry.query.extend(index, delta)
            if not patch.delta:
                continue
            entry.answer.add_in_place(patch)
            self._count("patches")
            if entry.rows > self.max_entry_rows:
                self._remove(key)
                self._count("invalidations")

    # ------------------------------------------------------------------
    # Budget / lifecycle
    # ------------------------------------------------------------------
    def _remove(self, key: tuple) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            bucket = self._by_source.get(entry.index)
            if bucket is not None:
                bucket.discard(key)

    def _enforce_budget(self) -> None:
        if not self.budget_rows:
            return
        while self.rows_total() > self.budget_rows and len(self._entries) > 1:
            oldest = next(iter(self._entries))
            self._remove(oldest)
            self._count("evictions")

    def rows_total(self) -> int:
        return sum(entry.rows for entry in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Cold restart: recovery never trusts a pre-crash cache."""
        self._entries.clear()
        self._by_source.clear()
        self._registered.clear()

    def __repr__(self) -> str:
        return (
            f"AnswerCache(entries={len(self._entries)},"
            f" rows={self.rows_total()}, stats={self.stats})"
        )


__all__ = ["AnswerCache", "fingerprint"]
