"""Per-view query planning: covered / cached / remote, plus query dedupe.

:class:`QueryLocality` is the facade the warehouse algorithms talk to.
It owns one :class:`~repro.warehouse.locality.aux.AuxiliaryStore` for
covered sources, one :class:`~repro.warehouse.locality.cache.AnswerCache`
for cached sources, and the per-source decision table the planner made:

* ``aux``    -- a local copy answers the sweep step with zero messages
  and zero compensation (see aux.py for the position argument);
* ``cache``  -- answers are memoized at the delivered position and
  patched from observed deltas; a hit behaves exactly like a remote
  answer routed this instant, so ordinary compensation applies;
* ``remote`` -- the paper's round trip, unchanged.

Planning modes (the CLI's ``--locality`` knob):

``off``    no locality layer at all (``build_locality`` returns None);
``aux``    cover every source whose initial copy fits the row budget
           (smallest relations first; budget 0 = unlimited), rest remote;
``cache``  no copies, every source answer-cached;
``auto``   cover what fits the budget, cache the rest.

The planner also dedupes identical per-view queries inside a composite
multi-query (:meth:`QueryLocality.dedupe`): fingerprint-equal partials
are sent once and the answer is fanned back out, with fresh deltas for
the duplicate uses so downstream in-place algebra never aliases.

One :class:`QueryLocality` serves exactly one warehouse: its auxiliary
position tracks that warehouse's installs.  Build a fresh one per
warehouse/shard (:func:`build_locality`).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.relational.incremental import PartialView
from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition
from repro.sources.messages import UpdateNotice
from repro.warehouse.locality.aux import AuxiliaryStore
from repro.warehouse.locality.cache import AnswerCache, fingerprint

MODES = ("off", "aux", "cache", "auto")

#: Algorithms whose sweep-step structure the locality layer understands.
#: (ECA/Strobe are event-driven and never issue sweep-step queries;
#: nested SWEEP's recursive interference handling assumes every answer
#: travelled the wire, so it is deliberately excluded.)
SUPPORTED_ALGORITHMS = frozenset(
    {
        "sweep",
        "batched-sweep",
        "pipelined-sweep",
        "multi-view-sweep",
        "multi-view-batched-sweep",
    }
)


def plan_coverage(
    primary: ViewDefinition,
    initial_states: dict[str, Relation],
    mode: str,
    budget_rows: int,
) -> dict[int, str]:
    """Decide aux / cache / remote for every source of the chain.

    Coverage is greedy smallest-first under the row budget, measured on
    the initial relation contents (copies grow with inserts afterwards;
    the budget is a planning-time knob, not a hard runtime limit).
    """
    if mode not in MODES:
        raise ValueError(f"unknown locality mode {mode!r}; pick one of {MODES}")
    n = primary.n_relations
    fallback = "cache" if mode in ("cache", "auto") else "remote"
    decisions = {index: fallback for index in range(1, n + 1)}
    if mode in ("aux", "auto"):
        sized = sorted(
            range(1, n + 1),
            key=lambda i: (
                initial_states[primary.name_of(i)].distinct_count,
                i,
            ),
        )
        used = 0
        for index in sized:
            rows = initial_states[primary.name_of(index)].distinct_count
            if budget_rows and used + rows > budget_rows:
                continue
            decisions[index] = "aux"
            used += rows
    return decisions


class QueryLocality:
    """The warehouse-side facade over aux store, answer cache and planner."""

    def __init__(
        self,
        primary: ViewDefinition,
        initial_states: dict[str, Relation],
        mode: str = "auto",
        budget_rows: int = 0,
    ):
        self.mode = mode
        self.budget_rows = budget_rows
        self.primary = primary
        self.decisions = plan_coverage(primary, initial_states, mode, budget_rows)
        self.aux = AuxiliaryStore(primary)
        for index, decision in self.decisions.items():
            if decision == "aux":
                self.aux.seed(index, initial_states[primary.name_of(index)])
        self.cache: AnswerCache | None = None
        if any(d == "cache" for d in self.decisions.values()):
            self.cache = AnswerCache(
                budget_rows=budget_rows, on_event=self._cache_event
            )
        self.metrics = None

    # ------------------------------------------------------------------
    def bind(self, metrics) -> None:
        """Attach the owning warehouse's metrics collector (ctor-time)."""
        self.metrics = metrics
        metrics.increment(
            "locality_covered_sources",
            sum(1 for d in self.decisions.values() if d == "aux"),
        )

    def _increment(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.increment(name, amount)

    def _cache_event(self, name: str, amount: int) -> None:
        self._increment(f"locality_cache_{name}", amount)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def decision(self, index: int) -> str:
        return self.decisions.get(index, "remote")

    def covers(self, index: int) -> bool:
        return self.decisions.get(index) == "aux"

    def cached(self, index: int) -> bool:
        return self.cache is not None and self.decisions.get(index) == "cache"

    # ------------------------------------------------------------------
    # Covered path
    # ------------------------------------------------------------------
    def aux_answer(self, index: int, partial: PartialView) -> PartialView | None:
        """Evaluate one sweep step locally against the covered copy."""
        if not self.covers(index):
            return None
        self._increment("locality_aux_hits")
        return partial.extend(index, self.aux.contents(index))

    # ------------------------------------------------------------------
    # Cached path
    # ------------------------------------------------------------------
    def cache_lookup(self, index: int, partial: PartialView) -> PartialView | None:
        if not self.cached(index):
            return None
        return self.cache.lookup(index, partial)

    def cache_lookup_many(
        self, index: int, partials: list[PartialView]
    ) -> list[PartialView] | None:
        if not self.cached(index):
            return None
        return self.cache.lookup_many(index, partials)

    def register(self, request: object) -> None:
        """Hook for every outbound query (see WarehouseBase.send_query)."""
        if self.cache is not None and self.cached(
            getattr(request, "target_index", -1)
        ):
            self.cache.register(request)

    def on_answer_routed(self, payload: object) -> None:
        """Dispatcher hook: cache the answer at the delivered position."""
        if self.cache is not None:
            self.cache.on_answer_routed(payload)

    # ------------------------------------------------------------------
    # Stream hooks (called by WarehouseBase)
    # ------------------------------------------------------------------
    def on_delivered(self, notice: UpdateNotice) -> None:
        """Patch cached answers the moment an update is delivered."""
        if self.cache is not None:
            self.cache.on_delta(notice.source_index, notice.delta)

    def on_installed(self, notice: UpdateNotice) -> None:
        """Advance the covered copy when the update's effects install."""
        if notice.source_index in self.aux:
            self.aux.apply(notice.source_index, notice.delta)

    # ------------------------------------------------------------------
    # Multi-query sharing
    # ------------------------------------------------------------------
    def dedupe(
        self, partials: Sequence[PartialView]
    ) -> tuple[list[PartialView], list[int] | None]:
        """Collapse fingerprint-equal partials of one composite query.

        Returns ``(unique, mapping)``; ``mapping`` is None when nothing
        collapsed.  Use :meth:`expand` to fan the answers back out.
        """
        order: dict[tuple, int] = {}
        unique: list[PartialView] = []
        mapping: list[int] = []
        for partial in partials:
            key = fingerprint(partial)
            slot = order.get(key)
            if slot is None:
                slot = len(unique)
                order[key] = slot
                unique.append(partial)
            mapping.append(slot)
        if len(unique) == len(partials):
            return list(partials), None
        self._increment("locality_dedup_saved", len(partials) - len(unique))
        return unique, mapping

    @staticmethod
    def expand(
        answers: Sequence[PartialView], mapping: list[int] | None
    ) -> list[PartialView]:
        """Fan deduped answers back out; duplicates get fresh deltas so
        downstream in-place algebra never aliases one signed bag."""
        if mapping is None:
            return list(answers)
        used: set[int] = set()
        out: list[PartialView] = []
        for slot in mapping:
            answer = answers[slot]
            if slot in used:
                answer = PartialView(
                    answer.view, answer.lo, answer.hi, answer.delta.copy()
                )
            else:
                used.add(slot)
            out.append(answer)
        return out

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def aux_relations(self) -> dict[str, Relation]:
        """Covered copies keyed by source name (checkpoint capture)."""
        return self.aux.by_name()

    def resume_from(self, aux_states: dict[str, Relation]) -> None:
        """Re-enter at a recovered position.

        Covered copies present in the checkpoint are seeded at the
        checkpoint's installed position (the same stable point the view
        states come from).  Covered sources the checkpoint does not hold
        are *demoted* -- to cached under ``auto``, else to remote -- which
        only costs messages, never correctness.  The answer cache is
        always rebuilt cold: its delivered position died with the crash.
        """
        demote_to = "cache" if self.mode in ("cache", "auto") else "remote"
        for index in list(self.aux.indexes()):
            name = self.primary.name_of(index)
            if name in aux_states:
                self.aux.seed(index, aux_states[name])
            else:
                self.aux.drop(index)
                self.decisions[index] = demote_to
                self._increment("locality_demotions")
                if demote_to == "cache" and self.cache is None:
                    self.cache = AnswerCache(
                        budget_rows=self.budget_rows, on_event=self._cache_event
                    )
        if self.cache is not None:
            self.cache.clear()

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, object]:
        return {
            "mode": self.mode,
            "budget_rows": self.budget_rows,
            "decisions": {
                self.primary.name_of(i): d for i, d in sorted(self.decisions.items())
            },
            "aux_rows": self.aux.rows_total(),
            "cache": None if self.cache is None else dict(self.cache.stats),
        }

    def __repr__(self) -> str:
        return f"QueryLocality(mode={self.mode}, decisions={self.decisions})"


def build_locality(config, views: Sequence[ViewDefinition], initial_states):
    """Construct the locality layer one warehouse will own, or None.

    ``views`` is the warehouse's view family (the primary first); all
    harness wiring sites call this with the same arguments they pass the
    warehouse constructor, so the planner sees exactly the relations the
    warehouse maintains.
    """
    mode = getattr(config, "locality", "off")
    if mode in (None, "off"):
        return None
    algorithm = getattr(config, "algorithm", None)
    if algorithm not in SUPPORTED_ALGORITHMS:
        raise ValueError(
            f"--locality={mode} supports sweep-family algorithms"
            f" {sorted(SUPPORTED_ALGORITHMS)}, not {algorithm!r}"
        )
    return QueryLocality(
        views[0],
        initial_states,
        mode=mode,
        budget_rows=getattr(config, "locality_budget_rows", 0),
    )


__all__ = [
    "MODES",
    "SUPPORTED_ALGORITHMS",
    "QueryLocality",
    "build_locality",
    "plan_coverage",
]
