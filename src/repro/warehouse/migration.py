"""Live view migration between shards ("eager seal + donor gap forwarding").

Moving one view ``V`` between two shards of a running deployment must not
break the invariant every consistency claim in this repo rests on: each
view's installs form claimed-vector snapshots of a per-source FIFO prefix
of the update stream.  The migration protocol here preserves it with
three moving parts (the coordinator lives in :mod:`repro.runtime.shard`;
this module is the per-warehouse protocol logic):

1. **Fences.**  When the rebalance fires, the coordinator posts one fence
   frame per source down the *same* per-(source, member) update channels
   real updates travel, to every donor and recipient member.  A fence is
   an empty :class:`~repro.sources.messages.UpdateNotice` whose ``seq``
   is the source's boundary position ``B_i`` at fire time, so channel
   FIFO pins it exactly between the pre- and post-boundary updates.
   Because every active shard already receives every source's stream
   (same-chain view families have total fanout), migrating ``V`` changes
   no fanout set -- only which member applies ``V``.

2. **Donor seal + handoff.**  At its next unit-of-work boundary (a
   stable point: installs complete, no sweep in flight) the donor drops
   ``V`` from its view set, snapshots ``V``'s position ``P`` (its own
   ``applied_counts``) and hands off ``V``'s contents, ``P``, and its
   auxiliary source copies as one CRC'd binwire blob (see
   :func:`repro.durability.checkpoint.encode_view_handoff`).

3. **Gap forwarding.**  The recipient's own channels deliver everything
   after the fences; everything at or before ``P`` is inside the
   handoff.  The genuine straggler window is ``(P_i, B_i]`` per source:
   pre-fence updates only the donor still holds queued.  The donor keeps
   processing them for its remaining views and *forwards a copy* of each
   to the recipient, then signals completion once it has dequeued every
   fence.  The recipient replays the forwarded gap, then its own *pen*
   (post-fence updates it processed for its other views while ``V`` was
   still in flight), each through a ``V``-only restricted sweep with
   SWEEP's compensation rule -- deduplicating queued stragglers against
   un-replayed gap entries by sequence number, since a late pre-fence
   update can be visible both ways.  After catch-up ``V`` participates
   in normal units again, guarded per update by its own position vector
   (duplicate sequences are dropped, holes are protocol errors), until
   its position provably rejoins the shard's and the guard becomes a
   no-op.

The ``skip_straggler_forwarding`` mutation (for the equivalence harness)
drops step 3's forwarding while keeping the completion signal, and
relaxes the hole check to a high-water mark -- the run then finishes
with ``V`` silently missing ``(P_i, B_i]``, which the consistency oracle
and the byte-equality baseline comparison must both catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Generator

from repro.relational.delta import merge_deltas
from repro.relational.incremental import PartialView
from repro.relational.view import ViewDefinition
from repro.simulation.channel import Message
from repro.sources.messages import (
    MultiQueryRequest,
    UpdateNotice,
    is_rebalance_fence,
    next_request_id,
)
from repro.warehouse.errors import ProtocolError
from repro.warehouse.view_store import MaterializedView


# ----------------------------------------------------------------------
# Control payloads (injected by the coordinator as kind="rebalance")
# ----------------------------------------------------------------------
@dataclass(slots=True)
class HandoffState:
    """Donor -> recipient: the sealed view's encoded state.

    ``blob`` is the wire-format payload (CRC'd binwire envelope);
    ``view_def`` and ``recorder`` ride alongside in-process -- the view
    definition is launch-time configuration both sides already share in
    a real deployment, and the recorder is harness instrumentation.
    """

    view: str
    epoch: int
    blob: bytes
    view_def: ViewDefinition
    recorder: object | None = None


@dataclass(slots=True)
class GapFrame:
    """Donor -> recipient: one straggler update from the gap ``(P, B]``."""

    epoch: int
    notice: UpdateNotice


@dataclass(slots=True)
class GapComplete:
    """Donor -> recipient: every fence dequeued; the gap is closed."""

    epoch: int


def _zero_stats() -> dict[str, int]:
    return {
        "gap_forwarded": 0,
        "gap_skipped": 0,
        "pen_retained": 0,
        "dup_dropped": 0,
        "catchup_installs": 0,
        "aux_adopted": 0,
        "aux_adopt_skipped": 0,
    }


@dataclass
class MigrationMemberState:
    """One member's view of an in-flight migration (donor or recipient)."""

    role: str  # "donor" | "recipient"
    view_def: ViewDefinition
    epoch: int
    coordinator: object
    member: object  # opaque key echoed back on coordinator callbacks
    n_sources: int
    skip_forwarding: bool = False
    relaxed: bool = False
    # -- donor side --
    seal_requested: bool = False
    sealed: bool = False
    complete_sent: bool = False
    fences_seen: set[int] = field(default_factory=set)
    boundaries: dict[int, int] = field(default_factory=dict)
    seal_position: dict[int, int] = field(default_factory=dict)
    # -- recipient side --
    fenced: dict[int, int] = field(default_factory=dict)
    handoff: HandoffState | None = None
    gap: list[UpdateNotice] = field(default_factory=list)
    pen: list[UpdateNotice] = field(default_factory=list)
    adopted: bool = False
    catchup_done: bool = False
    suspended: bool = False
    pos: dict[int, int] = field(default_factory=dict)
    stats: dict[str, int] = field(default_factory=_zero_stats)

    def maybe_unsuspend(self) -> None:
        """Locality answers become usable again once ``V``'s position has
        provably rejoined the shard's: catch-up done and every fence
        dequeued (no pre-boundary update can still be queued)."""
        if (
            self.suspended
            and self.catchup_done
            and len(self.fenced) >= self.n_sources
        ):
            self.suspended = False


class ViewMigrationMixin:
    """Protocol behaviour for a shard warehouse that can donate or adopt a
    migrating view.  Mixed in *before* the multi-view warehouse classes;
    inert (all hooks fall through to the defaults) until
    :meth:`attach_migration` is called by the rebalance coordinator.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._mig: MigrationMemberState | None = None

    # ------------------------------------------------------------------
    def attach_migration(self, state: MigrationMemberState) -> None:
        if self._mig is not None:
            raise ProtocolError(
                f"migration already attached (epoch {self._mig.epoch})"
            )
        self._mig = state

    def migration_stats(self) -> dict | None:
        """Structured per-member protocol counters (None if not attached)."""
        st = self._mig
        if st is None:
            return None
        out = dict(st.stats)
        out["role"] = st.role
        out["sealed"] = st.sealed
        out["complete_sent"] = st.complete_sent
        out["adopted"] = st.adopted
        out["catchup_done"] = st.catchup_done
        out["boundaries"] = dict(st.boundaries or st.fenced)
        out["seal_position"] = dict(st.seal_position)
        out["position"] = dict(st.pos)
        return out

    # ------------------------------------------------------------------
    # Dispatcher-side hooks
    # ------------------------------------------------------------------
    def _intercept_update(self, msg: Message) -> bool:
        if not is_rebalance_fence(msg.payload):
            return False
        # Fences keep their FIFO slot in the update queue but are not
        # deliveries: no recorder stamp, no delivered-count advance.
        self.update_queue.put(msg)
        return True

    def _on_rebalance_message(self, msg: Message) -> None:
        if self._mig is None:
            raise ProtocolError(
                f"rebalance frame at non-participating member: {msg.payload!r}"
            )
        self.update_queue.put(msg)

    def _is_control(self, msg: Message) -> bool:
        return msg.kind == "rebalance" or is_rebalance_fence(msg.payload)

    def pending_work(self) -> bool:
        if super().pending_work():
            return True
        st = self._mig
        if st is None:
            return False
        # A recipient holding an un-caught-up handoff (or buffered gap/pen
        # frames) is mid-protocol even with every queue momentarily empty.
        return st.role == "recipient" and not st.catchup_done and (
            st.handoff is not None or bool(st.gap) or bool(st.pen)
        )

    # ------------------------------------------------------------------
    # Unit-of-work hooks
    # ------------------------------------------------------------------
    def _before_unit(self) -> None:
        st = self._mig
        if st is not None and st.role == "donor" and st.seal_requested and (
            not st.sealed
        ):
            self._donor_seal()

    def process_update(self, notice: UpdateNotice) -> Generator:
        self._mig_observe([notice])
        yield from super().process_update(notice)

    def process_batch(self, batch: list[UpdateNotice]) -> Generator:
        self._mig_observe(batch)
        yield from super().process_batch(batch)

    def _mig_observe(self, notices: list[UpdateNotice]) -> None:
        """Straggler bookkeeping for one unit of work's updates.

        Donor (sealed): every pre-fence update it dequeues lies in the
        gap ``(P_i, B_i]`` -- forward a clean copy.  Recipient (fence
        seen, not yet caught up): post-fence updates it processes for its
        own views are penned for ``V``'s later replay.
        """
        st = self._mig
        if st is None:
            return
        if st.role == "donor" and st.sealed:
            for notice in notices:
                if notice.source_index in st.fences_seen:
                    continue  # post-fence: recipient's own channel has it
                if st.skip_forwarding:
                    st.stats["gap_skipped"] += 1
                    continue
                st.stats["gap_forwarded"] += 1
                st.coordinator.forward_gap(
                    st.member, replace(notice, delivery_seq=None)
                )
        elif st.role == "recipient" and st.fenced and not st.catchup_done:
            for notice in notices:
                if notice.source_index in st.fenced:
                    st.pen.append(replace(notice, delivery_seq=None))
                    st.stats["pen_retained"] += 1

    # ------------------------------------------------------------------
    # Donor: seal + handoff
    # ------------------------------------------------------------------
    def _donor_seal(self) -> None:
        from repro.durability.checkpoint import encode_view_handoff

        st = self._mig
        vdef = st.view_def
        if vdef.name not in self.stores:
            raise ProtocolError(f"cannot seal unknown view {vdef.name!r}")
        if vdef.name == self.view.name:
            raise ProtocolError("cannot migrate a shard's primary view")
        n = self.view.n_relations
        position = {
            i: self.applied_counts.get(i, 0) for i in range(1, n + 1)
        }
        st.seal_position = dict(position)
        # The applied set is an exact prefix of the delivery order
        # (dequeue order == delivery order), so V's recorder keeps
        # exactly that prefix; later deliveries belong to the recipient.
        vrec = self.extra_recorders.get(vdef.name)
        if vrec is not None and self.recorder is not None:
            applied_total = sum(position.values())
            vrec.deliveries = list(self.recorder.deliveries[:applied_total])
        relation = self.stores[vdef.name].relation
        aux = (
            self.locality.aux_relations() if self.locality is not None else {}
        )
        blob = encode_view_handoff(
            vdef.name, position, relation, aux=aux, epoch=st.epoch
        )
        self.views = [v for v in self.views if v.name != vdef.name]
        del self.stores[vdef.name]
        self.extra_recorders.pop(vdef.name, None)
        st.sealed = True
        if self.trace:
            self.trace.record(
                self.sim.now,
                "warehouse",
                "rebalance-seal",
                f"{vdef.name} at {sorted(position.items())}",
            )
        st.coordinator.handoff(
            st.member,
            HandoffState(
                view=vdef.name,
                epoch=st.epoch,
                blob=blob,
                view_def=vdef,
                recorder=vrec,
            ),
        )
        if st.skip_forwarding and not st.complete_sent:
            # Mutation: pretend the gap is empty.  The completion signal
            # still fires so the run terminates; the oracle must notice.
            st.complete_sent = True
            st.coordinator.gap_complete(st.member)

    # ------------------------------------------------------------------
    # Control-frame consumption (both roles)
    # ------------------------------------------------------------------
    def _handle_control(self, msg: Message) -> Generator:
        st = self._mig
        if st is None:
            raise ProtocolError(f"control frame without migration: {msg!r}")
        payload = msg.payload
        if msg.kind == "update" and is_rebalance_fence(payload):
            self._on_fence(payload)
            return
        if isinstance(payload, HandoffState):
            st.handoff = payload
            return
        if isinstance(payload, GapFrame):
            st.gap.append(payload.notice)
            return
        if isinstance(payload, GapComplete):
            yield from self._mig_catchup()
            return
        raise ProtocolError(f"unexpected control frame {payload!r}")

    def _on_fence(self, fence: UpdateNotice) -> None:
        st = self._mig
        index, boundary = fence.source_index, fence.seq
        if st.role == "donor":
            st.fences_seen.add(index)
            st.boundaries[index] = boundary
            if (
                st.sealed
                and not st.complete_sent
                and len(st.fences_seen) >= st.n_sources
            ):
                st.complete_sent = True
                st.coordinator.gap_complete(st.member)
        else:
            st.fenced[index] = boundary
            st.maybe_unsuspend()

    # ------------------------------------------------------------------
    # Recipient: adoption + catch-up
    # ------------------------------------------------------------------
    def _mig_catchup(self) -> Generator:
        from repro.durability.checkpoint import decode_view_handoff
        from repro.durability.encoding import decode_relation

        st = self._mig
        if st.catchup_done:
            raise ProtocolError("duplicate gap-complete")
        if st.handoff is None:
            raise ProtocolError("gap-complete before handoff state")
        vdef = st.handoff.view_def
        decoded = decode_view_handoff(st.handoff.blob)
        if decoded["view"] != vdef.name or decoded["epoch"] != st.epoch:
            raise ProtocolError(
                f"handoff identity mismatch: {decoded['view']!r}"
                f" epoch {decoded['epoch']}"
            )
        relation = decode_relation(decoded["rows"], vdef.view_schema)
        st.pos = {
            i: decoded["position"].get(i, 0)
            for i in range(1, vdef.n_relations + 1)
        }
        self.stores[vdef.name] = MaterializedView(
            vdef, relation, strict=self.store.strict
        )
        self.views.append(vdef)
        vrec = st.handoff.recorder
        if vrec is not None:
            self.extra_recorders[vdef.name] = vrec
        st.adopted = True
        st.suspended = True
        self._mig_adopt_aux(vdef, decoded)
        if self.trace:
            self.trace.record(
                self.sim.now,
                "warehouse",
                "rebalance-adopt",
                f"{vdef.name} at {sorted(st.pos.items())},"
                f" gap={len(st.gap)} pen={len(st.pen)}",
            )

        # Replay: forwarded gap first (pre-fence seqs), then the pen
        # (post-fence seqs) -- per source this is ascending-seq order.
        replay = [*st.gap, *st.pen]
        st.gap = []
        st.pen = []
        while replay:
            notice = replay.pop(0)
            i, seq = notice.source_index, notice.seq
            at = st.pos.get(i, 0)
            if seq <= at:
                st.stats["dup_dropped"] += 1
                continue
            if seq != at + 1 and not st.relaxed:
                raise ProtocolError(
                    f"migration hole: src {i} seq {seq} after {at}"
                )
            yield from self._mig_apply_one(vdef, vrec, notice, replay)
        st.catchup_done = True
        st.maybe_unsuspend()

    def _mig_adopt_aux(self, vdef: ViewDefinition, decoded: dict) -> None:
        """Adopt the donor's auxiliary copies -- only when provably safe.

        The locality layer is shard-wide state pinned to the *shard's*
        installed position, so a donor copy (at the donor's seal
        position) is only usable if that position happens to equal this
        shard's installed count and the source isn't covered already.
        In practice the positions differ and every copy is skipped; the
        counters document the decision and the handoff still exercises
        the encode/decode path.
        """
        from repro.durability.encoding import decode_relation

        if self.locality is None or not decoded["aux"]:
            return
        names = {vdef.name_of(i): i for i in range(1, vdef.n_relations + 1)}
        installed = {
            i: self.applied_counts.get(i, 0)
            for i in range(1, vdef.n_relations + 1)
        }
        donor_position = {
            i: decoded["position"].get(i, 0)
            for i in range(1, vdef.n_relations + 1)
        }
        for name, rows in decoded["aux"].items():
            index = names.get(name)
            if (
                index is None
                or self.locality.covers(index)
                or donor_position != installed
            ):
                self._mig.stats["aux_adopt_skipped"] += 1
                continue
            self.locality.aux.seed(
                index, decode_relation(rows, vdef.schema_of(index))
            )
            self._mig.stats["aux_adopted"] += 1

    def _mig_apply_one(
        self,
        vdef: ViewDefinition,
        vrec,
        notice: UpdateNotice,
        remaining: list[UpdateNotice],
    ) -> Generator:
        """Apply one replayed update to ``V`` via a V-only restricted sweep.

        Compensation at step ``j`` deduplicates by sequence number over
        the un-replayed remainder and the queued-updates snapshot: a late
        pre-fence update can be in both (forwarded by the donor *and*
        still queued here), and must be subtracted exactly once.
        """
        st = self._mig
        i = notice.source_index
        n = vdef.n_relations
        if vrec is not None:
            vrec.on_delivery(notice)
        partial = PartialView.initial(vdef, i, notice.delta)
        sweep_order = list(range(i - 1, 0, -1)) + list(range(i + 1, n + 1))
        for j in sweep_order:
            temp = partial
            request = MultiQueryRequest(
                request_id=next_request_id(),
                partials=[partial],
                target_index=j,
            )
            self.send_query(j, request)
            msg, pending = yield self._answer_box.get()
            self._pending_at_answer = pending
            answer = msg.payload
            if answer.request_id != request.request_id:
                raise ProtocolError(
                    f"answer {answer.request_id} does not match request"
                    f" {request.request_id}"
                )
            partial = answer.partials[0]
            candidates: dict[int, UpdateNotice] = {}
            for other in remaining:
                if other.source_index == j:
                    candidates.setdefault(other.seq, other)
            for queued in self.pending_updates_from(j):
                candidates.setdefault(queued.seq, queued)
            floor = st.pos.get(j, 0)
            usable = sorted(
                (seq, cand)
                for seq, cand in candidates.items()
                if seq > floor
            )
            if usable:
                self.metrics.increment("compensations")
                merged = merge_deltas(
                    vdef.schema_of(j), [cand.delta for _, cand in usable]
                )
                partial = partial.compensate(temp.extend(j, merged))
        st.pos[i] = max(st.pos.get(i, 0), notice.seq)
        st.stats["catchup_installs"] += 1
        self._install_extra(
            vdef,
            partial.delta,
            note=f"rebalance-catchup src={i} seq={notice.seq}",
        )

    # ------------------------------------------------------------------
    # Per-view participation overrides (post-catch-up steady state)
    # ------------------------------------------------------------------
    def _mig_active_view(self) -> MigrationMemberState | None:
        st = self._mig
        if st is not None and st.role == "recipient" and st.catchup_done:
            return st
        return None

    def _partition_batch(
        self, batch: list[UpdateNotice]
    ) -> dict[str, list[UpdateNotice]]:
        assignment = super()._partition_batch(batch)
        st = self._mig_active_view()
        if st is None:
            return assignment
        mine: list[UpdateNotice] = []
        tentative = dict(st.pos)
        for notice in batch:
            i, seq = notice.source_index, notice.seq
            at = tentative.get(i, 0)
            if seq <= at:
                st.stats["dup_dropped"] += 1
                continue
            if seq != at + 1 and not st.relaxed:
                raise ProtocolError(
                    f"migration hole: src {i} seq {seq} after {at}"
                )
            mine.append(notice)
            tentative[i] = seq
        assignment[st.view_def.name] = mine
        return assignment

    def _claimed_vector_for(self, view: ViewDefinition) -> dict[int, int]:
        st = self._mig
        if (
            st is not None
            and st.role == "recipient"
            and st.adopted
            and view.name == st.view_def.name
        ):
            return dict(st.pos)
        return super()._claimed_vector_for(view)

    def _pending_floor(
        self,
        view: ViewDefinition,
        index: int,
        *,
        after_batch: bool,
        batch_count: int,
    ) -> int | None:
        st = self._mig_active_view()
        if st is None or view.name != st.view_def.name:
            return super()._pending_floor(
                view, index, after_batch=after_batch, batch_count=batch_count
            )
        floor = st.pos.get(index, 0)
        if after_batch:
            floor += batch_count
        return floor

    def _note_applied_for_views(
        self, assignment: dict[str, list[UpdateNotice]]
    ) -> None:
        super()._note_applied_for_views(assignment)
        st = self._mig_active_view()
        if st is None:
            return
        vrec = self.extra_recorders.get(st.view_def.name)
        for notice in assignment.get(st.view_def.name, ()):
            if vrec is not None:
                vrec.on_delivery(replace(notice, delivery_seq=None))
            st.pos[notice.source_index] = max(
                st.pos.get(notice.source_index, 0), notice.seq
            )

    def _live_locality(self):
        st = self._mig
        if st is not None and st.suspended:
            return None
        return super()._live_locality()


from repro.warehouse.multiview import (  # noqa: E402 (mixin must exist first)
    MultiViewBatchedSweepWarehouse,
    MultiViewSweepWarehouse,
)


class MigratingMultiViewSweepWarehouse(
    ViewMigrationMixin, MultiViewSweepWarehouse
):
    """Multi-view SWEEP that can donate or adopt a migrating view."""


class MigratingMultiViewBatchedSweepWarehouse(
    ViewMigrationMixin, MultiViewBatchedSweepWarehouse
):
    """Multi-view batched SWEEP that can donate or adopt a migrating view."""


__all__ = [
    "GapComplete",
    "GapFrame",
    "HandoffState",
    "MigratingMultiViewBatchedSweepWarehouse",
    "MigratingMultiViewSweepWarehouse",
    "MigrationMemberState",
    "ViewMigrationMixin",
]
