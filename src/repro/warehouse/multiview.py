"""Multi-view maintenance: many SPJ views, one update stream, shared sweeps.

A production warehouse rarely materializes a single view.  This module
maintains **any number of views over the same source chain** with SWEEP
semantics, and batches the per-view partial view changes of each sweep
step into one :class:`~repro.sources.messages.MultiQueryRequest` -- so the
message *count* per update stays ``2(n-1)``, independent of how many views
are maintained (payload rows grow with the views, nothing else does).

All views must agree on the relation chain (names and schemas, in order);
they are free to differ in join conditions, selections and projections.
Each view gets its own :class:`~repro.warehouse.view_store.MaterializedView`
and (optionally) its own consistency recorder; every view is maintained
with complete consistency, exactly as if it ran its own SWEEP -- the
batching changes the envelope, not the algebra, because every per-view
join inside one batched step is evaluated against the same atomic source
state and compensated against the same queued updates.
"""

from __future__ import annotations

from collections.abc import Generator, Sequence

from repro.consistency.oracle import RunRecorder
from repro.relational.delta import Delta
from repro.relational.errors import SchemaError
from repro.relational.incremental import PartialView
from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition
from repro.sources.messages import MultiQueryRequest, UpdateNotice, next_request_id
from repro.warehouse.base import QueueDrivenWarehouse
from repro.warehouse.batched import BatchedSweepWarehouse
from repro.warehouse.errors import ProtocolError
from repro.warehouse.view_store import MaterializedView


def validate_same_chain(views: Sequence[ViewDefinition]) -> None:
    """All views must share relation names and schemas, in order."""
    if not views:
        raise SchemaError("need at least one view")
    first = views[0]
    for view in views[1:]:
        if view.relation_names != first.relation_names:
            raise SchemaError(
                f"view {view.name!r} has relations"
                f" {list(view.relation_names)!r}, expected"
                f" {list(first.relation_names)!r}"
            )
        for i in range(1, first.n_relations + 1):
            if view.schema_of(i).attributes != first.schema_of(i).attributes:
                raise SchemaError(
                    f"view {view.name!r} disagrees on schema of relation"
                    f" {first.name_of(i)!r}"
                )


class MultiViewStateMixin:
    """Per-view stores and install plumbing shared by multi-view warehouses.

    Mixed into a :class:`~repro.warehouse.base.QueueDrivenWarehouse`
    subclass *after* its ``__init__`` ran (so ``self.view``/``self.store``
    exist); the host calls :meth:`_init_extra_views` once.
    """

    def _init_extra_views(
        self,
        extra_views: Sequence[ViewDefinition],
        initial_states: dict[str, Relation] | None,
        extra_recorders: dict[str, RunRecorder] | None,
    ) -> None:
        self.views: list[ViewDefinition] = [self.view, *extra_views]
        validate_same_chain(self.views)
        names = [v.name for v in self.views]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate view names: {names!r}")
        self.stores: dict[str, MaterializedView] = {self.view.name: self.store}
        self.extra_recorders = dict(extra_recorders or {})
        for view in self.views[1:]:
            if initial_states is None:
                raise SchemaError(
                    "initial_states is required to initialize extra views"
                )
            self.stores[view.name] = MaterializedView.from_states(
                view, initial_states
            )
            recorder = self.extra_recorders.get(view.name)
            if recorder is not None:
                recorder.set_initial_view(self.stores[view.name].relation)

    def _install_extra(self, view: ViewDefinition, wide_delta, note: str) -> None:
        """Install one extra view's change and snapshot it for its oracle."""
        store = self.stores[view.name]
        store.install_wide(wide_delta)
        recorder = self.extra_recorders.get(view.name)
        if recorder is not None:
            recorder.on_install(
                self.sim.now,
                store.relation,
                claimed_vector=self._claimed_vector_for(view),
                note=note,
            )

    def view_contents(self, name: str) -> Relation:
        """Current contents of the named view."""
        return self.stores[name].snapshot()

    # ------------------------------------------------------------------
    # Per-view participation hooks.
    #
    # Normally every view of the shard participates in every unit of work
    # at the shard's shared position, so the defaults are trivial.  A view
    # mid-migration (see repro.warehouse.migration) lags or leads the
    # shard's position while it catches up from the donor's handoff, and
    # overrides these to steer exactly which updates it applies and which
    # queued updates its compensation may subtract.
    # ------------------------------------------------------------------
    def _partition_batch(
        self, batch: list[UpdateNotice]
    ) -> dict[str, list[UpdateNotice]]:
        """Which of ``batch`` each view applies in this unit of work."""
        return {view.name: list(batch) for view in self.views}

    def _claimed_vector_for(self, view: ViewDefinition) -> dict[int, int]:
        """The per-source position vector ``view``'s next install claims."""
        return dict(self.applied_counts)

    def _pending_floor(
        self,
        view: ViewDefinition,
        index: int,
        *,
        after_batch: bool,
        batch_count: int,
    ) -> int | None:
        """Smallest queued ``seq`` from ``index`` that may be compensated.

        ``None`` means no floor: every queued update interferes (the
        shard-position default -- queued seqs always exceed the applied
        count plus the in-flight batch, by the FIFO prefix property).
        A migrating view whose position differs from the shard's returns
        its own position (plus its ``batch_count`` participating updates
        when the wave targets the post-batch state, ``after_batch``).
        """
        return None

    def _note_applied_for_views(
        self, assignment: dict[str, list[UpdateNotice]]
    ) -> None:
        """Per-view position accounting, after ``mark_applied`` and before
        the installs of a unit of work."""


class MultiViewSweepWarehouse(MultiViewStateMixin, QueueDrivenWarehouse):
    """SWEEP maintaining several views with batched sweep steps.

    Parameters (beyond :class:`QueueDrivenWarehouse`'s):

    extra_views:
        Additional view definitions; the primary ``view`` is maintained
        too, as views[0].
    initial_states:
        Base relation contents used to initialize every extra view's
        store (the primary store is initialized via ``initial_view``).
    extra_recorders:
        Optional ``{view_name: RunRecorder}`` for per-view consistency
        verification of the extra views.
    """

    algorithm_name = "multi-view-sweep"

    def __init__(
        self,
        *args,
        extra_views: Sequence[ViewDefinition] = (),
        initial_states: dict[str, Relation] | None = None,
        extra_recorders: dict[str, RunRecorder] | None = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self._init_extra_views(extra_views, initial_states, extra_recorders)

    # ------------------------------------------------------------------
    def view_change(self, notice: UpdateNotice) -> Generator:
        raise NotImplementedError("multi-view overrides process_update")

    def process_update(self, notice: UpdateNotice) -> Generator:
        i = notice.source_index
        n = self.view.n_relations
        assignment = self._partition_batch([notice])
        participants = [view for view in self.views if assignment[view.name]]
        if not participants:
            # Every view skipped this update (migration duplicate); the
            # shard position still advances past it.
            self.mark_applied([notice])
            self._note_applied_for_views(assignment)
            return
        partials = {
            view.name: PartialView.initial(view, i, notice.delta)
            for view in participants
        }
        sweep_order = list(range(i - 1, 0, -1)) + list(range(i + 1, n + 1))
        for j in sweep_order:
            temps = dict(partials)
            locality = self._live_locality()
            if locality is not None and locality.covers(j):
                # Covered source: every view's step is answered from the
                # same local copy, compensation-free (sequential install
                # order makes the copy exactly this update's position).
                for view in participants:
                    partials[view.name] = locality.aux_answer(
                        j, partials[view.name]
                    )
                continue
            ordered = [partials[view.name] for view in participants]
            if locality is not None:
                hits = locality.cache_lookup_many(j, ordered)
                if hits is not None:
                    self._pending_at_answer = self._queued_update_payloads()
                    for view, hit in zip(participants, hits):
                        partials[view.name] = self._compensate_one(
                            j, hit, temps[view.name], view=view
                        )
                    continue
            request = MultiQueryRequest(
                request_id=next_request_id(), partials=ordered, target_index=j
            )
            self.send_query(j, request)
            msg, pending = yield self._answer_box.get()
            self._pending_at_answer = pending
            answer = msg.payload
            if answer.request_id != request.request_id:
                raise ProtocolError(
                    f"answer {answer.request_id} does not match request"
                    f" {request.request_id}"
                )
            for view, got in zip(participants, answer.partials):
                partials[view.name] = self._compensate_one(
                    j, got, temps[view.name], view=view
                )

        self.mark_applied([notice])
        self._note_applied_for_views(assignment)
        note = f"update src={notice.source_index} seq={notice.seq}"
        for view in participants:
            partial = partials[view.name]
            if view.name == self.view.name:
                self.store.install_wide(partial.delta)
                self._after_install(note)
            else:
                self._install_extra(view, partial.delta, note)
        self.metrics.increment("multiview_installs")

    # ------------------------------------------------------------------
    def _compensate_one(
        self,
        index: int,
        answer: PartialView,
        temp: PartialView,
        view: ViewDefinition | None = None,
    ) -> PartialView:
        pending = self.pending_updates_from(index)
        if view is not None:
            floor = self._pending_floor(
                view, index, after_batch=False, batch_count=0
            )
            if floor is not None:
                pending = [p for p in pending if p.seq > floor]
        if not pending:
            return answer
        self.metrics.increment("compensations")
        merged = self.merged_pending_delta(pending)
        error = temp.extend(index, merged)
        return answer.compensate(error)


class MultiViewBatchedSweepWarehouse(MultiViewStateMixin, BatchedSweepWarehouse):
    """Batched sweep scheduler generalized to a family of same-chain views.

    One drained batch is maintained for *all* views with one pair of
    wavefronts: at each wave step the active terms of every view are
    packed into a single :class:`MultiQueryRequest`, so the message count
    per batch stays ``<= 4(n-1)`` regardless of how many views the shard
    hosts -- the same envelope-sharing trick as
    :class:`MultiViewSweepWarehouse`, applied to
    :class:`~repro.warehouse.batched.BatchedSweepWarehouse`'s composite
    sweep.  Every view receives one install per batch with the identical
    claimed vector, so each view independently satisfies the batched
    (strong) consistency the single-view scheduler guarantees.

    Accepts both sets of knobs: ``max_batch``/``adaptive`` from the
    batched scheduler and ``extra_views``/``initial_states``/
    ``extra_recorders`` from the multi-view warehouse.
    """

    algorithm_name = "multi-view-batched-sweep"

    def __init__(
        self,
        *args,
        extra_views: Sequence[ViewDefinition] = (),
        initial_states: dict[str, Relation] | None = None,
        extra_recorders: dict[str, RunRecorder] | None = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self._init_extra_views(extra_views, initial_states, extra_recorders)

    # ------------------------------------------------------------------
    def process_batch(self, batch: list[UpdateNotice]) -> Generator:
        n = self.view.n_relations
        self.batches_processed += 1
        self.metrics.increment("batched_sweeps")
        self.metrics.observe("batch_size", len(batch))

        # Merge same-source deltas per view over that view's participating
        # prefix of the batch (normally the whole batch for every view).
        assignment = self._partition_batch(batch)
        merged_by_view: dict[str, dict[int, Delta]] = {}
        counts: dict[str, dict[int, int]] = {}
        for view in self.views:
            merged: dict[int, Delta] = {}
            count: dict[int, int] = {}
            for notice in assignment[view.name]:
                seen = merged.get(notice.source_index)
                if seen is None:
                    merged[notice.source_index] = notice.delta.copy()
                else:
                    seen.merge_in_place(notice.delta)
                count[notice.source_index] = count.get(notice.source_index, 0) + 1
            merged_by_view[view.name] = merged
            counts[view.name] = count
        # terms[view.name][i]: the term seeded with Delta-R_i, per view.
        terms: dict[str, dict[int, PartialView]] = {
            view.name: {
                index: PartialView.initial(view, index, delta)
                for index, delta in merged_by_view[view.name].items()
            }
            for view in self.views
        }
        union_sources = sorted(
            {i for merged in merged_by_view.values() for i in merged}
        )

        # Leftward wave: every view's term i wants R_j^new for j < i.
        for j in range(n - 1, 0, -1):
            active_by_view = {
                view.name: sorted(
                    i for i in merged_by_view[view.name] if i > j
                )
                for view in self.views
            }
            if not any(active_by_view.values()):
                continue
            locality = self._live_locality()
            if locality is not None and locality.covers(j):
                for view in self.views:
                    batch_delta = merged_by_view[view.name].get(j)
                    for i in active_by_view[view.name]:
                        terms[view.name][i] = self._local_wave_answer(
                            j, terms[view.name][i], batch_delta
                        )
                continue
            answers = yield from self._multi_query_views(
                j, terms, active_by_view
            )
            for view in self.views:
                floor = self._pending_floor(
                    view,
                    j,
                    after_batch=True,
                    batch_count=counts[view.name].get(j, 0),
                )
                for i in active_by_view[view.name]:
                    terms[view.name][i] = self._compensate_queued(
                        j,
                        answers[view.name][i],
                        terms[view.name][i],
                        floor=floor,
                    )

        # Rightward wave: term i wants R_j^old for j > i; subtract the
        # view's own batch delta at j on top of the queued-update
        # compensation.
        for j in range(2, n + 1):
            active_by_view = {
                view.name: sorted(
                    i for i in merged_by_view[view.name] if i < j
                )
                for view in self.views
            }
            if not any(active_by_view.values()):
                continue
            locality = self._live_locality()
            if locality is not None and locality.covers(j):
                # The covered copy is R_j^old for every view alike.
                for view in self.views:
                    for i in active_by_view[view.name]:
                        terms[view.name][i] = locality.aux_answer(
                            j, terms[view.name][i]
                        )
                continue
            temps = {
                view.name: {
                    i: terms[view.name][i] for i in active_by_view[view.name]
                }
                for view in self.views
            }
            answers = yield from self._multi_query_views(
                j, temps, active_by_view
            )
            for view in self.views:
                batch_delta = merged_by_view[view.name].get(j)
                floor = self._pending_floor(
                    view, j, after_batch=False, batch_count=0
                )
                for i in active_by_view[view.name]:
                    temp = temps[view.name][i]
                    answer = self._compensate_queued(
                        j, answers[view.name][i], temp, floor=floor
                    )
                    if batch_delta is not None:
                        answer = answer.compensate(temp.extend(j, batch_delta))
                    terms[view.name][i] = answer

        self.mark_applied(batch)
        self._note_applied_for_views(assignment)
        self.metrics.observe("updates_per_install", len(batch))
        note = f"batch of {len(batch)} update(s), sources {union_sources}"
        for view in self.views:
            if not assignment[view.name]:
                # View skipped the whole batch (migration duplicates).
                continue
            composite: PartialView | None = None
            for index in sorted(terms[view.name]):
                term = terms[view.name][index]
                composite = (
                    term if composite is None else composite.add_in_place(term)
                )
            if view.name == self.view.name:
                self.install_wide(composite.delta, note=note)
            else:
                self._install_extra(view, composite.delta, note)
        self.metrics.increment("multiview_installs")

    # ------------------------------------------------------------------
    def _multi_query_views(
        self,
        index: int,
        terms: dict[str, dict[int, PartialView]],
        active_by_view: dict[str, list[int]],
    ) -> Generator:
        """One wave step for every view at once: a single MultiQueryRequest
        carries each (view, active term) partial, and the answer is split
        back per view.  All joins are evaluated against the same atomic
        source state, which is what keeps every view's batch boundary
        aligned with the same delivery-order prefix."""
        flat = [
            terms[view.name][i]
            for view in self.views
            for i in active_by_view[view.name]
        ]
        answers = yield from self._multi_query(index, flat)
        out: dict[str, dict[int, PartialView]] = {}
        pos = 0
        for view in self.views:
            out[view.name] = {}
            for i in active_by_view[view.name]:
                out[view.name][i] = answers[pos]
                pos += 1
        return out


__all__ = [
    "MultiViewBatchedSweepWarehouse",
    "MultiViewStateMixin",
    "MultiViewSweepWarehouse",
    "validate_same_chain",
]
