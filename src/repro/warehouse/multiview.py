"""Multi-view maintenance: many SPJ views, one update stream, shared sweeps.

A production warehouse rarely materializes a single view.  This module
maintains **any number of views over the same source chain** with SWEEP
semantics, and batches the per-view partial view changes of each sweep
step into one :class:`~repro.sources.messages.MultiQueryRequest` -- so the
message *count* per update stays ``2(n-1)``, independent of how many views
are maintained (payload rows grow with the views, nothing else does).

All views must agree on the relation chain (names and schemas, in order);
they are free to differ in join conditions, selections and projections.
Each view gets its own :class:`~repro.warehouse.view_store.MaterializedView`
and (optionally) its own consistency recorder; every view is maintained
with complete consistency, exactly as if it ran its own SWEEP -- the
batching changes the envelope, not the algebra, because every per-view
join inside one batched step is evaluated against the same atomic source
state and compensated against the same queued updates.
"""

from __future__ import annotations

from collections.abc import Generator, Sequence

from repro.consistency.oracle import RunRecorder
from repro.relational.delta import Delta
from repro.relational.errors import SchemaError
from repro.relational.incremental import PartialView
from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition
from repro.sources.messages import MultiQueryRequest, UpdateNotice, next_request_id
from repro.warehouse.base import QueueDrivenWarehouse
from repro.warehouse.batched import BatchedSweepWarehouse
from repro.warehouse.errors import ProtocolError
from repro.warehouse.view_store import MaterializedView


def validate_same_chain(views: Sequence[ViewDefinition]) -> None:
    """All views must share relation names and schemas, in order."""
    if not views:
        raise SchemaError("need at least one view")
    first = views[0]
    for view in views[1:]:
        if view.relation_names != first.relation_names:
            raise SchemaError(
                f"view {view.name!r} has relations"
                f" {list(view.relation_names)!r}, expected"
                f" {list(first.relation_names)!r}"
            )
        for i in range(1, first.n_relations + 1):
            if view.schema_of(i).attributes != first.schema_of(i).attributes:
                raise SchemaError(
                    f"view {view.name!r} disagrees on schema of relation"
                    f" {first.name_of(i)!r}"
                )


class MultiViewStateMixin:
    """Per-view stores and install plumbing shared by multi-view warehouses.

    Mixed into a :class:`~repro.warehouse.base.QueueDrivenWarehouse`
    subclass *after* its ``__init__`` ran (so ``self.view``/``self.store``
    exist); the host calls :meth:`_init_extra_views` once.
    """

    def _init_extra_views(
        self,
        extra_views: Sequence[ViewDefinition],
        initial_states: dict[str, Relation] | None,
        extra_recorders: dict[str, RunRecorder] | None,
    ) -> None:
        self.views: list[ViewDefinition] = [self.view, *extra_views]
        validate_same_chain(self.views)
        names = [v.name for v in self.views]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate view names: {names!r}")
        self.stores: dict[str, MaterializedView] = {self.view.name: self.store}
        self.extra_recorders = dict(extra_recorders or {})
        for view in self.views[1:]:
            if initial_states is None:
                raise SchemaError(
                    "initial_states is required to initialize extra views"
                )
            self.stores[view.name] = MaterializedView.from_states(
                view, initial_states
            )
            recorder = self.extra_recorders.get(view.name)
            if recorder is not None:
                recorder.set_initial_view(self.stores[view.name].relation)

    def _install_extra(self, view: ViewDefinition, wide_delta, note: str) -> None:
        """Install one extra view's change and snapshot it for its oracle."""
        store = self.stores[view.name]
        store.install_wide(wide_delta)
        recorder = self.extra_recorders.get(view.name)
        if recorder is not None:
            recorder.on_install(
                self.sim.now,
                store.relation,
                claimed_vector=dict(self.applied_counts),
                note=note,
            )

    def view_contents(self, name: str) -> Relation:
        """Current contents of the named view."""
        return self.stores[name].snapshot()


class MultiViewSweepWarehouse(MultiViewStateMixin, QueueDrivenWarehouse):
    """SWEEP maintaining several views with batched sweep steps.

    Parameters (beyond :class:`QueueDrivenWarehouse`'s):

    extra_views:
        Additional view definitions; the primary ``view`` is maintained
        too, as views[0].
    initial_states:
        Base relation contents used to initialize every extra view's
        store (the primary store is initialized via ``initial_view``).
    extra_recorders:
        Optional ``{view_name: RunRecorder}`` for per-view consistency
        verification of the extra views.
    """

    algorithm_name = "multi-view-sweep"

    def __init__(
        self,
        *args,
        extra_views: Sequence[ViewDefinition] = (),
        initial_states: dict[str, Relation] | None = None,
        extra_recorders: dict[str, RunRecorder] | None = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self._init_extra_views(extra_views, initial_states, extra_recorders)

    # ------------------------------------------------------------------
    def view_change(self, notice: UpdateNotice) -> Generator:
        raise NotImplementedError("multi-view overrides process_update")

    def process_update(self, notice: UpdateNotice) -> Generator:
        i = notice.source_index
        n = self.view.n_relations
        partials = [
            PartialView.initial(view, i, notice.delta) for view in self.views
        ]
        sweep_order = list(range(i - 1, 0, -1)) + list(range(i + 1, n + 1))
        for j in sweep_order:
            temps = partials
            if self.locality is not None and self.locality.covers(j):
                # Covered source: every view's step is answered from the
                # same local copy, compensation-free (sequential install
                # order makes the copy exactly this update's position).
                partials = [
                    self.locality.aux_answer(j, partial) for partial in partials
                ]
                continue
            if self.locality is not None:
                hits = self.locality.cache_lookup_many(j, partials)
                if hits is not None:
                    self._pending_at_answer = tuple(
                        m.payload for m in self.update_queue.peek_all()
                    )
                    partials = [
                        self._compensate_one(j, hit, temp)
                        for hit, temp in zip(hits, temps)
                    ]
                    continue
            request = MultiQueryRequest(
                request_id=next_request_id(), partials=partials, target_index=j
            )
            self.send_query(j, request)
            msg, pending = yield self._answer_box.get()
            self._pending_at_answer = pending
            answer = msg.payload
            if answer.request_id != request.request_id:
                raise ProtocolError(
                    f"answer {answer.request_id} does not match request"
                    f" {request.request_id}"
                )
            partials = [
                self._compensate_one(j, got, temp)
                for got, temp in zip(answer.partials, temps)
            ]

        self.mark_applied([notice])
        note = f"update src={notice.source_index} seq={notice.seq}"
        for view, partial in zip(self.views, partials):
            if view.name == self.view.name:
                self.store.install_wide(partial.delta)
                self._after_install(note)
            else:
                self._install_extra(view, partial.delta, note)
        self.metrics.increment("multiview_installs")

    # ------------------------------------------------------------------
    def _compensate_one(
        self, index: int, answer: PartialView, temp: PartialView
    ) -> PartialView:
        pending = self.pending_updates_from(index)
        if not pending:
            return answer
        self.metrics.increment("compensations")
        merged = self.merged_pending_delta(pending)
        error = temp.extend(index, merged)
        return answer.compensate(error)


class MultiViewBatchedSweepWarehouse(MultiViewStateMixin, BatchedSweepWarehouse):
    """Batched sweep scheduler generalized to a family of same-chain views.

    One drained batch is maintained for *all* views with one pair of
    wavefronts: at each wave step the active terms of every view are
    packed into a single :class:`MultiQueryRequest`, so the message count
    per batch stays ``<= 4(n-1)`` regardless of how many views the shard
    hosts -- the same envelope-sharing trick as
    :class:`MultiViewSweepWarehouse`, applied to
    :class:`~repro.warehouse.batched.BatchedSweepWarehouse`'s composite
    sweep.  Every view receives one install per batch with the identical
    claimed vector, so each view independently satisfies the batched
    (strong) consistency the single-view scheduler guarantees.

    Accepts both sets of knobs: ``max_batch``/``adaptive`` from the
    batched scheduler and ``extra_views``/``initial_states``/
    ``extra_recorders`` from the multi-view warehouse.
    """

    algorithm_name = "multi-view-batched-sweep"

    def __init__(
        self,
        *args,
        extra_views: Sequence[ViewDefinition] = (),
        initial_states: dict[str, Relation] | None = None,
        extra_recorders: dict[str, RunRecorder] | None = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self._init_extra_views(extra_views, initial_states, extra_recorders)

    # ------------------------------------------------------------------
    def process_batch(self, batch: list[UpdateNotice]) -> Generator:
        n = self.view.n_relations
        self.batches_processed += 1
        self.metrics.increment("batched_sweeps")
        self.metrics.observe("batch_size", len(batch))

        merged: dict[int, Delta] = {}
        for notice in batch:
            seen = merged.get(notice.source_index)
            if seen is None:
                merged[notice.source_index] = notice.delta.copy()
            else:
                seen.merge_in_place(notice.delta)
        # terms[view.name][i]: the term seeded with Delta-R_i, per view.
        terms: dict[str, dict[int, PartialView]] = {
            view.name: {
                index: PartialView.initial(view, index, delta)
                for index, delta in merged.items()
            }
            for view in self.views
        }

        # Leftward wave: every view's term i wants R_j^new for j < i.
        for j in range(n - 1, 0, -1):
            active = sorted(i for i in merged if i > j)
            if not active:
                continue
            if self.locality is not None and self.locality.covers(j):
                batch_delta = merged.get(j)
                for view in self.views:
                    for i in active:
                        terms[view.name][i] = self._local_wave_answer(
                            j, terms[view.name][i], batch_delta
                        )
                continue
            answers = yield from self._multi_query_views(j, terms, active)
            for view in self.views:
                for i in active:
                    terms[view.name][i] = self._compensate_queued(
                        j, answers[view.name][i], terms[view.name][i]
                    )

        # Rightward wave: term i wants R_j^old for j > i; subtract the
        # batch's own delta at j on top of the queued-update compensation.
        for j in range(2, n + 1):
            active = sorted(i for i in merged if i < j)
            if not active:
                continue
            if self.locality is not None and self.locality.covers(j):
                # The covered copy is R_j^old for every view alike.
                for view in self.views:
                    for i in active:
                        terms[view.name][i] = self.locality.aux_answer(
                            j, terms[view.name][i]
                        )
                continue
            temps = {
                view.name: {i: terms[view.name][i] for i in active}
                for view in self.views
            }
            answers = yield from self._multi_query_views(j, temps, active)
            batch_delta = merged.get(j)
            for view in self.views:
                for i in active:
                    temp = temps[view.name][i]
                    answer = self._compensate_queued(
                        j, answers[view.name][i], temp
                    )
                    if batch_delta is not None:
                        answer = answer.compensate(temp.extend(j, batch_delta))
                    terms[view.name][i] = answer

        self.mark_applied(batch)
        self.metrics.observe("updates_per_install", len(batch))
        note = f"batch of {len(batch)} update(s), sources {sorted(merged)}"
        for view in self.views:
            composite: PartialView | None = None
            for index in sorted(terms[view.name]):
                term = terms[view.name][index]
                composite = (
                    term if composite is None else composite.add_in_place(term)
                )
            if view.name == self.view.name:
                self.install_wide(composite.delta, note=note)
            else:
                self._install_extra(view, composite.delta, note)
        self.metrics.increment("multiview_installs")

    # ------------------------------------------------------------------
    def _multi_query_views(
        self,
        index: int,
        terms: dict[str, dict[int, PartialView]],
        active: list[int],
    ) -> Generator:
        """One wave step for every view at once: a single MultiQueryRequest
        carries each (view, active term) partial, and the answer is split
        back per view.  All joins are evaluated against the same atomic
        source state, which is what keeps every view's batch boundary
        aligned with the same delivery-order prefix."""
        flat = [terms[view.name][i] for view in self.views for i in active]
        answers = yield from self._multi_query(index, flat)
        out: dict[str, dict[int, PartialView]] = {}
        pos = 0
        for view in self.views:
            out[view.name] = {}
            for i in active:
                out[view.name][i] = answers[pos]
                pos += 1
        return out


__all__ = [
    "MultiViewBatchedSweepWarehouse",
    "MultiViewStateMixin",
    "MultiViewSweepWarehouse",
    "validate_same_chain",
]
