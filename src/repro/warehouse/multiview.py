"""Multi-view maintenance: many SPJ views, one update stream, shared sweeps.

A production warehouse rarely materializes a single view.  This module
maintains **any number of views over the same source chain** with SWEEP
semantics, and batches the per-view partial view changes of each sweep
step into one :class:`~repro.sources.messages.MultiQueryRequest` -- so the
message *count* per update stays ``2(n-1)``, independent of how many views
are maintained (payload rows grow with the views, nothing else does).

All views must agree on the relation chain (names and schemas, in order);
they are free to differ in join conditions, selections and projections.
Each view gets its own :class:`~repro.warehouse.view_store.MaterializedView`
and (optionally) its own consistency recorder; every view is maintained
with complete consistency, exactly as if it ran its own SWEEP -- the
batching changes the envelope, not the algebra, because every per-view
join inside one batched step is evaluated against the same atomic source
state and compensated against the same queued updates.
"""

from __future__ import annotations

from collections.abc import Generator, Sequence

from repro.consistency.oracle import RunRecorder
from repro.relational.errors import SchemaError
from repro.relational.incremental import PartialView
from repro.relational.relation import Relation
from repro.relational.view import ViewDefinition
from repro.sources.messages import MultiQueryRequest, UpdateNotice, next_request_id
from repro.warehouse.base import QueueDrivenWarehouse
from repro.warehouse.errors import ProtocolError
from repro.warehouse.view_store import MaterializedView


def validate_same_chain(views: Sequence[ViewDefinition]) -> None:
    """All views must share relation names and schemas, in order."""
    if not views:
        raise SchemaError("need at least one view")
    first = views[0]
    for view in views[1:]:
        if view.relation_names != first.relation_names:
            raise SchemaError(
                f"view {view.name!r} has relations"
                f" {list(view.relation_names)!r}, expected"
                f" {list(first.relation_names)!r}"
            )
        for i in range(1, first.n_relations + 1):
            if view.schema_of(i).attributes != first.schema_of(i).attributes:
                raise SchemaError(
                    f"view {view.name!r} disagrees on schema of relation"
                    f" {first.name_of(i)!r}"
                )


class MultiViewSweepWarehouse(QueueDrivenWarehouse):
    """SWEEP maintaining several views with batched sweep steps.

    Parameters (beyond :class:`QueueDrivenWarehouse`'s):

    extra_views:
        Additional view definitions; the primary ``view`` is maintained
        too, as views[0].
    initial_states:
        Base relation contents used to initialize every extra view's
        store (the primary store is initialized via ``initial_view``).
    extra_recorders:
        Optional ``{view_name: RunRecorder}`` for per-view consistency
        verification of the extra views.
    """

    algorithm_name = "multi-view-sweep"

    def __init__(
        self,
        *args,
        extra_views: Sequence[ViewDefinition] = (),
        initial_states: dict[str, Relation] | None = None,
        extra_recorders: dict[str, RunRecorder] | None = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.views: list[ViewDefinition] = [self.view, *extra_views]
        validate_same_chain(self.views)
        names = [v.name for v in self.views]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate view names: {names!r}")
        self.stores: dict[str, MaterializedView] = {self.view.name: self.store}
        self.extra_recorders = dict(extra_recorders or {})
        for view in self.views[1:]:
            if initial_states is None:
                raise SchemaError(
                    "initial_states is required to initialize extra views"
                )
            self.stores[view.name] = MaterializedView.from_states(
                view, initial_states
            )
            recorder = self.extra_recorders.get(view.name)
            if recorder is not None:
                recorder.set_initial_view(self.stores[view.name].relation)

    # ------------------------------------------------------------------
    def view_change(self, notice: UpdateNotice) -> Generator:
        raise NotImplementedError("multi-view overrides process_update")

    def process_update(self, notice: UpdateNotice) -> Generator:
        i = notice.source_index
        n = self.view.n_relations
        partials = [
            PartialView.initial(view, i, notice.delta) for view in self.views
        ]
        sweep_order = list(range(i - 1, 0, -1)) + list(range(i + 1, n + 1))
        for j in sweep_order:
            temps = partials
            request = MultiQueryRequest(
                request_id=next_request_id(), partials=partials, target_index=j
            )
            self.send_query(j, request)
            msg, pending = yield self._answer_box.get()
            self._pending_at_answer = pending
            answer = msg.payload
            if answer.request_id != request.request_id:
                raise ProtocolError(
                    f"answer {answer.request_id} does not match request"
                    f" {request.request_id}"
                )
            partials = [
                self._compensate_one(j, got, temp)
                for got, temp in zip(answer.partials, temps)
            ]

        self.mark_applied([notice])
        for view, partial in zip(self.views, partials):
            store = self.stores[view.name]
            store.install_wide(partial.delta)
            if view.name == self.view.name:
                self._after_install(
                    f"update src={notice.source_index} seq={notice.seq}"
                )
            else:
                recorder = self.extra_recorders.get(view.name)
                if recorder is not None:
                    recorder.on_install(
                        self.sim.now,
                        store.relation,
                        claimed_vector=dict(self.applied_counts),
                        note=f"update src={notice.source_index} seq={notice.seq}",
                    )
        self.metrics.increment("multiview_installs")

    # ------------------------------------------------------------------
    def _compensate_one(
        self, index: int, answer: PartialView, temp: PartialView
    ) -> PartialView:
        pending = self.pending_updates_from(index)
        if not pending:
            return answer
        self.metrics.increment("compensations")
        merged = self.merged_pending_delta(pending)
        error = temp.extend(index, merged)
        return answer.compensate(error)

    def view_contents(self, name: str) -> Relation:
        """Current contents of the named view."""
        return self.stores[name].snapshot()


__all__ = ["MultiViewSweepWarehouse", "validate_same_chain"]
